//! The predictor chain — the paper's ordered fallback (Fig. 4) as a
//! combinator.
//!
//! A [`Chain`] owns an ordered list of [`Predictor`] links. Each element
//! is offered to the first enabled link; when a link *rejects* an
//! element (its own, or one it had buffered), the element cascades to
//! the next enabled link, and an element rejected by the last link falls
//! out of the chain as "re-compute". Acceptances are attributed to the
//! link that produced them, which generalizes the historical
//! `skipped_di` / `skipped_memo` counters to any number of links.
//!
//! The chain is itself a [`Predictor`], so chains nest.

use std::collections::{BTreeMap, VecDeque};

use crate::predictor::{Element, Predictor, Resolution};

/// Per-link attribution counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkStats {
    /// The link's [`Predictor::name`].
    pub name: &'static str,
    /// Elements offered to this link.
    pub attempts: u64,
    /// Elements this link accepted (re-computation skipped).
    pub accepted: u64,
    /// Whether the link is currently enabled.
    pub enabled: bool,
}

/// The outcome of feeding or flushing the chain: every resolved element
/// appears exactly once, either accepted (with the index of the
/// accepting link) or rejected by the whole chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainOutcome {
    /// `(sequence number, accepting link index)` per skipped element.
    pub accepted: Vec<(u64, usize)>,
    /// Sequence numbers no link accepted — re-computation territory.
    pub rejected: Vec<u64>,
    /// Modeled cost of the prediction attempts performed (sum of
    /// [`Predictor::attempt_cost`] over every offer).
    pub cost: u64,
}

impl ChainOutcome {
    /// Elements resolved (accepted or rejected) by this outcome.
    pub fn resolved(&self) -> usize {
        self.accepted.len() + self.rejected.len()
    }
}

impl From<ChainOutcome> for Resolution {
    fn from(out: ChainOutcome) -> Resolution {
        Resolution {
            accepted: out.accepted.into_iter().map(|(s, _)| s).collect(),
            rejected: out.rejected,
        }
    }
}

#[derive(Clone, Debug)]
struct Link {
    predictor: Box<dyn Predictor>,
    enabled: bool,
    attempts: u64,
    accepted: u64,
}

/// An ordered fallback chain of predictors.
#[derive(Clone, Debug, Default)]
pub struct Chain {
    links: Vec<Link>,
    /// Elements deferred by a link, keyed by sequence number; the value
    /// remembers which link is holding the element.
    held: BTreeMap<u64, (usize, Element)>,
    /// Reusable cascade work queue — `feed` runs once per observed loop
    /// element, so its queue must not allocate on every call. Taken at
    /// the start of a cascade and put back (empty) at the end; a
    /// re-entrant cascade (flush rejections) just sees an already-taken
    /// queue and falls back to a fresh one.
    scratch: VecDeque<(usize, Element)>,
}

impl Chain {
    /// An empty chain (every element is rejected).
    pub fn new() -> Self {
        Chain::default()
    }

    /// Appends a link; returns its index.
    pub fn push(&mut self, predictor: Box<dyn Predictor>) -> usize {
        self.links.push(Link {
            predictor,
            enabled: true,
            attempts: 0,
            accepted: 0,
        });
        self.links.len() - 1
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when the chain has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether link `k` is enabled (false for out-of-range indices).
    pub fn enabled(&self, k: usize) -> bool {
        self.links.get(k).map(|l| l.enabled).unwrap_or(false)
    }

    /// Enables or disables link `k`. A disabled link receives no new
    /// elements but still flushes the ones it holds.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn set_enabled(&mut self, k: usize, enabled: bool) {
        self.links[k].enabled = enabled;
    }

    /// True while at least one link is enabled.
    pub fn any_enabled(&self) -> bool {
        self.links.iter().any(|l| l.enabled)
    }

    /// Per-link attribution counters, in chain order.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.links
            .iter()
            .map(|l| LinkStats {
                name: l.predictor.name(),
                attempts: l.attempts,
                accepted: l.accepted,
                enabled: l.enabled,
            })
            .collect()
    }

    /// Shared read access to link `k`'s predictor (stats reporting).
    pub fn predictor(&self, k: usize) -> &dyn Predictor {
        &*self.links[k].predictor
    }

    /// Mutable access to link `k`'s predictor (state-fault injection and
    /// hardening control).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn predictor_mut(&mut self, k: usize) -> &mut dyn Predictor {
        &mut *self.links[k].predictor
    }

    /// Total hardening detections across every link.
    pub fn total_detections(&self) -> u64 {
        self.links.iter().map(|l| l.predictor.detections()).sum()
    }

    /// One human-readable report line per link.
    pub fn reports(&self) -> Vec<String> {
        self.links
            .iter()
            .map(|l| format!("{}: {}", l.predictor.name(), l.predictor.report()))
            .collect()
    }

    /// Region entry: resets every link. The previous exit must have
    /// flushed all held elements.
    pub fn begin(&mut self) {
        debug_assert!(self.held.is_empty(), "unflushed elements held in chain");
        self.held.clear();
        for l in &mut self.links {
            l.predictor.reset();
        }
    }

    /// Offers one element to the chain; any elements resolved as a
    /// consequence (this one, or ones previously held) are in the
    /// outcome.
    pub fn feed(&mut self, elem: Element) -> ChainOutcome {
        let mut out = ChainOutcome::default();
        self.cascade(0, elem, &mut out);
        out
    }

    /// Region exit: flushes every link in order. Elements a link rejects
    /// at flush cascade through the links after it, exactly as they
    /// would on a live rejection.
    pub fn finish(&mut self) -> ChainOutcome {
        let mut out = ChainOutcome::default();
        for k in 0..self.links.len() {
            let res = self.links[k].predictor.flush();
            self.apply_held(k, res, &mut out);
        }
        // Backstop: anything still held (a buggy link that never resolved
        // an element) is rejected rather than leaked.
        let leftovers: Vec<u64> = self.held.keys().copied().collect();
        for seq in leftovers {
            self.held.remove(&seq);
            out.rejected.push(seq);
        }
        out
    }

    /// Adjusts every link's tuning parameter.
    pub fn set_tuning(&mut self, tp: f64) {
        for l in &mut self.links {
            l.predictor.set_tuning(tp);
        }
    }

    /// The first link with a tuning parameter reports it.
    pub fn tuning(&self) -> Option<f64> {
        self.links.iter().find_map(|l| l.predictor.tuning())
    }

    /// Concatenated signature material from every link.
    pub fn drain_signal(&mut self) -> Vec<f64> {
        let mut all = Vec::new();
        for l in &mut self.links {
            all.extend(l.predictor.drain_signal());
        }
        all
    }

    /// Feeds `elem` to the first enabled link at index `from` or later,
    /// cascading rejections down the chain FIFO (preserving resolution
    /// order for the caller's pending queue).
    fn cascade(&mut self, from: usize, elem: Element, out: &mut ChainOutcome) {
        let mut queue = std::mem::take(&mut self.scratch);
        queue.push_back((from, elem));
        while let Some((from, elem)) = queue.pop_front() {
            let Some(k) = (from..self.links.len()).find(|&k| self.links[k].enabled) else {
                out.rejected.push(elem.seq);
                continue;
            };
            self.links[k].attempts += 1;
            out.cost += self.links[k].predictor.attempt_cost(elem.args.len());
            let res = self.links[k].predictor.observe(&elem);
            let seq = elem.seq;
            let mut own = Some(elem);
            for s in res.accepted {
                if s == seq {
                    if own.take().is_some() {
                        self.links[k].accepted += 1;
                        out.accepted.push((s, k));
                    }
                } else if let Some((holder, _)) = self.held.remove(&s) {
                    debug_assert_eq!(holder, k, "link resolved an element it never held");
                    self.links[k].accepted += 1;
                    out.accepted.push((s, k));
                }
            }
            for s in res.rejected {
                if s == seq {
                    if let Some(e) = own.take() {
                        queue.push_back((k + 1, e));
                    }
                } else if let Some((holder, e)) = self.held.remove(&s) {
                    debug_assert_eq!(holder, k, "link resolved an element it never held");
                    queue.push_back((k + 1, e));
                }
            }
            if let Some(e) = own {
                self.held.insert(seq, (k, e));
            }
        }
        self.scratch = queue;
    }

    /// Applies a flush resolution of link `k`: acceptances are
    /// attributed to `k`, rejections cascade to the links after it.
    fn apply_held(&mut self, k: usize, res: Resolution, out: &mut ChainOutcome) {
        for s in res.accepted {
            if let Some((holder, _)) = self.held.remove(&s) {
                debug_assert_eq!(holder, k, "link flushed an element it never held");
                self.links[k].accepted += 1;
                out.accepted.push((s, k));
            }
        }
        for s in res.rejected {
            if let Some((holder, e)) = self.held.remove(&s) {
                debug_assert_eq!(holder, k, "link flushed an element it never held");
                self.cascade(k + 1, e, out);
            }
        }
    }
}

impl Predictor for Chain {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn acceptable_range(&self) -> f64 {
        self.links
            .first()
            .map(|l| l.predictor.acceptable_range())
            .unwrap_or(0.0)
    }

    fn observe(&mut self, elem: &Element) -> Resolution {
        self.feed(elem.clone()).into()
    }

    fn flush(&mut self) -> Resolution {
        self.finish().into()
    }

    fn reset(&mut self) {
        self.begin();
    }

    fn set_tuning(&mut self, tp: f64) {
        Chain::set_tuning(self, tp);
    }

    fn tuning(&self) -> Option<f64> {
        Chain::tuning(self)
    }

    fn drain_signal(&mut self) -> Vec<f64> {
        Chain::drain_signal(self)
    }

    fn report(&self) -> String {
        self.reports().join("; ")
    }

    fn flip_state_bit(&mut self, seed: u64) -> Option<String> {
        // Start at a seed-chosen link and rotate until one has live
        // state, so links that are momentarily empty do not mask the
        // injection.
        let n = self.links.len();
        if n == 0 {
            return None;
        }
        let start = (seed as usize) % n;
        for off in 0..n {
            let k = (start + off) % n;
            let name = self.links[k].predictor.name();
            if let Some(site) = self.links[k].predictor.flip_state_bit(seed) {
                return Some(format!("{name}/{site}"));
            }
        }
        None
    }

    fn detections(&self) -> u64 {
        self.total_detections()
    }

    fn set_harden(&mut self, on: bool) {
        for l in &mut self.links {
            l.predictor.set_harden(on);
        }
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{DiPredictor, LastValue, MemoPredictor};
    use crate::{DiConfig, MemoConfig, MemoTrainer};

    fn elem(seq: u64, value: f64) -> Element {
        Element {
            seq,
            value,
            args: vec![value],
        }
    }

    fn drive(chain: &mut Chain, values: &[(u64, f64)]) -> ChainOutcome {
        let mut total = ChainOutcome::default();
        chain.begin();
        for &(s, v) in values {
            let out = chain.feed(elem(s, v));
            total.accepted.extend(out.accepted);
            total.rejected.extend(out.rejected);
            total.cost += out.cost;
        }
        let fin = chain.finish();
        total.accepted.extend(fin.accepted);
        total.rejected.extend(fin.rejected);
        total.cost += fin.cost;
        total
    }

    #[test]
    fn empty_chain_rejects_everything() {
        let mut chain = Chain::new();
        let out = drive(&mut chain, &[(0, 1.0), (1, 2.0)]);
        assert_eq!(out.accepted.len(), 0);
        assert_eq!(out.rejected, vec![0, 1]);
        assert!(!chain.any_enabled());
    }

    #[test]
    fn second_level_catches_first_level_rejects() {
        // Alternating values defeat interpolation; a memo keyed on the
        // (single) argument predicts them exactly.
        let mut trainer = MemoTrainer::new(1);
        for i in 0..1000 {
            let x = (i % 2) as f64;
            trainer.add_sample(&[x], 5.0 + x * 100.0);
        }
        let memo = trainer.build(&MemoConfig {
            table_bits: 6,
            hist_bins: 32,
        });
        let mut chain = Chain::new();
        chain.push(Box::new(DiPredictor::new(DiConfig { tp: 0.2, ar: 0.1 })));
        chain.push(Box::new(MemoPredictor::new(memo, 0.1).with_costs(6, 3)));

        let values: Vec<(u64, f64)> = (0..200u64)
            .map(|i| (i, 5.0 + (i % 2) as f64 * 100.0))
            .collect();
        // Feed values whose args equal x = i % 2.
        let mut total = ChainOutcome::default();
        chain.begin();
        for &(s, v) in &values {
            let out = chain.feed(Element {
                seq: s,
                value: v,
                args: vec![(s % 2) as f64],
            });
            total.accepted.extend(out.accepted);
            total.rejected.extend(out.rejected);
            total.cost += out.cost;
        }
        let fin = chain.finish();
        total.accepted.extend(fin.accepted);
        total.rejected.extend(fin.rejected);

        let stats = chain.link_stats();
        assert_eq!(stats[0].name, "di");
        assert_eq!(stats[1].name, "memo");
        assert!(
            stats[1].accepted > 100,
            "memo accepted {}",
            stats[1].accepted
        );
        // Every element resolved exactly once.
        assert_eq!(total.resolved(), 200);
        // Attribution sums match the outcome.
        let attributed: u64 = stats.iter().map(|s| s.accepted).sum();
        assert_eq!(attributed as usize, total.accepted.len());
    }

    #[test]
    fn disabled_link_passes_elements_through() {
        let mut chain = Chain::new();
        let di = chain.push(Box::new(DiPredictor::new(DiConfig { tp: 0.3, ar: 0.2 })));
        chain.push(Box::new(LastValue::new(0.05)));
        chain.set_enabled(di, false);

        // Constant values: DI would accept interiors, but it is disabled;
        // last-value accepts every repeat instead.
        let values: Vec<(u64, f64)> = (0..50u64).map(|i| (i, 7.0)).collect();
        let out = drive(&mut chain, &values);
        let stats = chain.link_stats();
        assert_eq!(stats[0].attempts, 0);
        assert_eq!(stats[1].attempts, 50);
        assert_eq!(stats[1].accepted, 49); // all but the first
        assert_eq!(out.rejected, vec![0]);
    }

    #[test]
    fn three_link_chain_attributes_per_link() {
        let mut trainer = MemoTrainer::new(1);
        for i in 0..500 {
            let x = (i % 2) as f64;
            trainer.add_sample(&[x], 5.0 + x * 100.0);
        }
        let memo = trainer.build(&MemoConfig {
            table_bits: 6,
            hist_bins: 32,
        });
        let mut chain = Chain::new();
        chain.push(Box::new(DiPredictor::new(DiConfig { tp: 0.2, ar: 0.1 })));
        chain.push(Box::new(MemoPredictor::new(memo, 0.1)));
        chain.push(Box::new(LastValue::new(0.01)));

        // A burst the memo does not know (args = 9) with repeated values:
        // DI rejects (alternating), memo misses, last-value accepts the
        // repeats.
        chain.begin();
        let mut accepted_by = [0usize; 3];
        let mut rejected = 0usize;
        for (s, v) in [
            (0u64, 3.0),
            (1, 900.0),
            (2, 3.0),
            (3, 900.0),
            (4, 3.0),
            (5, 900.0),
        ] {
            let out = chain.feed(Element {
                seq: s,
                value: v,
                args: vec![9.0],
            });
            for (_, k) in out.accepted {
                accepted_by[k] += 1;
            }
            rejected += out.rejected.len();
        }
        let fin = chain.finish();
        for (_, k) in fin.accepted {
            accepted_by[k] += 1;
        }
        rejected += fin.rejected.len();
        assert_eq!(accepted_by.iter().sum::<usize>() + rejected, 6);
        let stats = chain.link_stats();
        assert_eq!(stats[2].name, "last-value");
        assert_eq!(stats[2].accepted as usize, accepted_by[2]);
    }

    #[test]
    fn chain_nests_as_a_predictor() {
        let mut inner = Chain::new();
        inner.push(Box::new(LastValue::new(0.05)));
        let mut outer = Chain::new();
        outer.push(Box::new(inner));
        outer.begin();
        outer.feed(elem(0, 4.0));
        let out = outer.feed(elem(1, 4.0));
        assert_eq!(out.accepted, vec![(1, 0)]);
        assert_eq!(outer.link_stats()[0].name, "chain");
    }

    #[test]
    fn tuning_broadcast_reaches_di() {
        let mut chain = Chain::new();
        chain.push(Box::new(DiPredictor::new(DiConfig { tp: 0.5, ar: 0.2 })));
        assert_eq!(chain.tuning(), Some(0.5));
        Chain::set_tuning(&mut chain, 0.9);
        assert_eq!(chain.tuning(), Some(0.9));
    }
}
