//! The pluggable predictor contract.
//!
//! The paper's protection mechanism is an *ordered fallback chain* (§4,
//! Fig. 4): dynamic interpolation predicts first, approximate memoization
//! catches what interpolation can't, and exact re-computation catches the
//! rest. [`Predictor`] is one link of that chain; the
//! [`Chain`](crate::chain::Chain) combinator composes any number of links
//! with per-link attribution, and the runtime layer stays agnostic of
//! which (and how many) predictors are installed.
//!
//! Two kinds of predictor fit the same trait:
//!
//! * **point predictors** ([`MemoPredictor`], [`LastValue`]) implement
//!   [`predict`](Predictor::predict) and resolve every element
//!   immediately through the provided `observe` default (predict →
//!   fuzzy-validate → accept/reject);
//! * **deferring predictors** ([`DiPredictor`]) override
//!   [`observe`](Predictor::observe) and buffer elements, resolving them
//!   in batches (the phase cut) and on [`flush`](Predictor::flush).

use crate::{relative_difference, CutResult, DiConfig, DiStats, DynamicInterpolation, Memoizer};

/// One observed loop output offered to a predictor.
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    /// Caller-assigned sequence number; resolutions refer to it.
    pub seq: u64,
    /// The observed output value.
    pub value: f64,
    /// Recorded loop-body inputs (memoization keys). Empty when the
    /// region records none — an empty `Vec` does not allocate.
    pub args: Vec<f64>,
}

/// What a predictor decided about previously offered elements.
///
/// Every element must eventually appear in exactly one resolution
/// (possibly the one from [`Predictor::flush`]); until then the predictor
/// is holding it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Resolution {
    /// Sequence numbers whose values validated — re-computation skipped.
    pub accepted: Vec<u64>,
    /// Sequence numbers this predictor gives up on — the next chain link
    /// (or re-computation) takes them.
    pub rejected: Vec<u64>,
}

impl Resolution {
    /// Accepts a single element.
    pub fn accept_one(seq: u64) -> Self {
        Resolution {
            accepted: vec![seq],
            rejected: Vec::new(),
        }
    }

    /// Rejects a single element.
    pub fn reject_one(seq: u64) -> Self {
        Resolution {
            accepted: Vec::new(),
            rejected: vec![seq],
        }
    }

    /// True when nothing was resolved.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty() && self.rejected.is_empty()
    }
}

/// One link of the prediction chain.
///
/// Implementors need [`name`](Self::name),
/// [`acceptable_range`](Self::acceptable_range) and
/// [`clone_box`](Self::clone_box); a point predictor adds
/// [`predict`](Self::predict) and inherits observe-validate-resolve,
/// while a deferring predictor overrides [`observe`](Self::observe) /
/// [`flush`](Self::flush) wholesale. Everything else has no-op defaults.
pub trait Predictor: std::fmt::Debug + Send + Sync {
    /// Short stable label used for per-link stat attribution.
    fn name(&self) -> &'static str;

    /// Acceptable range (AR) for this link's fuzzy validation.
    fn acceptable_range(&self) -> f64;

    /// Predicted value for `elem`, if this predictor has one. Point
    /// predictors implement only this; the default
    /// [`observe`](Self::observe) does the validation.
    fn predict(&mut self, elem: &Element) -> Option<f64> {
        let _ = elem;
        None
    }

    /// Fuzzy validation: is `value` within the acceptable range of
    /// `prediction`?
    fn validate(&self, value: f64, prediction: f64) -> bool {
        relative_difference(value, prediction) <= self.acceptable_range()
    }

    /// Offers one element. The default resolves it immediately via
    /// [`predict`](Self::predict) + [`validate`](Self::validate);
    /// deferring predictors override this and may resolve any number of
    /// previously offered elements instead.
    fn observe(&mut self, elem: &Element) -> Resolution {
        match self.predict(elem) {
            Some(p) if self.validate(elem.value, p) => Resolution::accept_one(elem.seq),
            _ => Resolution::reject_one(elem.seq),
        }
    }

    /// Region exit: resolve everything still held. The default holds
    /// nothing.
    fn flush(&mut self) -> Resolution {
        Resolution::default()
    }

    /// Region entry: drop per-run state, keep configuration and lifetime
    /// statistics.
    fn reset(&mut self) {}

    /// Modeled cost of offering one element with `n_args` recorded
    /// inputs (charged by the runtime's cost model; 0 when the caller
    /// already accounts for the observation itself).
    fn attempt_cost(&self, n_args: usize) -> u64 {
        let _ = n_args;
        0
    }

    /// Run-time management: adjust the tuning parameter. No-op for
    /// predictors without one.
    fn set_tuning(&mut self, tp: f64) {
        let _ = tp;
    }

    /// Current tuning parameter, if this predictor has one.
    fn tuning(&self) -> Option<f64> {
        None
    }

    /// Drains the raw material for context signatures (§5) accumulated
    /// since the last call. Empty for predictors that produce none.
    fn drain_signal(&mut self) -> Vec<f64> {
        Vec::new()
    }

    /// One-line human-readable statistics summary.
    fn report(&self) -> String {
        String::new()
    }

    /// Flips one bit of this predictor's live state — a fault aimed at
    /// the protection machinery itself (SEU campaigns over runtime
    /// metadata). Returns a site label, or `None` when the predictor
    /// holds no corruptible state right now. Default: stateless.
    fn flip_state_bit(&mut self, seed: u64) -> Option<String> {
        let _ = seed;
        None
    }

    /// Self-check firings: how often hardening detected (and contained)
    /// corrupted internal state. Zero for predictors without
    /// self-checking state.
    fn detections(&self) -> u64 {
        0
    }

    /// Enables or disables state hardening (shadow copies, voting,
    /// checksums). Default: nothing to harden.
    fn set_harden(&mut self, on: bool) {
        let _ = on;
    }

    /// Clones this predictor behind the trait object (campaigns clone a
    /// trained runtime per trial).
    fn clone_box(&self) -> Box<dyn Predictor>;
}

impl Clone for Box<dyn Predictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// First-level predictor: the paper's dynamic interpolation (§4.1)
/// adapted to the chain protocol.
///
/// The phase machine numbers elements region-relatively; this adapter
/// keeps the translation table back to the chain's sequence numbers.
#[derive(Clone, Debug)]
pub struct DiPredictor {
    di: DynamicInterpolation,
    /// Chain sequence number of the phase machine's `i`-th observation
    /// since the last flush/reset.
    seq_map: Vec<u64>,
}

impl DiPredictor {
    /// Wraps a fresh phase machine.
    pub fn new(config: DiConfig) -> Self {
        DiPredictor {
            di: DynamicInterpolation::new(config),
            seq_map: Vec::new(),
        }
    }

    /// The phase machine's aggregate counters.
    pub fn di_stats(&self) -> DiStats {
        self.di.stats()
    }

    fn translate(&self, cut: CutResult) -> Resolution {
        Resolution {
            accepted: cut
                .accepted
                .iter()
                .map(|&s| self.seq_map[s as usize])
                .collect(),
            rejected: cut
                .pending
                .iter()
                .map(|&s| self.seq_map[s as usize])
                .collect(),
        }
    }
}

impl Predictor for DiPredictor {
    fn name(&self) -> &'static str {
        "di"
    }

    fn acceptable_range(&self) -> f64 {
        self.di.config().ar
    }

    fn observe(&mut self, elem: &Element) -> Resolution {
        self.seq_map.push(elem.seq);
        match self.di.observe(elem.value) {
            Some(cut) => self.translate(cut),
            None => Resolution::default(),
        }
    }

    fn flush(&mut self) -> Resolution {
        let res = match self.di.flush() {
            Some(cut) => self.translate(cut),
            None => Resolution::default(),
        };
        self.seq_map.clear();
        res
    }

    fn reset(&mut self) {
        self.di.reset();
        self.seq_map.clear();
    }

    fn set_tuning(&mut self, tp: f64) {
        self.di.set_tp(tp);
    }

    fn tuning(&self) -> Option<f64> {
        Some(self.di.config().tp)
    }

    fn drain_signal(&mut self) -> Vec<f64> {
        self.di.take_slope_changes()
    }

    fn report(&self) -> String {
        format!("{:?} detections={}", self.di.stats(), self.di.detections())
    }

    fn flip_state_bit(&mut self, seed: u64) -> Option<String> {
        self.di.flip_state_bit(seed)
    }

    fn detections(&self) -> u64 {
        self.di.detections()
    }

    fn set_harden(&mut self, on: bool) {
        self.di.set_harden(on);
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// Second-level predictor: approximate memoization (§4.2) as a point
/// predictor — a quantized lookup keyed on the recorded inputs.
#[derive(Clone, Debug)]
pub struct MemoPredictor {
    memo: Memoizer,
    ar: f64,
    base_cost: u64,
    per_input_cost: u64,
    /// Hardening: a shadow copy of the table; lookups are cross-checked
    /// and a disagreement (one copy corrupted) degrades to a miss.
    shadow: Option<Box<Memoizer>>,
    detections: u64,
}

impl MemoPredictor {
    /// Wraps a trained memoizer validating at acceptable range `ar`.
    pub fn new(memo: Memoizer, ar: f64) -> Self {
        MemoPredictor {
            memo,
            ar,
            base_cost: 0,
            per_input_cost: 0,
            shadow: None,
            detections: 0,
        }
    }

    /// Sets the modeled per-attempt cost (the runtime layer owns the
    /// cost constants).
    #[must_use]
    pub fn with_costs(mut self, base: u64, per_input: u64) -> Self {
        self.base_cost = base;
        self.per_input_cost = per_input;
        self
    }

    /// The wrapped memoizer.
    pub fn memoizer(&self) -> &Memoizer {
        &self.memo
    }
}

impl Predictor for MemoPredictor {
    fn name(&self) -> &'static str {
        "memo"
    }

    fn acceptable_range(&self) -> f64 {
        self.ar
    }

    fn predict(&mut self, elem: &Element) -> Option<f64> {
        let primary = self.memo.predict(&elem.args);
        if let Some(shadow) = &self.shadow {
            let check = shadow.predict_quiet(&elem.args);
            let same = match (primary, check) {
                (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
                (None, None) => true,
                _ => false,
            };
            if !same {
                // One copy is corrupted; we cannot tell which, so degrade
                // the lookup to a miss — the chain falls through to the
                // next link or to exact re-computation.
                self.detections += 1;
                return None;
            }
        }
        primary
    }

    fn attempt_cost(&self, n_args: usize) -> u64 {
        self.base_cost + self.per_input_cost * n_args as u64
    }

    fn report(&self) -> String {
        format!("{:?} detections={}", self.memo.stats(), self.detections)
    }

    fn flip_state_bit(&mut self, seed: u64) -> Option<String> {
        self.memo.corrupt_table_bit(seed)
    }

    fn detections(&self) -> u64 {
        self.detections
    }

    fn set_harden(&mut self, on: bool) {
        self.shadow = on.then(|| Box::new(self.memo.clone()));
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// A minimal reference predictor: predicts each value as the previous
/// one. Useful as a chain-extension example and in tests; not part of
/// the paper's design.
#[derive(Clone, Debug)]
pub struct LastValue {
    ar: f64,
    last: Option<f64>,
}

impl LastValue {
    /// A last-value predictor validating at acceptable range `ar`.
    pub fn new(ar: f64) -> Self {
        LastValue { ar, last: None }
    }
}

impl Predictor for LastValue {
    fn name(&self) -> &'static str {
        "last-value"
    }

    fn acceptable_range(&self) -> f64 {
        self.ar
    }

    fn predict(&mut self, elem: &Element) -> Option<f64> {
        self.last.replace(elem.value)
    }

    fn reset(&mut self) {
        self.last = None;
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(seq: u64, value: f64) -> Element {
        Element {
            seq,
            value,
            args: Vec::new(),
        }
    }

    #[test]
    fn di_predictor_translates_sequence_numbers() {
        // Offer non-contiguous chain seqs; the phase machine numbers them
        // 0..n internally, and the adapter must translate back.
        let mut p = DiPredictor::new(DiConfig { tp: 0.3, ar: 0.2 });
        let mut resolved = Resolution::default();
        for k in 0..10u64 {
            let r = p.observe(&elem(100 + 7 * k, k as f64 * 2.0));
            resolved.accepted.extend(r.accepted);
            resolved.rejected.extend(r.rejected);
        }
        let fin = p.flush();
        resolved.accepted.extend(fin.accepted);
        resolved.rejected.extend(fin.rejected);
        let mut all: Vec<u64> = resolved
            .accepted
            .iter()
            .chain(&resolved.rejected)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10u64).map(|k| 100 + 7 * k).collect::<Vec<_>>());
        // A linear ramp accepts all interiors.
        assert_eq!(resolved.accepted.len(), 8);
    }

    #[test]
    fn memo_predictor_resolves_immediately() {
        let mut trainer = crate::MemoTrainer::new(1);
        for i in 0..500 {
            let x = (i % 4) as f64;
            trainer.add_sample(&[x], 10.0 * x);
        }
        let memo = trainer.build(&crate::MemoConfig {
            table_bits: 6,
            hist_bins: 16,
        });
        let mut p = MemoPredictor::new(memo, 0.1).with_costs(6, 3);
        assert_eq!(p.attempt_cost(2), 12);
        let hit = p.observe(&Element {
            seq: 3,
            value: 20.0,
            args: vec![2.0],
        });
        assert_eq!(hit, Resolution::accept_one(3));
        let miss = p.observe(&Element {
            seq: 4,
            value: 999.0,
            args: vec![2.0],
        });
        assert_eq!(miss, Resolution::reject_one(4));
    }

    #[test]
    fn hardened_memo_turns_a_corrupted_entry_into_a_miss() {
        // Single trained cell so the injected flip hits the same entry the
        // lookup reads. The shadow cross-check must degrade the corrupted
        // lookup to a miss (fall through to re-computation), not serve it.
        let mut trainer = crate::MemoTrainer::new(1);
        for _ in 0..50 {
            trainer.add_sample(&[2.0], 20.0);
        }
        let memo = trainer.build(&crate::MemoConfig {
            table_bits: 4,
            hist_bins: 16,
        });
        let mut p = MemoPredictor::new(memo.clone(), 0.1);
        p.set_harden(true);
        let site = p.flip_state_bit(62 << 32).expect("populated entry");
        assert!(site.starts_with("memo["), "site = {site}");
        let e = Element {
            seq: 0,
            value: 20.0,
            args: vec![2.0],
        };
        assert_eq!(p.predict(&e), None, "cross-check must miss, not serve");
        assert_eq!(p.detections(), 1);

        // Unhardened control: the corrupted value is served as-is.
        let mut bare = MemoPredictor::new(memo, 0.1);
        bare.flip_state_bit(62 << 32).expect("populated entry");
        assert!(bare.predict(&e).is_some());
        assert_eq!(bare.detections(), 0);
    }

    #[test]
    fn empty_memo_has_no_state_to_flip() {
        let trainer = crate::MemoTrainer::new(1);
        let memo = trainer.build(&crate::MemoConfig {
            table_bits: 2,
            hist_bins: 4,
        });
        let mut p = MemoPredictor::new(memo, 0.1);
        assert!(p.flip_state_bit(7).is_none());
    }

    #[test]
    fn last_value_accepts_repeats_and_resets() {
        let mut p = LastValue::new(0.1);
        assert_eq!(p.observe(&elem(0, 5.0)), Resolution::reject_one(0));
        assert_eq!(p.observe(&elem(1, 5.0)), Resolution::accept_one(1));
        assert_eq!(p.observe(&elem(2, 50.0)), Resolution::reject_one(2));
        p.reset();
        assert_eq!(p.observe(&elem(3, 50.0)), Resolution::reject_one(3));
    }
}
