//! # rskip-predict — the prediction models of RSkip
//!
//! Pure implementations of the two approximation techniques the paper uses
//! as predictors (§4):
//!
//! * [`DynamicInterpolation`] — the paper's novel trend predictor (Fig. 5):
//!   loop outputs are sliced into *phases* (consecutive elements covered by
//!   a single linear equation). A phase extends while the relative slope
//!   change stays within the tuning parameter (TP) and is cut otherwise;
//!   at the cut, interior elements are fuzzy-validated against the line
//!   through the phase endpoints with the acceptable range (AR).
//! * [`Memoizer`] / [`MemoTrainer`] — approximate memoization (§4.2),
//!   improving on Paraprox with profile-histogram-driven quantization
//!   levels and a bit-tuning pass that distributes address bits across
//!   inputs by output impact.
//!
//! The crate is dependency-light and independent of the IR: the runtime
//! layer (`rskip-runtime`) adapts these models to the execution substrate.
//!
//! The [`trend`] module hosts the motivational analyzers behind the paper's
//! Figure 2 (trend coverage and top-K frequent-value coverage).

#![deny(missing_docs)]

pub mod chain;
mod interpolation;
mod memo;
pub mod predictor;
pub mod trend;

pub use chain::{Chain, ChainOutcome, LinkStats};
pub use interpolation::{CutResult, DiConfig, DiStats, DynamicInterpolation};
pub use memo::{MemoConfig, MemoStats, MemoTrainer, Memoizer, Quantizer};
pub use predictor::{DiPredictor, Element, LastValue, MemoPredictor, Predictor, Resolution};

/// Relative difference `|a - b| / max(|b|, eps)` — the fuzzy-validation
/// metric ("relative difference is used to define acceptable range", §2).
///
/// `b` is the reference (the prediction); `eps` guards tiny denominators.
///
/// The result is always comparable: a NaN operand (or an ∞ − ∞ / ∞ ÷ ∞
/// indeterminate) yields [`f64::INFINITY`], never NaN, so
/// `relative_difference(a, b) <= ar` is `false` — a non-finite prediction
/// never validates — rather than silently false through NaN ordering.
///
/// # Example
///
/// ```
/// let d = rskip_predict::relative_difference(11.0, 10.0);
/// assert!((d - 0.1).abs() < 1e-12);
/// assert_eq!(rskip_predict::relative_difference(1.0, f64::NAN), f64::INFINITY);
/// ```
pub fn relative_difference(a: f64, b: f64) -> f64 {
    const EPS: f64 = 1e-12;
    let denom = b.abs().max(EPS);
    let d = (a - b).abs() / denom;
    if d.is_nan() {
        f64::INFINITY
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_difference_basics() {
        assert_eq!(relative_difference(10.0, 10.0), 0.0);
        assert!((relative_difference(12.0, 10.0) - 0.2).abs() < 1e-12);
        assert!((relative_difference(8.0, 10.0) - 0.2).abs() < 1e-12);
        assert!(relative_difference(0.0, 10.0) > 0.99);
    }

    #[test]
    fn relative_difference_near_zero_reference() {
        // Guarded denominator: no division by zero, huge distance reported.
        let d = relative_difference(1.0, 0.0);
        assert!(d.is_finite());
        assert!(d > 1e6);
    }

    #[test]
    // The negated `<= ar` form below is literally the expression every
    // validator writes; the test asserts that exact shape.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn relative_difference_never_returns_nan() {
        // NaN on either side: infinite distance, never validates.
        assert_eq!(relative_difference(f64::NAN, 10.0), f64::INFINITY);
        assert_eq!(relative_difference(10.0, f64::NAN), f64::INFINITY);
        assert_eq!(relative_difference(f64::NAN, f64::NAN), f64::INFINITY);
        // Indeterminate forms from infinite operands collapse the same way.
        assert_eq!(
            relative_difference(f64::INFINITY, f64::INFINITY),
            f64::INFINITY
        );
        assert_eq!(relative_difference(3.0, f64::INFINITY), f64::INFINITY);
        assert_eq!(relative_difference(f64::INFINITY, 3.0), f64::INFINITY);
        // And the contract is what validation relies on: `<= ar` is false.
        assert!(!(relative_difference(f64::NAN, 1.0) <= 1.0));
    }
}
