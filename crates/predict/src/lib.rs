//! # rskip-predict — the prediction models of RSkip
//!
//! Pure implementations of the two approximation techniques the paper uses
//! as predictors (§4):
//!
//! * [`DynamicInterpolation`] — the paper's novel trend predictor (Fig. 5):
//!   loop outputs are sliced into *phases* (consecutive elements covered by
//!   a single linear equation). A phase extends while the relative slope
//!   change stays within the tuning parameter (TP) and is cut otherwise;
//!   at the cut, interior elements are fuzzy-validated against the line
//!   through the phase endpoints with the acceptable range (AR).
//! * [`Memoizer`] / [`MemoTrainer`] — approximate memoization (§4.2),
//!   improving on Paraprox with profile-histogram-driven quantization
//!   levels and a bit-tuning pass that distributes address bits across
//!   inputs by output impact.
//!
//! The crate is dependency-light and independent of the IR: the runtime
//! layer (`rskip-runtime`) adapts these models to the execution substrate.
//!
//! The [`trend`] module hosts the motivational analyzers behind the paper's
//! Figure 2 (trend coverage and top-K frequent-value coverage).

#![deny(missing_docs)]

mod interpolation;
mod memo;
pub mod trend;

pub use interpolation::{CutResult, DiConfig, DiStats, DynamicInterpolation};
pub use memo::{MemoConfig, MemoStats, MemoTrainer, Memoizer, Quantizer};

/// Relative difference `|a - b| / max(|b|, eps)` — the fuzzy-validation
/// metric ("relative difference is used to define acceptable range", §2).
///
/// `b` is the reference (the prediction); `eps` guards tiny denominators.
///
/// # Example
///
/// ```
/// let d = rskip_predict::relative_difference(11.0, 10.0);
/// assert!((d - 0.1).abs() < 1e-12);
/// ```
pub fn relative_difference(a: f64, b: f64) -> f64 {
    const EPS: f64 = 1e-12;
    let denom = b.abs().max(EPS);
    (a - b).abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_difference_basics() {
        assert_eq!(relative_difference(10.0, 10.0), 0.0);
        assert!((relative_difference(12.0, 10.0) - 0.2).abs() < 1e-12);
        assert!((relative_difference(8.0, 10.0) - 0.2).abs() < 1e-12);
        assert!(relative_difference(0.0, 10.0) > 0.99);
    }

    #[test]
    fn relative_difference_near_zero_reference() {
        // Guarded denominator: no division by zero, huge distance reported.
        let d = relative_difference(1.0, 0.0);
        assert!(d.is_finite());
        assert!(d > 1e6);
    }
}
