//! Motivational predictability analyzers (paper §2, Figure 2).
//!
//! The paper measures, over major loops of the Rodinia suite, what fraction
//! of computation outputs could be estimated (a) by a trend model — "data
//! elements showing less than a certain amount of changes in consecutive
//! iterations are considered residing in the same trend" — and (b) by a
//! table of the top 10 most frequent output values. The paper handled
//! trend outliers "manually" in that experiment; [`trend_coverage`] does it
//! mechanically with a bounded outlier tolerance.

use std::collections::HashMap;

use crate::relative_difference;

/// Fraction of elements residing in a trend: consecutive relative value
/// changes at most `threshold`, tolerating up to `outlier_tolerance`
/// consecutive off-trend elements without breaking the trend (the paper's
/// manual corner-case handling, done mechanically).
///
/// Elements belonging to trends of length ≥ 3 count as covered.
///
/// # Example
///
/// ```
/// let ramp: Vec<f64> = (0..100).map(|k| 50.0 + k as f64).collect();
/// let c = rskip_predict::trend::trend_coverage(&ramp, 0.1, 1);
/// assert!(c > 0.9);
/// ```
pub fn trend_coverage(values: &[f64], threshold: f64, outlier_tolerance: usize) -> f64 {
    if values.len() < 3 {
        return 0.0;
    }
    let mut covered = 0usize;
    let mut run_len = 1usize;
    let mut outliers_in_row = 0usize;
    let mut last_on_trend = values[0];

    let close_run = |run_len: usize, covered: &mut usize| {
        if run_len >= 3 {
            *covered += run_len;
        }
    };

    for &v in &values[1..] {
        if relative_difference(v, last_on_trend) <= threshold {
            run_len += 1 + outliers_in_row.min(1); // absorbed outlier rejoins
            outliers_in_row = 0;
            last_on_trend = v;
        } else if outliers_in_row < outlier_tolerance {
            outliers_in_row += 1; // skip, stay in trend
        } else {
            close_run(run_len, &mut covered);
            run_len = 1;
            outliers_in_row = 0;
            last_on_trend = v;
        }
    }
    close_run(run_len, &mut covered);
    covered.min(values.len()) as f64 / values.len() as f64
}

/// Fraction of elements whose value matches one of the `k` most frequent
/// values within relative difference `ar`.
///
/// Frequencies are counted over buckets of ~4 significant decimal digits so
/// that floating-point outputs that "repeat" up to rounding are grouped, as
/// in the paper's observation that "there may exist many repeating outputs"
/// (§2).
pub fn top_k_coverage(values: &[f64], k: usize, ar: f64) -> f64 {
    if values.is_empty() || k == 0 {
        return 0.0;
    }
    let mut counts: HashMap<u64, (u64, f64)> = HashMap::new();
    for &v in values {
        let key = bucket(v);
        let e = counts.entry(key).or_insert((0, v));
        e.0 += 1;
    }
    let mut freq: Vec<(u64, f64)> = counts.into_values().collect();
    // Equal counts at the k-boundary must not be broken by HashMap
    // iteration order, or the selected top-k set (and the coverage)
    // varies from process to process.
    freq.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.total_cmp(&b.1)));
    let top: Vec<f64> = freq.iter().take(k).map(|&(_, v)| v).collect();

    let covered = values
        .iter()
        .filter(|&&v| top.iter().any(|&t| relative_difference(v, t) <= ar))
        .count();
    covered as f64 / values.len() as f64
}

/// Rounds to ~4 significant digits for frequency bucketing.
fn bucket(v: f64) -> u64 {
    if v == 0.0 || !v.is_finite() {
        return v.to_bits();
    }
    let mag = v.abs().log10().floor();
    let scale = 10f64.powf(3.0 - mag);
    ((v * scale).round() / scale).to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_ramp_is_fully_trend_covered() {
        let values: Vec<f64> = (0..200).map(|k| 100.0 + k as f64 * 0.5).collect();
        assert!(trend_coverage(&values, 0.05, 0) > 0.95);
    }

    #[test]
    fn white_noise_has_low_trend_coverage() {
        // Deterministic "noise" jumping across two decades.
        let values: Vec<f64> = (0..200)
            .map(|k| if k % 2 == 0 { 1.0 } else { 100.0 })
            .collect();
        assert!(trend_coverage(&values, 0.1, 0) < 0.1);
    }

    #[test]
    fn outlier_tolerance_bridges_single_spikes() {
        let mut values: Vec<f64> = (0..100).map(|k| 50.0 + k as f64 * 0.1).collect();
        values[50] = 5000.0;
        let strict = trend_coverage(&values, 0.05, 0);
        let tolerant = trend_coverage(&values, 0.05, 1);
        assert!(tolerant > strict);
        assert!(tolerant > 0.9);
    }

    #[test]
    fn repeated_values_are_top_k_covered() {
        let values: Vec<f64> = (0..300).map(|k| (k % 5) as f64).collect();
        assert!(top_k_coverage(&values, 5, 0.01) > 0.99);
        assert!(top_k_coverage(&values, 2, 0.01) < 0.5);
    }

    #[test]
    fn distinct_values_are_not_top_k_covered() {
        let values: Vec<f64> = (0..300).map(|k| k as f64 * 17.77).collect();
        assert!(top_k_coverage(&values, 10, 0.001) < 0.15);
    }

    #[test]
    fn short_inputs() {
        assert_eq!(trend_coverage(&[], 0.1, 0), 0.0);
        assert_eq!(trend_coverage(&[1.0, 2.0], 0.1, 0), 0.0);
        assert_eq!(top_k_coverage(&[], 10, 0.1), 0.0);
    }

    #[test]
    fn bucket_groups_near_equal_floats() {
        assert_eq!(bucket(1.00001), bucket(1.00004));
        assert_ne!(bucket(1.0), bucket(2.0));
    }
}
