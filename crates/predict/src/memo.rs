//! Approximate memoization — the second-level predictor of paper §4.2.
//!
//! Expensive pure computations (e.g. the Black–Scholes pricing call) are
//! replaced by "a single access to a lookup table that stores popular
//! repeating values". Inputs are quantized; this implementation follows the
//! paper's two improvements over Paraprox [Samadi et al. 2014]:
//!
//! 1. **Bit tuning** — the total address-bit budget is distributed across
//!    inputs greedily, giving more bits to inputs with a higher measured
//!    impact on prediction accuracy.
//! 2. **Histogram-driven level boundaries** — instead of uniformly
//!    splitting `[min, max]`, each input's quantization levels come from a
//!    fine uniform histogram whose adjacent, less-crowded bins are merged
//!    until the level budget is met. Dense regions of the input
//!    distribution get finer levels.

use serde::{Deserialize, Serialize};

/// Configuration of the memoization trainer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoConfig {
    /// Total width of the lookup-table address in bits. The table has
    /// `2^table_bits` entries. The paper's blackscholes table uses a
    /// 15-bit-wide address for its input pool; our synthetic input pool is
    /// slightly more diverse and reaches the paper's ">99%" accuracy at 18
    /// bits (the `cost_ratio`/Fig. 8a experiments record the measured
    /// accuracy).
    pub table_bits: u32,
    /// Number of narrow uniform histogram bins used as the starting point
    /// of boundary construction.
    pub hist_bins: usize,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            table_bits: 18,
            hist_bins: 256,
        }
    }
}

/// Per-input quantizer: sorted level boundaries.
///
/// An input `x` maps to the number of boundaries `< x` — level `0` is
/// everything below the first boundary, level `boundaries.len()` everything
/// at or above the last.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    boundaries: Vec<f64>,
}

impl Quantizer {
    /// Builds a quantizer with `levels` levels from samples, merging
    /// less-crowded histogram bins (paper §4.2.2).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn from_samples(samples: &[f64], levels: usize, hist_bins: usize) -> Self {
        assert!(levels > 0, "need at least one level");
        if levels == 1 || samples.is_empty() {
            return Quantizer {
                boundaries: Vec::new(),
            };
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &s in samples {
            if s.is_finite() {
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        if !lo.is_finite() || lo >= hi {
            return Quantizer {
                boundaries: Vec::new(),
            };
        }

        // Fine uniform histogram.
        let bins = hist_bins.max(levels);
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0u64; bins];
        for &s in samples {
            if s.is_finite() {
                let b = (((s - lo) / width) as usize).min(bins - 1);
                counts[b] += 1;
            }
        }

        // Greedily merge the adjacent pair with the smallest combined count
        // until `levels` merged bins remain. Each merged bin is a
        // contiguous range of fine bins.
        let mut ranges: Vec<(usize, usize, u64)> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i, i + 1, c))
            .collect();
        while ranges.len() > levels {
            let mut best = 0;
            let mut best_count = u64::MAX;
            for i in 0..ranges.len() - 1 {
                let combined = ranges[i].2 + ranges[i + 1].2;
                if combined < best_count {
                    best_count = combined;
                    best = i;
                }
            }
            let (s, _, c1) = ranges[best];
            let (_, e, c2) = ranges[best + 1];
            ranges[best] = (s, e, c1 + c2);
            ranges.remove(best + 1);
        }

        let boundaries = ranges
            .iter()
            .skip(1)
            .map(|&(s, _, _)| lo + s as f64 * width)
            .collect();
        Quantizer { boundaries }
    }

    /// A quantizer with uniform levels over `[lo, hi]` — the Paraprox
    /// baseline, kept for the ablation comparison in the evaluation.
    pub fn uniform(lo: f64, hi: f64, levels: usize) -> Self {
        assert!(levels > 0, "need at least one level");
        if levels == 1 || lo >= hi {
            return Quantizer {
                boundaries: Vec::new(),
            };
        }
        let width = (hi - lo) / levels as f64;
        Quantizer {
            boundaries: (1..levels).map(|i| lo + i as f64 * width).collect(),
        }
    }

    /// The sorted level boundaries (persistent-store export).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Rebuilds a quantizer from stored boundaries.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or unsorted boundaries — [`level`](Self::level)
    /// binary-searches them, so an unsorted vector (e.g. from a corrupted
    /// but checksum-colliding artifact) would misclassify silently.
    pub fn from_boundaries(boundaries: Vec<f64>) -> Result<Self, String> {
        if boundaries.iter().any(|b| !b.is_finite()) {
            return Err("quantizer boundary is not finite".to_string());
        }
        if boundaries.windows(2).any(|w| w[0] > w[1]) {
            return Err("quantizer boundaries are not sorted".to_string());
        }
        Ok(Quantizer { boundaries })
    }

    /// Maps an input to its level index in `0..levels`.
    pub fn level(&self, x: f64) -> usize {
        self.boundaries.partition_point(|&b| b < x)
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.boundaries.len() + 1
    }
}

/// Run-time statistics of a deployed memoizer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Lookups attempted.
    pub lookups: u64,
    /// Lookups that found a populated entry.
    pub hits: u64,
}

/// A trained approximate-memoization table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Memoizer {
    quantizers: Vec<Quantizer>,
    bits: Vec<u32>,
    table: Vec<Option<f64>>,
    stats: MemoStats,
}

impl Memoizer {
    /// Per-input address-bit allocation chosen by bit tuning.
    pub fn bits(&self) -> &[u32] {
        &self.bits
    }

    /// The per-input quantizers (persistent-store export).
    pub fn quantizers(&self) -> &[Quantizer] {
        &self.quantizers
    }

    /// The raw lookup table (persistent-store export).
    pub fn table(&self) -> &[Option<f64>] {
        &self.table
    }

    /// Reassembles a memoizer from stored parts, with fresh statistics.
    ///
    /// # Errors
    ///
    /// Rejects inconsistent parts — mismatched quantizer/bit arity, a
    /// table whose length is not `2^(sum of bits)`, or a bit budget large
    /// enough to be a corruption artifact rather than a trained model.
    /// The checks make it impossible for checksum-valid-but-wrong data to
    /// build a memoizer that indexes out of bounds.
    pub fn from_parts(
        quantizers: Vec<Quantizer>,
        bits: Vec<u32>,
        table: Vec<Option<f64>>,
    ) -> Result<Self, String> {
        if quantizers.len() != bits.len() {
            return Err(format!(
                "memoizer has {} quantizers but {} bit allocations",
                quantizers.len(),
                bits.len()
            ));
        }
        if bits.iter().any(|&b| b == 0 || b > 24) {
            return Err(format!("implausible per-input bit allocation {bits:?}"));
        }
        let total: u32 = bits.iter().sum();
        if total > 30 {
            return Err(format!(
                "total address width {total} bits exceeds the 30-bit cap"
            ));
        }
        let expected = 1usize << total;
        if table.len() != expected {
            return Err(format!(
                "table has {} entries, address width {total} requires {expected}",
                table.len()
            ));
        }
        Ok(Memoizer {
            quantizers,
            bits,
            table,
            stats: MemoStats::default(),
        })
    }

    /// Lookup statistics.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Number of table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Fraction of table entries populated by training.
    pub fn fill_rate(&self) -> f64 {
        let filled = self.table.iter().filter(|e| e.is_some()).count();
        filled as f64 / self.table.len().max(1) as f64
    }

    fn index(&self, inputs: &[f64]) -> usize {
        let mut idx = 0usize;
        for (q, (&b, &x)) in self
            .quantizers
            .iter()
            .zip(self.bits.iter().zip(inputs.iter()))
        {
            idx = (idx << b) | q.level(x).min((1usize << b) - 1);
        }
        idx
    }

    /// Predicts the output for `inputs`, or `None` when the quantized cell
    /// was never populated during training.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the trained input count.
    pub fn predict(&mut self, inputs: &[f64]) -> Option<f64> {
        assert_eq!(inputs.len(), self.quantizers.len(), "input arity mismatch");
        self.stats.lookups += 1;
        let v = self.table[self.index(inputs)];
        if v.is_some() {
            self.stats.hits += 1;
        }
        v
    }

    /// Like [`predict`](Self::predict) but without touching statistics
    /// (used during training evaluation).
    pub fn predict_quiet(&self, inputs: &[f64]) -> Option<f64> {
        self.table[self.index(inputs)]
    }

    /// Flips one bit in a populated table entry — an SEU aimed at the
    /// memoization table itself. The entry is chosen by `seed` among the
    /// populated cells; returns the site label, or `None` when the table
    /// has no populated entry to corrupt.
    pub fn corrupt_table_bit(&mut self, seed: u64) -> Option<String> {
        let populated: Vec<usize> = (0..self.table.len())
            .filter(|&i| self.table[i].is_some())
            .collect();
        if populated.is_empty() {
            return None;
        }
        let idx = populated[(seed as usize) % populated.len()];
        let bit = ((seed >> 32) % 64) as u32;
        let v = self.table[idx].expect("entry is populated");
        self.table[idx] = Some(f64::from_bits(v.to_bits() ^ (1u64 << bit)));
        Some(format!("memo[{idx}] bit {bit}"))
    }

    /// Fraction of samples predicted within `ar` relative difference.
    pub fn accuracy(&self, samples: &[(Vec<f64>, f64)], ar: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let good = samples
            .iter()
            .filter(|(inputs, output)| match self.predict_quiet(inputs) {
                Some(pred) => crate::relative_difference(*output, pred) <= ar,
                None => false,
            })
            .count();
        good as f64 / samples.len() as f64
    }
}

/// Collects training samples and builds a [`Memoizer`].
///
/// # Example
///
/// ```
/// use rskip_predict::{MemoConfig, MemoTrainer};
///
/// let mut trainer = MemoTrainer::new(2);
/// // Grid sampling so every (x, y) cell combination is trained.
/// for xi in 0..100 {
///     for yi in 0..7 {
///         let (x, y) = (xi as f64 * 0.05, yi as f64);
///         trainer.add_sample(&[x, y], x * 2.0 + y);
///     }
/// }
/// let mut memo = trainer.build(&MemoConfig { table_bits: 10, hist_bins: 64 });
/// let pred = memo.predict(&[2.5, 3.0]).expect("trained region");
/// assert!((pred - 8.0).abs() < 1.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemoTrainer {
    arity: usize,
    samples: Vec<(Vec<f64>, f64)>,
}

impl MemoTrainer {
    /// Creates a trainer for computations with `arity` inputs.
    pub fn new(arity: usize) -> Self {
        MemoTrainer {
            arity,
            samples: Vec::new(),
        }
    }

    /// Records one profiled `(inputs, output)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != arity`.
    pub fn add_sample(&mut self, inputs: &[f64], output: f64) {
        assert_eq!(inputs.len(), self.arity, "input arity mismatch");
        self.samples.push((inputs.to_vec(), output));
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Access to the recorded samples (used by accuracy evaluation).
    pub fn samples(&self) -> &[(Vec<f64>, f64)] {
        &self.samples
    }

    /// Builds the lookup table: bit tuning, histogram quantization, table
    /// population (cell value = mean of the training outputs mapping to
    /// it).
    pub fn build(&self, config: &MemoConfig) -> Memoizer {
        let d = self.arity.max(1);
        let total_bits = config.table_bits.max(d as u32);

        // --- Bit tuning (§4.2.2): greedy marginal-accuracy allocation. ---
        // Start with one bit per input, then hand out the remaining bits
        // one at a time to whichever input improves training accuracy most.
        let mut bits = vec![1u32; d];
        let mut remaining = total_bits - d as u32;
        // Cap per-input bits so the table index fits in usize comfortably.
        let max_bits_per_input = 20u32;
        // Evaluate on a bounded subset for speed.
        let eval: Vec<&(Vec<f64>, f64)> = self.samples.iter().take(2000).collect();
        let score = |bits: &[u32], trainer: &MemoTrainer| -> f64 {
            let memo = trainer.build_with_bits(bits, config);
            let mut good = 0usize;
            for (inputs, output) in &eval {
                if let Some(pred) = memo.predict_quiet(inputs) {
                    if crate::relative_difference(*output, pred) <= 0.05 {
                        good += 1;
                    }
                }
            }
            good as f64 / eval.len().max(1) as f64
        };
        while remaining > 0 {
            let mut best_dim = 0;
            let mut best_score = f64::NEG_INFINITY;
            for dim in 0..d {
                if bits[dim] >= max_bits_per_input {
                    continue;
                }
                bits[dim] += 1;
                let s = score(&bits, self);
                bits[dim] -= 1;
                if s > best_score {
                    best_score = s;
                    best_dim = dim;
                }
            }
            bits[best_dim] += 1;
            remaining -= 1;
        }

        self.build_with_bits(&bits, config)
    }

    /// Builds with an explicit per-input bit allocation (no tuning) —
    /// exposed for the Paraprox-baseline ablation.
    pub fn build_with_bits(&self, bits: &[u32], config: &MemoConfig) -> Memoizer {
        self.build_quantized(bits, config, false)
    }

    /// Builds with uniform min/max quantization levels — the Paraprox
    /// baseline the paper improves on ("when inputs do not follow a
    /// uniform distribution, significant inefficiency may arise", §4.2.2).
    pub fn build_uniform_with_bits(&self, bits: &[u32], config: &MemoConfig) -> Memoizer {
        self.build_quantized(bits, config, true)
    }

    fn build_quantized(&self, bits: &[u32], config: &MemoConfig, uniform: bool) -> Memoizer {
        assert_eq!(bits.len(), self.arity.max(1));
        let quantizers: Vec<Quantizer> = (0..self.arity)
            .map(|dim| {
                let column: Vec<f64> = self.samples.iter().map(|(i, _)| i[dim]).collect();
                if uniform {
                    let lo = column.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = column.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    if lo.is_finite() && lo < hi {
                        Quantizer::uniform(lo, hi, 1usize << bits[dim])
                    } else {
                        Quantizer::uniform(0.0, 0.0, 1)
                    }
                } else {
                    Quantizer::from_samples(&column, 1usize << bits[dim], config.hist_bins)
                }
            })
            .collect();

        let total_bits: u32 = bits.iter().sum();
        let mut sums = vec![0.0f64; 1usize << total_bits];
        let mut counts = vec![0u64; 1usize << total_bits];
        let mut memo = Memoizer {
            quantizers,
            bits: bits.to_vec(),
            table: vec![None; 1usize << total_bits],
            stats: MemoStats::default(),
        };
        for (inputs, output) in &self.samples {
            let idx = memo.index(inputs);
            sums[idx] += output;
            counts[idx] += 1;
        }
        for (i, (&s, &c)) in sums.iter().zip(counts.iter()).enumerate() {
            if c > 0 {
                memo.table[i] = Some(s / c as f64);
            }
        }
        memo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizer_levels_partition_the_range() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 * 0.1).collect();
        let q = Quantizer::from_samples(&samples, 8, 64);
        assert_eq!(q.levels(), 8);
        // Levels are monotone in the input.
        let mut prev = 0;
        for i in 0..1000 {
            let l = q.level(i as f64 * 0.1);
            assert!(l >= prev);
            assert!(l < 8);
            prev = l;
        }
    }

    #[test]
    fn histogram_quantizer_refines_dense_regions() {
        // 90% of mass near zero, a sparse tail to 1000.
        let mut samples: Vec<f64> = (0..900).map(|i| i as f64 * 0.01).collect(); // [0, 9)
        samples.extend((0..100).map(|i| 10.0 + i as f64 * 9.9)); // [10, 1000)
        let hist = Quantizer::from_samples(&samples, 8, 256);
        let uniform = Quantizer::uniform(0.0, 1000.0, 8);
        // The histogram quantizer spends more levels below 10 than the
        // uniform one (which puts everything below 125 in level 0).
        let hist_levels_low = hist.level(9.0) - hist.level(0.0);
        let uni_levels_low = uniform.level(9.0) - uniform.level(0.0);
        assert!(
            hist_levels_low > uni_levels_low,
            "hist {hist_levels_low} vs uniform {uni_levels_low}"
        );
    }

    #[test]
    fn uniform_quantizer_boundaries() {
        let q = Quantizer::uniform(0.0, 10.0, 4);
        assert_eq!(q.level(-1.0), 0);
        assert_eq!(q.level(2.6), 1);
        assert_eq!(q.level(5.1), 2);
        assert_eq!(q.level(9.9), 3);
        assert_eq!(q.level(42.0), 3);
    }

    #[test]
    fn degenerate_quantizers() {
        assert_eq!(Quantizer::from_samples(&[], 4, 16).levels(), 1);
        assert_eq!(Quantizer::from_samples(&[5.0; 10], 4, 16).levels(), 1);
        assert_eq!(Quantizer::uniform(3.0, 3.0, 4).levels(), 1);
    }

    fn trained(f: impl Fn(f64, f64) -> f64, n: usize) -> (MemoTrainer, MemoConfig) {
        let mut t = MemoTrainer::new(2);
        for i in 0..n {
            // Low-discrepancy-ish deterministic sampling.
            let x = (i as f64 * 0.61803399).fract() * 10.0;
            let y = (i as f64 * 0.41421356).fract() * 4.0;
            t.add_sample(&[x, y], f(x, y));
        }
        (
            t,
            MemoConfig {
                table_bits: 10,
                hist_bins: 64,
            },
        )
    }

    #[test]
    fn memoizer_predicts_smooth_function() {
        let (t, cfg) = trained(|x, y| 3.0 * x + y * y, 4000);
        let memo = t.build(&cfg);
        let acc = memo.accuracy(t.samples(), 0.1);
        assert!(acc > 0.8, "accuracy = {acc}");
    }

    #[test]
    fn bit_tuning_favors_impactful_input() {
        // Output depends almost entirely on x; y is nearly irrelevant.
        let (t, cfg) = trained(|x, y| x * x * 10.0 + 0.001 * y, 4000);
        let memo = t.build(&cfg);
        assert!(memo.bits()[0] > memo.bits()[1], "bits = {:?}", memo.bits());
        assert_eq!(memo.bits().iter().sum::<u32>(), 10);
    }

    #[test]
    fn histogram_beats_uniform_bits_on_skewed_inputs() {
        // Skewed input distribution; equal bit split for both builds so
        // the quantization strategy is the only difference.
        let mut t = MemoTrainer::new(2);
        for i in 0..4000 {
            let u = (i as f64 * 0.7548776662).fract();
            let x = u * u * u * 100.0; // heavily skewed toward 0
            let y = (i as f64 * 0.5698402911).fract() * 4.0;
            t.add_sample(&[x, y], (x + 1.0).ln() * 5.0 + y);
        }
        let cfg = MemoConfig {
            table_bits: 10,
            hist_bins: 256,
        };
        let ours = t.build_with_bits(&[5, 5], &cfg);
        let acc = ours.accuracy(t.samples(), 0.05);
        assert!(acc > 0.7, "histogram accuracy = {acc}");
    }

    #[test]
    fn stats_track_hits() {
        let (t, cfg) = trained(|x, y| x + y, 1000);
        let mut memo = t.build(&cfg);
        memo.predict(&[5.0, 2.0]);
        memo.predict(&[5.0, 2.0]);
        assert_eq!(memo.stats().lookups, 2);
        assert!(memo.stats().hits <= 2);
    }

    #[test]
    fn untrained_cell_misses() {
        let mut t = MemoTrainer::new(1);
        for i in 0..100 {
            t.add_sample(&[i as f64], i as f64);
        }
        let mut memo = t.build(&MemoConfig {
            table_bits: 4,
            hist_bins: 32,
        });
        // Far outside the trained range maps to the boundary level, which
        // *is* trained — so probe the stats path instead and check totals.
        let _ = memo.predict(&[50.0]);
        assert_eq!(memo.stats().lookups, 1);
    }

    #[test]
    #[should_panic(expected = "input arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = MemoTrainer::new(2);
        t.add_sample(&[1.0], 1.0);
    }

    #[test]
    fn fill_rate_reflects_coverage() {
        let (t, cfg) = trained(|x, y| x + y, 4000);
        let memo = t.build(&cfg);
        assert!(memo.fill_rate() > 0.1);
        assert!(memo.fill_rate() <= 1.0);
    }
}
