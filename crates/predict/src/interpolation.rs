//! Dynamic interpolation — the trend predictor of paper §4.1 / Fig. 5.

use serde::{Deserialize, Serialize};

use crate::relative_difference;

/// Configuration of one dynamic-interpolation instance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiConfig {
    /// Tuning parameter (TP): maximum relative slope change tolerated when
    /// extending a phase. Higher TP extends strides more aggressively by
    /// ignoring outliers (§4.1.2); run-time management adjusts it.
    pub tp: f64,
    /// Acceptable range (AR): maximum relative difference between an
    /// original value and its linear prediction for the element to be
    /// considered fault-free (fuzzy validation, §2). The paper evaluates
    /// 0.2, 0.5, 0.8 and 1.0.
    pub ar: f64,
}

impl Default for DiConfig {
    fn default() -> Self {
        DiConfig { tp: 0.5, ar: 0.2 }
    }
}

/// Aggregate counters, the source of the paper's *skip rate* metric
/// ("the ratio of iterations skipping re-computation in the loop", §4.1.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DiStats {
    /// Elements observed.
    pub observed: u64,
    /// Elements accepted by fuzzy validation (re-computation skipped).
    pub accepted: u64,
    /// Elements handed back for re-computation because they are phase
    /// endpoints (interpolation "cannot estimate values for endpoints").
    pub endpoints: u64,
    /// Interior elements rejected by fuzzy validation (possible faults or
    /// mispredictions).
    pub rejected: u64,
    /// Phases cut so far.
    pub phases: u64,
}

impl DiStats {
    /// Skip rate in `[0, 1]`: accepted / observed.
    pub fn skip_rate(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.observed as f64
        }
    }
}

/// The outcome of cutting a phase: which element sequence numbers were
/// validated (skip re-computation) and which need re-computation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CutResult {
    /// Sequence numbers accepted by fuzzy validation.
    pub accepted: Vec<u64>,
    /// Sequence numbers requiring re-computation: phase endpoints plus
    /// interior elements outside the acceptable range.
    pub pending: Vec<u64>,
}

impl CutResult {
    fn merge(&mut self, other: CutResult) {
        self.accepted.extend(other.accepted);
        self.pending.extend(other.pending);
    }

    /// True if nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty() && self.pending.is_empty()
    }
}

/// The dynamic-interpolation phase machine.
///
/// Feed loop outputs in iteration order with [`observe`](Self::observe);
/// each call may return a [`CutResult`] when a phase closes. Call
/// [`flush`](Self::flush) at region exit to close the final phase.
///
/// Elements are numbered by a monotonically increasing *sequence number*
/// (0-based, returned results refer to these numbers); the caller maps them
/// back to loop iterations.
///
/// # Example
///
/// ```
/// use rskip_predict::{DiConfig, DynamicInterpolation};
///
/// let mut di = DynamicInterpolation::new(DiConfig { tp: 0.3, ar: 0.2 });
/// // A clean linear ramp: one long phase, all interior points skip.
/// let mut out = Vec::new();
/// for k in 0..100 {
///     if let Some(cut) = di.observe(k as f64 * 2.0) {
///         out.push(cut);
///     }
/// }
/// let fin = di.flush().unwrap();
/// assert_eq!(fin.accepted.len(), 98); // all but the two endpoints
/// ```
#[derive(Clone, Debug)]
pub struct DynamicInterpolation {
    config: DiConfig,
    /// Current phase: (sequence number, value).
    buf: Vec<(u64, f64)>,
    /// Previous slope (valid when `buf.len() >= 2`).
    last_slope: f64,
    seq: u64,
    /// Phases cut since the current region entry — the first phase of a
    /// region must pending-validate *both* endpoints; later phases share
    /// their first endpoint with the previous phase.
    region_phases: u64,
    stats: DiStats,
    /// Recent relative slope changes (bounded window) — the raw material
    /// for context signatures (§5).
    slope_changes: Vec<f64>,
    slope_window: usize,
    /// Self-protection: when set, the phase registers (first/last endpoint
    /// values and the running slope) are held in triplicate and
    /// majority-voted before every use.
    harden: bool,
    /// Two redundant copies of `[first value, last value, last slope]`.
    shadow: [[f64; 3]; 2],
    /// Voting rounds that found a corrupted register.
    detections: u64,
}

impl DynamicInterpolation {
    /// Creates a phase machine with the given configuration.
    pub fn new(config: DiConfig) -> Self {
        DynamicInterpolation {
            config,
            buf: Vec::new(),
            last_slope: 0.0,
            seq: 0,
            region_phases: 0,
            stats: DiStats::default(),
            slope_changes: Vec::new(),
            slope_window: 256,
            harden: false,
            shadow: [[0.0; 3]; 2],
            detections: 0,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> DiConfig {
        self.config
    }

    /// Adjusts the tuning parameter (run-time management, §5). Takes effect
    /// from the next extension decision.
    pub fn set_tp(&mut self, tp: f64) {
        self.config.tp = tp;
    }

    /// Adjusts the acceptable range (the paper's pragma override).
    pub fn set_ar(&mut self, ar: f64) {
        self.config.ar = ar;
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DiStats {
        self.stats
    }

    /// Relative slope changes observed since the last
    /// [`take_slope_changes`](Self::take_slope_changes) (bounded window).
    pub fn slope_changes(&self) -> &[f64] {
        &self.slope_changes
    }

    /// Drains the slope-change window (called by run-time management after
    /// generating a signature).
    pub fn take_slope_changes(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.slope_changes)
    }

    /// Enables or disables phase-register hardening: with hardening on,
    /// the first/last endpoint values and the running slope are duplicated
    /// into two shadow copies and majority-voted before each use, so a
    /// bit flip in one copy repairs instead of steering phase decisions.
    pub fn set_harden(&mut self, on: bool) {
        self.harden = on;
        self.sync_shadows();
    }

    /// Voting rounds that found (and voted out) a corrupted phase register.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Flips one bit in a live phase register — an SEU aimed at the
    /// protection machinery itself. Returns the site label, or `None` when
    /// the phase buffer is empty (nothing live to corrupt).
    pub fn flip_state_bit(&mut self, seed: u64) -> Option<String> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sites = vec!["first"];
        if self.buf.len() >= 2 {
            sites.push("last");
            sites.push("slope");
        }
        let site = sites[(seed as usize) % sites.len()];
        let bit = ((seed >> 32) % 64) as u32;
        let flip = |v: f64| f64::from_bits(v.to_bits() ^ (1u64 << bit));
        match site {
            "first" => self.buf[0].1 = flip(self.buf[0].1),
            "last" => {
                let n = self.buf.len() - 1;
                self.buf[n].1 = flip(self.buf[n].1);
            }
            _ => self.last_slope = flip(self.last_slope),
        }
        Some(format!("di.{site} bit {bit}"))
    }

    /// Refreshes both shadow copies from the primary registers. Called
    /// after every legitimate mutation; an injected flip (which touches
    /// only the primary) is then outvoted at the next use.
    fn sync_shadows(&mut self) {
        if !self.harden {
            return;
        }
        let first = self.buf.first().map_or(0.0, |&(_, v)| v);
        let last = self.buf.last().map_or(0.0, |&(_, v)| v);
        let regs = [first, last, self.last_slope];
        self.shadow = [regs, regs];
    }

    /// Majority-votes each live register against its two shadow copies,
    /// repairing the primary when it is outvoted.
    fn verify_repair(&mut self) {
        if !self.harden || self.buf.is_empty() {
            return;
        }
        let vote = |p: f64, a: f64, b: f64| -> (f64, bool) {
            let (pb, ab, bb) = (p.to_bits(), a.to_bits(), b.to_bits());
            if pb == ab && pb == bb {
                (p, false)
            } else if ab == bb {
                // Primary outvoted by the two agreeing copies.
                (a, true)
            } else {
                // Three-way disagreement (or a corrupted copy): trust the
                // primary, but record that the check fired.
                (p, true)
            }
        };
        let (first, hit0) = vote(self.buf[0].1, self.shadow[0][0], self.shadow[1][0]);
        self.buf[0].1 = first;
        let mut hits = hit0 as u64;
        if self.buf.len() >= 2 {
            let n = self.buf.len() - 1;
            let (last, hit1) = vote(self.buf[n].1, self.shadow[0][1], self.shadow[1][1]);
            self.buf[n].1 = last;
            let (slope, hit2) = vote(self.last_slope, self.shadow[0][2], self.shadow[1][2]);
            self.last_slope = slope;
            hits += hit1 as u64 + hit2 as u64;
        }
        self.detections += hits;
        if hits > 0 {
            self.sync_shadows();
        }
    }

    /// Observes the next loop output. Returns a [`CutResult`] when this
    /// observation closed a phase.
    pub fn observe(&mut self, value: f64) -> Option<CutResult> {
        self.verify_repair();
        let seq = self.seq;
        self.seq += 1;
        self.stats.observed += 1;

        let result = match self.buf.len() {
            0 => {
                // Setup stage (Fig. 5a).
                self.buf.push((seq, value));
                None
            }
            1 => {
                // Second point defines the first slope; always extends.
                self.last_slope = value - self.buf[0].1;
                self.buf.push((seq, value));
                None
            }
            _ => {
                let prev = self.buf[self.buf.len() - 1].1;
                let slope = value - prev;
                // Relative change of the latest two slopes (Fig. 5b):
                // r = |slope2 - slope1| / |slope1|.
                let r = relative_difference(slope, self.last_slope);
                if self.slope_changes.len() < self.slope_window {
                    self.slope_changes.push(r);
                }
                if r <= self.config.tp {
                    // Extend the current phase (Fig. 5b).
                    self.last_slope = slope;
                    self.buf.push((seq, value));
                    None
                } else {
                    // Cut at the previous iteration (Fig. 5c); the previous
                    // endpoint and this outlier seed the next phase
                    // (Fig. 5d: "the setup stage is no longer necessary").
                    let result = self.cut_phase();
                    let last = *self.buf.last().expect("phase endpoint");
                    self.buf.clear();
                    self.buf.push(last);
                    self.last_slope = value - last.1;
                    self.buf.push((seq, value));
                    Some(result)
                }
            }
        };
        self.sync_shadows();
        result
    }

    /// Closes the final phase (region exit). Every remaining element is
    /// classified: interiors validated against the endpoint line, endpoints
    /// pending.
    pub fn flush(&mut self) -> Option<CutResult> {
        self.verify_repair();
        if self.buf.is_empty() {
            return None;
        }
        let mut result = CutResult::default();
        if self.buf.len() == 1 {
            // A lone point cannot be interpolated.
            result.pending.push(self.buf[0].0);
            self.note_endpoints(1);
        } else {
            result.merge(self.cut_phase());
        }
        self.buf.clear();
        self.seq = 0; // next region entry starts fresh numbering
        self.region_phases = 0;
        self.sync_shadows();
        Some(result)
    }

    /// Resets per-run state, keeping configuration and statistics.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.seq = 0;
        self.last_slope = 0.0;
        self.region_phases = 0;
        self.sync_shadows();
    }

    fn note_endpoints(&mut self, n: u64) {
        self.stats.endpoints += n;
    }

    /// Validates the current buffer as one phase where the *first* endpoint
    /// was already pending-validated by a previous cut (shared endpoint),
    /// except for the very first phase of a region.
    fn cut_phase(&mut self) -> CutResult {
        // When a phase is seeded by the previous phase's endpoint, that
        // element was already counted pending once; do not double-count.
        let first_is_shared = self.region_phases > 0;
        self.region_phases += 1;
        self.stats.phases += 1;
        self.validate_buffer(first_is_shared)
    }

    fn validate_buffer(&mut self, first_is_shared: bool) -> CutResult {
        let mut result = CutResult::default();
        let n = self.buf.len();
        debug_assert!(n >= 2);
        let (s0, v0) = self.buf[0];
        let (s1, v1) = self.buf[n - 1];
        // Endpoints: re-computation (unless the first endpoint was already
        // resolved as the previous phase's last endpoint).
        if !first_is_shared {
            result.pending.push(s0);
            self.note_endpoints(1);
        }
        result.pending.push(s1);
        self.note_endpoints(1);
        let span = (s1 - s0) as f64;
        for &(s, v) in &self.buf[1..n - 1] {
            let t = (s - s0) as f64 / span;
            let pred = v0 + (v1 - v0) * t;
            if relative_difference(v, pred) <= self.config.ar {
                result.accepted.push(s);
                self.stats.accepted += 1;
            } else {
                result.pending.push(s);
                self.stats.rejected += 1;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(di: &mut DynamicInterpolation, values: &[f64]) -> CutResult {
        let mut total = CutResult::default();
        for &v in values {
            if let Some(cut) = di.observe(v) {
                total.merge(cut);
            }
        }
        if let Some(fin) = di.flush() {
            total.merge(fin);
        }
        total
    }

    #[test]
    fn linear_ramp_forms_single_phase() {
        let mut di = DynamicInterpolation::new(DiConfig { tp: 0.1, ar: 0.1 });
        let values: Vec<f64> = (0..50).map(|k| 3.0 + 0.5 * k as f64).collect();
        let r = drive(&mut di, &values);
        assert_eq!(r.accepted.len(), 48);
        assert_eq!(r.pending.len(), 2); // two endpoints
        assert_eq!(di.stats().phases, 1);
        assert!((di.stats().skip_rate() - 0.96).abs() < 1e-9);
    }

    #[test]
    fn constant_values_form_single_phase() {
        let mut di = DynamicInterpolation::new(DiConfig { tp: 0.1, ar: 0.01 });
        let r = drive(&mut di, &[7.0; 20]);
        assert_eq!(r.accepted.len(), 18);
        assert_eq!(r.pending.len(), 2);
    }

    #[test]
    fn slope_break_cuts_phase() {
        // Ramp up then ramp down: exactly one cut at the kink.
        let mut values: Vec<f64> = (0..10).map(|k| k as f64).collect();
        values.extend((0..10).map(|k| 9.0 - k as f64));
        let mut di = DynamicInterpolation::new(DiConfig { tp: 0.5, ar: 0.1 });
        let r = drive(&mut di, &values);
        // Three phases: the ascent, a two-element bridge at the kink
        // (slope 0 between the repeated peak values), and the descent.
        assert_eq!(di.stats().phases, 3);
        // Pending: first endpoint, kink endpoint (shared), final endpoint,
        // and the first point of the descending slope (it broke the trend
        // and seeded phase 2 as its second element — an interior of no
        // phase). Check the accounting is consistent instead of exact ids:
        assert_eq!(
            r.accepted.len() + r.pending.len(),
            values.len(),
            "every element classified exactly once"
        );
        assert!(r.accepted.len() >= 15);
    }

    #[test]
    fn every_element_classified_exactly_once_under_noise() {
        // Deterministic pseudo-noise; moderate TP so several phases form.
        let values: Vec<f64> = (0..200)
            .map(|k| {
                let k = k as f64;
                (k * 0.37).sin() * 10.0 + k * 0.1
            })
            .collect();
        let mut di = DynamicInterpolation::new(DiConfig { tp: 0.4, ar: 0.3 });
        let r = drive(&mut di, &values);
        let mut all: Vec<u64> = r.accepted.iter().chain(r.pending.iter()).copied().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..200).collect();
        assert_eq!(all, expect);
        assert!(di.stats().phases > 1);
    }

    #[test]
    fn fuzzy_validation_rejects_out_of_range_interior() {
        // One corrupted interior sample on an otherwise perfect line.
        let mut values: Vec<f64> = (0..20).map(|k| 100.0 + k as f64).collect();
        values[10] = 160.0; // way outside AR=0.2 of ~110
                            // TP huge so the corruption does not cut the phase; it must be
                            // caught by validation instead.
        let mut di = DynamicInterpolation::new(DiConfig { tp: 1e9, ar: 0.2 });
        let r = drive(&mut di, &values);
        assert!(r.pending.contains(&10), "corrupted element must be pending");
        assert!(!r.accepted.contains(&10));
    }

    #[test]
    fn small_in_range_error_is_a_false_negative() {
        // The trade-off the paper embraces: within-AR corruption skips.
        let mut values: Vec<f64> = (0..20).map(|k| 100.0 + k as f64).collect();
        values[10] += 5.0; // ~4.5% of 110 < AR=0.2
        let mut di = DynamicInterpolation::new(DiConfig { tp: 1e9, ar: 0.2 });
        let r = drive(&mut di, &values);
        assert!(r.accepted.contains(&10));
    }

    #[test]
    fn higher_tp_yields_fewer_phases() {
        let values: Vec<f64> = (0..300).map(|k| (k as f64 * 0.2).sin() * 5.0).collect();
        let run = |tp: f64| {
            let mut di = DynamicInterpolation::new(DiConfig { tp, ar: 0.5 });
            drive(&mut di, &values);
            di.stats().phases
        };
        let low = run(0.05);
        let high = run(2.0);
        assert!(high < low, "tp=2.0 gave {high} phases, tp=0.05 gave {low}");
    }

    #[test]
    fn higher_ar_accepts_more() {
        let values: Vec<f64> = (0..300)
            .map(|k| (k as f64 * 0.45).sin() * 8.0 + 20.0)
            .collect();
        let run = |ar: f64| {
            let mut di = DynamicInterpolation::new(DiConfig { tp: 0.8, ar });
            drive(&mut di, &values).accepted.len()
        };
        assert!(run(1.0) >= run(0.2));
    }

    #[test]
    fn flush_resets_sequence_numbers() {
        let mut di = DynamicInterpolation::new(DiConfig::default());
        di.observe(1.0);
        di.observe(2.0);
        di.observe(3.0);
        di.flush();
        // New region: numbering restarts at 0.
        di.observe(5.0);
        di.observe(6.0);
        let r = di.flush().unwrap();
        assert!(r.pending.iter().all(|&s| s < 2));
    }

    #[test]
    fn slope_change_window_collects_and_drains() {
        let mut di = DynamicInterpolation::new(DiConfig { tp: 0.5, ar: 0.2 });
        for k in 0..50 {
            di.observe((k as f64 * 0.3).cos());
        }
        assert!(!di.slope_changes().is_empty());
        let taken = di.take_slope_changes();
        assert!(!taken.is_empty());
        assert!(di.slope_changes().is_empty());
    }

    #[test]
    fn two_point_region_is_all_pending() {
        let mut di = DynamicInterpolation::new(DiConfig::default());
        di.observe(1.0);
        di.observe(9.0);
        let r = di.flush().unwrap();
        assert!(r.accepted.is_empty());
        assert_eq!(r.pending.len(), 2);
    }

    #[test]
    fn single_point_region_is_pending() {
        let mut di = DynamicInterpolation::new(DiConfig::default());
        di.observe(1.0);
        let r = di.flush().unwrap();
        assert_eq!(r.pending, vec![0]);
    }

    #[test]
    fn empty_flush_returns_none() {
        let mut di = DynamicInterpolation::new(DiConfig::default());
        assert!(di.flush().is_none());
    }

    #[test]
    fn hardened_di_votes_out_a_flipped_endpoint() {
        // Same ramp through a hardened and a pristine machine; flip a
        // phase register mid-stream in the hardened one. The vote must
        // repair it: classifications stay identical, detection recorded.
        let values: Vec<f64> = (0..60).map(|k| 3.0 + 0.5 * k as f64).collect();
        let cfg = DiConfig { tp: 0.1, ar: 0.1 };
        let mut clean = DynamicInterpolation::new(cfg);
        let mut hard = DynamicInterpolation::new(cfg);
        hard.set_harden(true);
        for (k, &v) in values.iter().enumerate() {
            if k == 30 {
                let site = hard.flip_state_bit(0x0017_0000_0001).expect("live target");
                assert!(site.starts_with("di."));
            }
            assert_eq!(clean.observe(v).is_some(), hard.observe(v).is_some());
        }
        let a = clean.flush().unwrap();
        let b = hard.flush().unwrap();
        assert_eq!(a, b, "vote must fully mask the flip");
        assert!(hard.detections() >= 1);
    }

    #[test]
    fn unhardened_flip_goes_undetected() {
        let mut di = DynamicInterpolation::new(DiConfig { tp: 0.1, ar: 0.1 });
        for k in 0..10 {
            di.observe(k as f64);
        }
        assert!(di.flip_state_bit(0x003f_0000_0002).is_some());
        for k in 10..20 {
            di.observe(k as f64);
        }
        di.flush();
        assert_eq!(di.detections(), 0);
    }

    #[test]
    fn flip_with_no_live_state_returns_none() {
        let mut di = DynamicInterpolation::new(DiConfig::default());
        assert!(di.flip_state_bit(42).is_none());
    }
}
