//! Property tests over the prediction models.

use proptest::prelude::*;
use rskip_predict::{
    relative_difference, DiConfig, DynamicInterpolation, MemoConfig, MemoTrainer, Quantizer,
};

fn value_stream() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every observed element is classified exactly once — accepted or
    /// pending — no matter the stream, TP or AR.
    #[test]
    fn di_partitions_every_stream(
        values in value_stream(),
        tp in 0.0f64..10.0,
        ar in 0.0f64..2.0,
    ) {
        let mut di = DynamicInterpolation::new(DiConfig { tp, ar });
        let mut accepted = Vec::new();
        let mut pending = Vec::new();
        for &v in &values {
            if let Some(cut) = di.observe(v) {
                accepted.extend(cut.accepted);
                pending.extend(cut.pending);
            }
        }
        if let Some(fin) = di.flush() {
            accepted.extend(fin.accepted);
            pending.extend(fin.pending);
        }
        let mut all: Vec<u64> = accepted.iter().chain(pending.iter()).copied().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..values.len() as u64).collect();
        prop_assert_eq!(all, expect);

        let stats = di.stats();
        prop_assert_eq!(stats.observed, values.len() as u64);
        prop_assert_eq!(stats.accepted, accepted.len() as u64);
        prop_assert_eq!(
            stats.endpoints + stats.rejected,
            pending.len() as u64
        );
    }

    /// Accepted elements really are within AR of the endpoint line: replay
    /// the classification against a from-scratch linear check.
    #[test]
    fn di_accepted_elements_satisfy_the_acceptable_range(
        values in prop::collection::vec(1.0f64..1e4, 3..200),
        tp in 0.01f64..5.0,
        ar in 0.0f64..1.0,
    ) {
        let mut di = DynamicInterpolation::new(DiConfig { tp, ar });
        let mut cuts = Vec::new();
        for &v in &values {
            if let Some(cut) = di.observe(v) {
                cuts.push(cut);
            }
        }
        if let Some(fin) = di.flush() {
            cuts.push(fin);
        }
        // Reconstruct each phase's endpoints: the last endpoint is the
        // cut's maximum id (always pending); the first endpoint is the
        // previous phase's last endpoint (shared, already pended there) or,
        // for the first phase, the cut's minimum id.
        let mut prev_hi: Option<u64> = None;
        for cut in &cuts {
            let hi = match cut.pending.iter().chain(cut.accepted.iter()).max() {
                Some(&h) => h,
                None => continue,
            };
            let lo = prev_hi.unwrap_or_else(|| {
                *cut.pending
                    .iter()
                    .chain(cut.accepted.iter())
                    .min()
                    .expect("nonempty cut")
            });
            prev_hi = Some(hi);
            if lo >= hi {
                continue;
            }
            let (v_lo, v_hi) = (values[lo as usize], values[hi as usize]);
            for &s in &cut.accepted {
                prop_assert!(s > lo && s < hi, "accepted element {s} outside ({lo}, {hi})");
                let t = (s - lo) as f64 / (hi - lo) as f64;
                let pred = v_lo + (v_hi - v_lo) * t;
                let diff = relative_difference(values[s as usize], pred);
                prop_assert!(
                    diff <= ar + 1e-9,
                    "accepted element {s} off the line: diff {diff} > ar {ar}"
                );
            }
        }
    }

    /// Quantizer levels are monotone in the input and stay in range.
    #[test]
    fn quantizer_is_monotone_and_in_range(
        samples in prop::collection::vec(-1e5f64..1e5, 2..500),
        levels_pow in 1u32..6,
        probes in prop::collection::vec(-2e5f64..2e5, 1..50),
    ) {
        let levels = 1usize << levels_pow;
        let q = Quantizer::from_samples(&samples, levels, 64);
        prop_assert!(q.levels() <= levels);
        let mut sorted = probes.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = 0usize;
        for (i, &x) in sorted.iter().enumerate() {
            let l = q.level(x);
            prop_assert!(l < q.levels());
            if i > 0 {
                prop_assert!(l >= prev, "levels must be monotone");
            }
            prev = l;
        }
    }

    /// Memoizer predictions for trained samples reproduce a cell mean: the
    /// prediction must lie within the min/max of the outputs that share the
    /// cell — checked indirectly: predicting a trained input never misses
    /// and is within the global output range.
    #[test]
    fn memoizer_predicts_within_training_range(
        raw in prop::collection::vec((0.0f64..100.0, 0.0f64..10.0), 16..300),
        bits in 4u32..10,
    ) {
        let mut trainer = MemoTrainer::new(2);
        for (x, y) in &raw {
            trainer.add_sample(&[*x, *y], x * 2.0 + y);
        }
        let cfg = MemoConfig { table_bits: bits.max(2), hist_bins: 32 };
        let memo = trainer.build_with_bits(&[bits.max(2) / 2, bits.max(2) - bits.max(2) / 2], &cfg);
        let lo = raw.iter().map(|(x, y)| x * 2.0 + y).fold(f64::INFINITY, f64::min);
        let hi = raw.iter().map(|(x, y)| x * 2.0 + y).fold(f64::NEG_INFINITY, f64::max);
        for (x, y) in raw.iter().take(50) {
            let p = memo.predict_quiet(&[*x, *y]);
            prop_assert!(p.is_some(), "trained input must hit a populated cell");
            let p = p.unwrap();
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "prediction {p} outside [{lo}, {hi}]");
        }
    }

    /// TP monotonicity: raising TP never increases the number of phases.
    #[test]
    fn di_phase_count_is_monotone_in_tp(values in prop::collection::vec(0.1f64..1e3, 10..300)) {
        let phases = |tp: f64| {
            let mut di = DynamicInterpolation::new(DiConfig { tp, ar: 0.5 });
            for &v in &values {
                di.observe(v);
            }
            di.flush();
            di.stats().phases
        };
        let low = phases(0.05);
        let mid = phases(0.5);
        let high = phases(50.0);
        prop_assert!(low >= mid, "phases(tp=0.05)={low} < phases(tp=0.5)={mid}");
        prop_assert!(mid >= high, "phases(tp=0.5)={mid} < phases(tp=50)={high}");
    }
}
