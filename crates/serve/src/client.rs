//! A small blocking client for the campaign service.
//!
//! One [`Client`] is one session (one TCP connection). The API is
//! synchronous because every caller in this workspace is: the
//! `rskip-eval submit` subcommand, the CI smoke test, and the
//! integration suite. Multiple jobs *can* share a connection (frames
//! carry job ids), but [`stream_job`](Client::stream_job) is written
//! for the common one-job-per-connection case and treats other jobs'
//! frames as ignorable noise.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode, encode, DoneFrame, ErrorKind, JobSpec, ProgressFrame, Request, Response,
};

/// What the server said in its `Hello`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// Wire protocol version.
    pub protocol: u32,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
}

/// A streamed job, fully consumed.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// Every progress frame, in order.
    pub progress: Vec<ProgressFrame>,
    /// The terminal frame: `Done` on completion, `Cancelled` frames are
    /// surfaced as `Err` by [`stream_job`](Client::stream_job) callers
    /// that asked to cancel, so this is always a completion here.
    pub done: DoneFrame,
}

fn bad_data(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// One session with a campaign server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    info: ServerInfo,
}

impl Client {
    /// Connects and consumes the server's `Hello`.
    ///
    /// # Errors
    ///
    /// Connection failure, or a first frame that is not a `Hello`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            info: ServerInfo {
                protocol: 0,
                workers: 0,
                queue_capacity: 0,
            },
        };
        match client.recv()? {
            Response::Hello {
                protocol,
                workers,
                queue_capacity,
            } => {
                client.info = ServerInfo {
                    protocol,
                    workers,
                    queue_capacity,
                };
                Ok(client)
            }
            other => Err(bad_data(format!("expected Hello, got {other:?}"))),
        }
    }

    /// The server's greeting.
    #[must_use]
    pub fn info(&self) -> ServerInfo {
        self.info
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let mut line = encode(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Sends one raw line verbatim (plus newline) — for exercising the
    /// server's malformed-frame path from tests and smoke checks.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response frame (blocking).
    ///
    /// # Errors
    ///
    /// EOF (`UnexpectedEof`), socket failure, or an unparseable frame
    /// (`InvalidData`).
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                return decode(&line).map_err(bad_data);
            }
        }
    }

    /// Submits `spec` and returns the server's immediate answer
    /// (`Accepted` or `Rejected`).
    ///
    /// # Errors
    ///
    /// Transport failure, or an unrelated frame arriving first — use
    /// raw [`send`](Client::send)/[`recv`](Client::recv) when
    /// multiplexing jobs on one connection.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Response> {
        self.send(&Request::Submit(spec.clone()))?;
        loop {
            match self.recv()? {
                r @ (Response::Accepted { .. } | Response::Rejected { .. }) => return Ok(r),
                Response::Progress(_) | Response::Done(_) | Response::Cancelled { .. } => {}
                Response::Error { error, detail } => {
                    return Err(bad_data(format!("submit failed: {error:?}: {detail}")))
                }
                Response::Hello { .. } => {}
            }
        }
    }

    /// Submits `spec`, expecting acceptance, and returns the job id.
    ///
    /// # Errors
    ///
    /// Transport failure, or a rejection (mapped to `InvalidData` with
    /// the typed reason in the message).
    pub fn submit_accepted(&mut self, spec: &JobSpec) -> io::Result<u64> {
        match self.submit(spec)? {
            Response::Accepted { job, .. } => Ok(job),
            Response::Rejected { error, detail, .. } => {
                Err(bad_data(format!("rejected: {error:?}: {detail}")))
            }
            other => Err(bad_data(format!("unexpected frame {other:?}"))),
        }
    }

    /// Requests cancellation of `job`. The terminal `Cancelled` frame
    /// (or `Error` for an unknown/finished job) arrives on the stream.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn cancel(&mut self, job: u64) -> io::Result<()> {
        self.send(&Request::Cancel { job })
    }

    /// Asks the server to drain and shut down.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)
    }

    /// Consumes frames until `job` reaches a terminal frame, invoking
    /// `on_progress` for each of its progress frames. Frames belonging
    /// to other jobs on this connection are skipped.
    ///
    /// # Errors
    ///
    /// Transport failure, a `Cancelled`/`Error` terminal for this job
    /// (mapped to `Interrupted`/`InvalidData`), or EOF before the
    /// terminal frame.
    pub fn stream_job(
        &mut self,
        job: u64,
        mut on_progress: impl FnMut(&ProgressFrame),
    ) -> io::Result<JobOutcome> {
        let mut progress = Vec::new();
        loop {
            match self.recv()? {
                Response::Progress(frame) if frame.job == job => {
                    on_progress(&frame);
                    progress.push(frame);
                }
                Response::Done(done) if done.job == job => {
                    return Ok(JobOutcome {
                        job,
                        progress,
                        done,
                    })
                }
                Response::Cancelled {
                    job: cancelled,
                    executed,
                    ..
                } if cancelled == job => {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("job {job} cancelled after {executed} trials"),
                    ))
                }
                Response::Error { error, detail } if error == ErrorKind::UnknownJob => {
                    return Err(bad_data(format!("{error:?}: {detail}")))
                }
                _ => {}
            }
        }
    }
}
