//! A small blocking client for the campaign service.
//!
//! One [`Client`] is one session (one TCP connection). The API is
//! synchronous because every caller in this workspace is: the
//! `rskip-eval submit` subcommand, the CI smoke test, and the
//! integration suite. Multiple jobs *can* share a connection (frames
//! carry job ids), but [`stream_job`](Client::stream_job) is written
//! for the common one-job-per-connection case and treats other jobs'
//! frames as ignorable noise.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode, encode, DoneFrame, ErrorKind, JobSpec, ProgressFrame, Request, Response,
    PROTOCOL_VERSION,
};

/// How a client waits out transient failures: capped, jittered
/// exponential backoff, honoring the server's `retry_after_ms` hint
/// when one is offered.
///
/// Reconnect-and-resubmit is *safe* against a v2 server, which is what
/// makes the retry loop more than a prayer: a completed job answers
/// from the result cache, an in-flight duplicate is refused with a
/// retry hint instead of double-running, and a job orphaned by the
/// broken connection parks its progress and the resubmission resumes
/// it at the next chunk boundary.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 means no retries.
    pub max_attempts: u32,
    /// Backoff before the second attempt, milliseconds.
    pub base_ms: u64,
    /// Ceiling for any single backoff, milliseconds (pre-jitter).
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_ms: 100,
            cap_ms: 5_000,
        }
    }
}

impl RetryPolicy {
    /// The pre-sleep delay after failed attempt number `attempt`
    /// (zero-based): the server's hint when present, else
    /// `base_ms << attempt`, capped at `cap_ms`, plus up to 25%
    /// jitter. Pure in its inputs so the bounds are testable.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32, hint: Option<u64>, jitter: u64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms);
        let base = hint.unwrap_or(exp).min(self.cap_ms).max(1);
        base + jitter % (base / 4 + 1)
    }
}

/// Whether one attempt failed transiently (worth a backoff and retry)
/// or terminally.
enum AttemptError {
    Retry { hint: Option<u64>, err: io::Error },
    Fatal(io::Error),
}

/// What the server said in its `Hello`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// Wire protocol version.
    pub protocol: u32,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
}

/// A streamed job, fully consumed.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// Every progress frame, in order.
    pub progress: Vec<ProgressFrame>,
    /// The terminal frame: `Done` on completion, `Cancelled` frames are
    /// surfaced as `Err` by [`stream_job`](Client::stream_job) callers
    /// that asked to cancel, so this is always a completion here.
    pub done: DoneFrame,
}

fn bad_data(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// One session with a campaign server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    info: ServerInfo,
}

impl Client {
    /// Connects and consumes the server's `Hello`.
    ///
    /// # Errors
    ///
    /// Connection failure, or a first frame that is not a `Hello`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            info: ServerInfo {
                protocol: 0,
                workers: 0,
                queue_capacity: 0,
            },
        };
        match client.recv()? {
            Response::Hello {
                protocol,
                workers,
                queue_capacity,
            } => {
                client.info = ServerInfo {
                    protocol,
                    workers,
                    queue_capacity,
                };
                // Declare ourselves only to servers that already
                // advertised v2 — a v1 server would reject the (to it,
                // unknown) frame as malformed.
                if protocol >= 2 {
                    client.send(&Request::Hello {
                        protocol: PROTOCOL_VERSION,
                    })?;
                }
                Ok(client)
            }
            other => Err(bad_data(format!("expected Hello, got {other:?}"))),
        }
    }

    /// The server's greeting.
    #[must_use]
    pub fn info(&self) -> ServerInfo {
        self.info
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let mut line = encode(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Sends one raw line verbatim (plus newline) — for exercising the
    /// server's malformed-frame path from tests and smoke checks.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response frame (blocking).
    ///
    /// # Errors
    ///
    /// EOF (`UnexpectedEof`), socket failure, or an unparseable frame
    /// (`InvalidData`).
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                return decode(&line).map_err(bad_data);
            }
        }
    }

    /// Submits `spec` and returns the server's immediate answer
    /// (`Accepted` or `Rejected`).
    ///
    /// # Errors
    ///
    /// Transport failure, or an unrelated frame arriving first — use
    /// raw [`send`](Client::send)/[`recv`](Client::recv) when
    /// multiplexing jobs on one connection.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Response> {
        self.send(&Request::Submit(spec.clone()))?;
        loop {
            match self.recv()? {
                r @ (Response::Accepted { .. } | Response::Rejected { .. }) => return Ok(r),
                Response::Progress(_) | Response::Done(_) | Response::Cancelled { .. } => {}
                Response::Error { error, detail } => {
                    return Err(bad_data(format!("submit failed: {error:?}: {detail}")))
                }
                Response::Hello { .. } => {}
            }
        }
    }

    /// Submits `spec`, expecting acceptance, and returns the job id.
    ///
    /// # Errors
    ///
    /// Transport failure, or a rejection (mapped to `InvalidData` with
    /// the typed reason in the message).
    pub fn submit_accepted(&mut self, spec: &JobSpec) -> io::Result<u64> {
        match self.submit(spec)? {
            Response::Accepted { job, .. } => Ok(job),
            Response::Rejected { error, detail, .. } => {
                Err(bad_data(format!("rejected: {error:?}: {detail}")))
            }
            other => Err(bad_data(format!("unexpected frame {other:?}"))),
        }
    }

    /// Requests cancellation of `job`. The terminal `Cancelled` frame
    /// (or `Error` for an unknown/finished job) arrives on the stream.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn cancel(&mut self, job: u64) -> io::Result<()> {
        self.send(&Request::Cancel { job })
    }

    /// Asks the server to drain and shut down.
    ///
    /// # Errors
    ///
    /// Socket write failure.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)
    }

    /// Consumes frames until `job` reaches a terminal frame, invoking
    /// `on_progress` for each of its progress frames. Frames belonging
    /// to other jobs on this connection are skipped.
    ///
    /// # Errors
    ///
    /// Transport failure, a `Cancelled`/`Error` terminal for this job
    /// (mapped to `Interrupted`/`InvalidData`), or EOF before the
    /// terminal frame.
    pub fn stream_job(
        &mut self,
        job: u64,
        mut on_progress: impl FnMut(&ProgressFrame),
    ) -> io::Result<JobOutcome> {
        let mut progress = Vec::new();
        loop {
            match self.recv()? {
                Response::Progress(frame) if frame.job == job => {
                    on_progress(&frame);
                    progress.push(frame);
                }
                Response::Done(done) if done.job == job => {
                    return Ok(JobOutcome {
                        job,
                        progress,
                        done,
                    })
                }
                Response::Cancelled {
                    job: cancelled,
                    executed,
                    ..
                } if cancelled == job => {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("job {job} cancelled after {executed} trials"),
                    ))
                }
                Response::Error { error, detail } if error == ErrorKind::UnknownJob => {
                    return Err(bad_data(format!("{error:?}: {detail}")))
                }
                _ => {}
            }
        }
    }

    /// Submits `spec` and drives it to `Done`, surviving transient
    /// failures per `policy`: connection refusals and broken streams
    /// reconnect and resubmit (safe — see [`RetryPolicy`]);
    /// `QueueFull` / `DuplicateInFlight` rejections honor the server's
    /// `retry_after_ms` hint, falling back to capped jittered
    /// exponential backoff. `on_progress` sees every progress frame
    /// across all attempts; a resumed job continues from its last
    /// completed chunk, so frames never repeat trials.
    ///
    /// # Errors
    ///
    /// A terminal rejection (bad spec, shutdown), an explicit
    /// cancellation, or the last transient error once attempts run
    /// out.
    pub fn submit_resilient<A: ToSocketAddrs>(
        addr: A,
        spec: &JobSpec,
        policy: RetryPolicy,
        mut on_progress: impl FnMut(&ProgressFrame),
    ) -> io::Result<DoneFrame> {
        // Deterministic-per-process jitter; no RNG dependency needed
        // for spreading a retry herd.
        let mut jitter = 0x2545_F491_4F6C_DD1D_u64 ^ u64::from(std::process::id());
        let mut next_jitter = move || {
            jitter ^= jitter << 13;
            jitter ^= jitter >> 7;
            jitter ^= jitter << 17;
            jitter
        };
        let attempts = policy.max_attempts.max(1);
        let mut last_err = io::Error::other("no attempts made");
        for attempt in 0..attempts {
            match Self::attempt_job(&addr, spec, &mut on_progress) {
                Ok(done) => return Ok(done),
                Err(AttemptError::Fatal(err)) => return Err(err),
                Err(AttemptError::Retry { hint, err }) => {
                    last_err = err;
                    if attempt + 1 < attempts {
                        let ms = policy.delay_ms(attempt, hint, next_jitter());
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
            }
        }
        Err(last_err)
    }

    /// One connect → submit → stream attempt, classifying failures.
    fn attempt_job<A: ToSocketAddrs>(
        addr: &A,
        spec: &JobSpec,
        on_progress: &mut impl FnMut(&ProgressFrame),
    ) -> Result<DoneFrame, AttemptError> {
        let retry = |hint, err| AttemptError::Retry { hint, err };
        let mut client = Client::connect(addr).map_err(|e| retry(None, e))?;
        let job = match client.submit(spec).map_err(|e| retry(None, e))? {
            Response::Accepted { job, .. } => job,
            Response::Rejected {
                error,
                detail,
                retry_after_ms,
            } => {
                let err = bad_data(format!("rejected: {error:?}: {detail}"));
                return Err(match error {
                    ErrorKind::QueueFull | ErrorKind::DuplicateInFlight => {
                        retry(retry_after_ms, err)
                    }
                    _ => AttemptError::Fatal(err),
                });
            }
            other => {
                return Err(AttemptError::Fatal(bad_data(format!(
                    "unexpected frame {other:?}"
                ))))
            }
        };
        match client.stream_job(job, on_progress) {
            Ok(outcome) => Ok(outcome.done),
            // An explicit cancel is a decision, not an outage.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Err(AttemptError::Fatal(e)),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => Err(AttemptError::Fatal(e)),
            // EOF / reset mid-stream: the server suspends the orphaned
            // job; resubmitting resumes it.
            Err(e) => Err(retry(None, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_hinted_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_ms: 100,
            cap_ms: 3_000,
        };
        // Exponential without a hint: 100, 200, 400 ... capped.
        assert_eq!(policy.delay_ms(0, None, 0), 100);
        assert_eq!(policy.delay_ms(1, None, 0), 200);
        assert_eq!(policy.delay_ms(10, None, 0), 3_000);
        assert_eq!(policy.delay_ms(63, None, 0), 3_000, "shift must not wrap");
        // The server's hint overrides the exponent but not the cap.
        assert_eq!(policy.delay_ms(0, Some(750), 0), 750);
        assert_eq!(policy.delay_ms(0, Some(60_000), 0), 3_000);
        // Jitter adds at most 25%.
        for jitter in [1u64, 17, u64::MAX] {
            let d = policy.delay_ms(2, None, jitter);
            assert!((400..=500).contains(&d), "jittered delay {d}");
        }
    }
}
