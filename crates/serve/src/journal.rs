//! The durable job journal: what makes the campaign service
//! crash-safe.
//!
//! Every tenant gets one append-only record log
//! (`<state_dir>/<tenant>.journal`, the [`rskip_store::journal`]
//! format — CRC-framed records, fsync-on-append, torn-tail truncation
//! on open). Each record is one serde-JSON [`JournalEvent`]:
//!
//! * [`Accepted`](JournalEvent::Accepted) — the full job spec, its
//!   content-hash key and effective chunk size, written before the
//!   first trial runs;
//! * [`Chunk`](JournalEvent::Chunk) — the executed-trial count and the
//!   *merged running aggregate* after each chunk. Because trial seeds
//!   are a pure function of `(campaign seed, trial index)` and
//!   [`CampaignStats`] is a commutative monoid, this pair is a
//!   complete checkpoint: a crashed job restarts from `executed` and
//!   merges to the byte-identical final aggregate;
//! * [`Done`](JournalEvent::Done) / [`Cancelled`](JournalEvent::Cancelled)
//!   — terminal markers. `Done` carries everything the result cache
//!   needs to answer a resubmission without running a trial;
//!   `Cancelled` makes an explicit cancel stick across restarts.
//!
//! A job with no terminal marker is exactly a job the server owes work
//! on: [`replay`] turns those into [`ResumableJob`]s (resumed at the
//! next chunk boundary) and the `Done`s into cache seeds. Job ids are
//! made idempotent across restarts by seeding the server's id counter
//! from the journal's maximum.
//!
//! Jobs that stream per-trial outcome codes (`want_outcomes`) are not
//! journaled: a replayed job cannot re-emit codes for trials it did
//! not run, so those jobs are honestly restart-from-zero.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use rskip_core::stats::CampaignStats;
use rskip_store::journal::JournalFile;
use rskip_store::StoreError;

use crate::protocol::{encode, DoneFrame, JobSpec};

/// One journal record. The variants mirror the job life cycle; see the
/// module docs for what each one guarantees.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// A job entered the queue (or re-entered it, resuming suspended
    /// progress under a fresh id).
    Accepted {
        /// Server-assigned job id.
        job: u64,
        /// Content-hash identity of the work (see
        /// [`job_key`](crate::server::job_key)).
        key: u64,
        /// The submitted spec, verbatim.
        spec: JobSpec,
        /// Effective chunk size — replayed jobs must keep it so the
        /// early-stop decision points (hence the executed-trial set)
        /// stay identical to the uninterrupted run.
        chunk: u32,
    },
    /// A chunk finished; `stats` is the merged aggregate over all
    /// `executed` trials so far — a complete resume checkpoint.
    Chunk {
        /// Job id.
        job: u64,
        /// Trials executed so far.
        executed: u32,
        /// Running aggregate over those trials.
        stats: CampaignStats,
    },
    /// The job completed (all trials or early stop).
    Done {
        /// Job id.
        job: u64,
        /// Trials executed.
        executed: u32,
        /// Whether the early-stopping rule fired.
        early_stopped: bool,
        /// Final aggregate.
        stats: CampaignStats,
        /// Wall nanoseconds the job spent executing.
        total_nanos: u64,
    },
    /// The job was explicitly cancelled — terminal; a restart must not
    /// resurrect it.
    Cancelled {
        /// Job id.
        job: u64,
        /// Trials executed before the cancel took effect.
        executed: u32,
    },
}

/// An unfinished job reconstructed from the journal: everything the
/// server needs to re-enqueue it at its next chunk boundary.
#[derive(Clone, Debug)]
pub struct ResumableJob {
    /// Original job id (kept, so later journal records line up).
    pub job: u64,
    /// Content-hash identity.
    pub key: u64,
    /// The spec as originally submitted.
    pub spec: JobSpec,
    /// Original effective chunk size.
    pub chunk: u32,
    /// Trials already executed (resume starts here).
    pub executed: u32,
    /// Merged aggregate over the executed trials.
    pub stats: CampaignStats,
}

/// Everything recovered from a state directory's journals.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Unfinished jobs, ordered by original job id.
    pub resumable: Vec<ResumableJob>,
    /// Completed results, keyed by job key — the result cache's seed.
    pub completed: BTreeMap<u64, DoneFrame>,
    /// One past the largest job id seen — the restarted server's id
    /// counter, so ids stay unique across restarts.
    pub next_job_id: u64,
    /// Torn-tail bytes truncated across all journals (crash residue).
    pub truncated_bytes: u64,
    /// Records that framed cleanly but did not decode as events
    /// (foreign writer or logic drift) — skipped, never fatal.
    pub skipped_records: u64,
    /// Total events replayed.
    pub events: u64,
}

/// Per-tenant journal writers for one state directory.
pub struct JobJournal {
    dir: PathBuf,
    tenants: BTreeMap<String, JournalFile>,
}

impl JobJournal {
    /// Opens every existing `*.journal` under `dir` (creating `dir` if
    /// needed), replays them, and returns the writer plus the merged
    /// [`Recovery`].
    ///
    /// # Errors
    ///
    /// Directory creation/scan failures, or a journal whose *header*
    /// is unreadable (torn tails inside records are recovered, not
    /// errors).
    pub fn open(dir: &Path) -> Result<(JobJournal, Recovery), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            path: dir.to_path_buf(),
            detail: e.to_string(),
        })?;
        let mut tenants = BTreeMap::new();
        let mut recovery = Recovery {
            next_job_id: 1,
            ..Recovery::default()
        };
        let mut events: Vec<JournalEvent> = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| StoreError::Io {
            path: dir.to_path_buf(),
            detail: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "journal"))
            .collect();
        paths.sort();
        for path in paths {
            let Some(tenant) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                continue;
            };
            let opened = JournalFile::open(&path)?;
            recovery.truncated_bytes += opened.truncated_bytes;
            for record in &opened.records {
                match std::str::from_utf8(record)
                    .ok()
                    .and_then(|line| crate::protocol::decode::<JournalEvent>(line).ok())
                {
                    Some(event) => events.push(event),
                    None => recovery.skipped_records += 1,
                }
            }
            tenants.insert(tenant, opened.journal);
        }
        replay(&events, &mut recovery);
        Ok((
            JobJournal {
                dir: dir.to_path_buf(),
                tenants,
            },
            recovery,
        ))
    }

    /// Appends one event to `tenant`'s journal, fsynced before return.
    ///
    /// # Errors
    ///
    /// Journal create/append failure. The caller may keep serving —
    /// losing durability is better than losing the job — but should
    /// surface the failure.
    pub fn record(&mut self, tenant: &str, event: &JournalEvent) -> Result<(), StoreError> {
        if !self.tenants.contains_key(tenant) {
            let path = self.dir.join(format!("{tenant}.journal"));
            let opened = JournalFile::open(&path)?;
            self.tenants.insert(tenant.to_string(), opened.journal);
        }
        let file = self.tenants.get_mut(tenant).expect("inserted above");
        file.append(encode(event).as_bytes())
    }

    /// The state directory this journal writes under.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Folds a replayed event stream into [`Recovery`] state: last-write-
/// wins per job id, terminals retire jobs, survivors become resumable.
fn replay(events: &[JournalEvent], recovery: &mut Recovery) {
    struct JobState {
        key: u64,
        spec: JobSpec,
        chunk: u32,
        executed: u32,
        stats: CampaignStats,
        terminal: bool,
    }
    let mut jobs: BTreeMap<u64, JobState> = BTreeMap::new();
    let note_id = |recovery: &mut Recovery, job: u64| {
        recovery.next_job_id = recovery.next_job_id.max(job + 1);
    };
    for event in events {
        recovery.events += 1;
        match event {
            JournalEvent::Accepted {
                job,
                key,
                spec,
                chunk,
            } => {
                note_id(recovery, *job);
                jobs.insert(
                    *job,
                    JobState {
                        key: *key,
                        spec: spec.clone(),
                        chunk: *chunk,
                        executed: 0,
                        stats: CampaignStats::default(),
                        terminal: false,
                    },
                );
            }
            JournalEvent::Chunk {
                job,
                executed,
                stats,
            } => {
                note_id(recovery, *job);
                if let Some(state) = jobs.get_mut(job) {
                    state.executed = *executed;
                    state.stats = *stats;
                }
            }
            JournalEvent::Done {
                job,
                executed,
                early_stopped,
                stats,
                total_nanos,
            } => {
                note_id(recovery, *job);
                if let Some(state) = jobs.get_mut(job) {
                    state.terminal = true;
                    recovery.completed.insert(
                        state.key,
                        DoneFrame {
                            job: *job,
                            executed: *executed,
                            requested: state.spec.trials,
                            early_stopped: *early_stopped,
                            stats: *stats,
                            correct_ci: stats.correct_ci(),
                            sdc_ci: stats.sdc_ci(),
                            total_nanos: *total_nanos,
                            cached: false,
                        },
                    );
                }
            }
            JournalEvent::Cancelled { job, .. } => {
                note_id(recovery, *job);
                if let Some(state) = jobs.get_mut(job) {
                    state.terminal = true;
                }
            }
        }
    }
    for (job, state) in jobs {
        if !state.terminal {
            recovery.resumable.push(ResumableJob {
                job,
                key: state.key,
                spec: state.spec,
                chunk: state.chunk,
                executed: state.executed,
                stats: state.stats,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_state_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "rskip-serve-journal-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn stats_of(correct: u32, sdc: u32) -> CampaignStats {
        use rskip_core::stats::{OutcomeClass, TrialOutcome};
        let mut stats = CampaignStats::default();
        for _ in 0..correct {
            stats.record(TrialOutcome {
                class: OutcomeClass::Correct,
                recovered: false,
                fired: true,
                pruned: false,
            });
        }
        for _ in 0..sdc {
            stats.record(TrialOutcome {
                class: OutcomeClass::Sdc,
                recovered: false,
                fired: true,
                pruned: false,
            });
        }
        stats
    }

    #[test]
    fn events_roundtrip_as_records() {
        let dir = temp_state_dir("roundtrip");
        let spec = JobSpec::new("conv1d", "ar20", "seu", 100);
        let events = [
            JournalEvent::Accepted {
                job: 3,
                key: 0xDEAD,
                spec: spec.clone(),
                chunk: 25,
            },
            JournalEvent::Chunk {
                job: 3,
                executed: 25,
                stats: stats_of(24, 1),
            },
            JournalEvent::Done {
                job: 3,
                executed: 100,
                early_stopped: false,
                stats: stats_of(95, 5),
                total_nanos: 1234,
            },
            JournalEvent::Cancelled {
                job: 9,
                executed: 0,
            },
        ];
        {
            let (mut journal, recovery) = JobJournal::open(&dir).unwrap();
            assert_eq!(recovery.events, 0);
            for e in &events {
                journal.record("public", e).unwrap();
            }
        }
        let (_, recovery) = JobJournal::open(&dir).unwrap();
        assert_eq!(recovery.events, events.len() as u64);
        assert_eq!(recovery.skipped_records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_separates_resumable_completed_and_cancelled() {
        let dir = temp_state_dir("replay");
        let spec = JobSpec::new("conv1d", "ar20", "seu", 100);
        {
            let (mut journal, _) = JobJournal::open(&dir).unwrap();
            // Job 1: accepted, two chunks, crash (no terminal).
            journal
                .record(
                    "public",
                    &JournalEvent::Accepted {
                        job: 1,
                        key: 11,
                        spec: spec.clone(),
                        chunk: 25,
                    },
                )
                .unwrap();
            journal
                .record(
                    "public",
                    &JournalEvent::Chunk {
                        job: 1,
                        executed: 25,
                        stats: stats_of(24, 1),
                    },
                )
                .unwrap();
            journal
                .record(
                    "public",
                    &JournalEvent::Chunk {
                        job: 1,
                        executed: 50,
                        stats: stats_of(47, 3),
                    },
                )
                .unwrap();
            // Job 2 (another tenant): ran to completion.
            let mut spec2 = spec.clone();
            spec2.tenant = "team-b".into();
            journal
                .record(
                    "team-b",
                    &JournalEvent::Accepted {
                        job: 2,
                        key: 22,
                        spec: spec2,
                        chunk: 50,
                    },
                )
                .unwrap();
            journal
                .record(
                    "team-b",
                    &JournalEvent::Done {
                        job: 2,
                        executed: 100,
                        early_stopped: false,
                        stats: stats_of(96, 4),
                        total_nanos: 555,
                    },
                )
                .unwrap();
            // Job 5: explicitly cancelled — must stay dead.
            journal
                .record(
                    "public",
                    &JournalEvent::Accepted {
                        job: 5,
                        key: 55,
                        spec: spec.clone(),
                        chunk: 25,
                    },
                )
                .unwrap();
            journal
                .record(
                    "public",
                    &JournalEvent::Cancelled {
                        job: 5,
                        executed: 25,
                    },
                )
                .unwrap();
        }
        let (_, recovery) = JobJournal::open(&dir).unwrap();
        assert_eq!(recovery.resumable.len(), 1);
        let r = &recovery.resumable[0];
        assert_eq!((r.job, r.key, r.executed, r.chunk), (1, 11, 50, 25));
        assert_eq!(r.stats, stats_of(47, 3));
        assert_eq!(recovery.completed.len(), 1);
        let done = &recovery.completed[&22];
        assert_eq!(done.executed, 100);
        assert_eq!(done.stats, stats_of(96, 4));
        assert!(!done.cached, "cache seed frames start uncached");
        // Ids survive the restart: 5 was the max seen.
        assert_eq!(recovery.next_job_id, 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn undecodable_records_are_skipped_not_fatal() {
        let dir = temp_state_dir("skip");
        {
            let (mut journal, _) = JobJournal::open(&dir).unwrap();
            journal
                .record(
                    "public",
                    &JournalEvent::Cancelled {
                        job: 1,
                        executed: 0,
                    },
                )
                .unwrap();
        }
        // A foreign-but-intact record (CRC valid, not a JournalEvent).
        {
            let path = dir.join("public.journal");
            let mut file = rskip_store::JournalFile::open(&path).unwrap().journal;
            file.append(b"{\"NotAnEvent\":{}}").unwrap();
        }
        let (_, recovery) = JobJournal::open(&dir).unwrap();
        assert_eq!(recovery.events, 1);
        assert_eq!(recovery.skipped_records, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
