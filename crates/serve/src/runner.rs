//! The execution boundary between the service and the harness.
//!
//! `rskip-serve` owns queueing, scheduling, streaming and stopping; it
//! deliberately does not know how to build a benchmark or inject a
//! fault. Both live behind [`CampaignRunner`], implemented by
//! `rskip-harness` (which sits *above* this crate — Cargo forbids the
//! cycle that a direct dependency would create). Tests here use small
//! mock runners for the same reason production uses the harness one:
//! the scheduler's correctness is independent of what a trial does.

use std::ops::Range;

use rskip_core::stats::CampaignStats;

use crate::protocol::{ErrorKind, JobSpec};

/// The result of executing one contiguous chunk of a job's trials.
#[derive(Clone, Debug, Default)]
pub struct ChunkOutput {
    /// Aggregate over exactly the trials in the chunk's range.
    pub stats: CampaignStats,
    /// Per-trial outcome codes (one char per trial, chunk order), when
    /// the job asked for them; `None` otherwise.
    pub outcomes: Option<String>,
}

/// Executes validated campaign chunks on behalf of the service.
///
/// Implementations must be deterministic in the sharding sense the
/// service advertises: `run_chunk(spec, a..b)` followed by
/// `run_chunk(spec, b..c)` must merge to exactly
/// `run_chunk(spec, a..c)` — i.e. each trial's result depends only on
/// the spec and the trial's global index, never on chunk boundaries,
/// thread counts or what other jobs ran in between.
pub trait CampaignRunner: Send + Sync + 'static {
    /// Checks the parts of `spec` only the runner can judge (bench,
    /// scheme, fault-model and tier names). The service has already
    /// checked tenant shape and trial-count bounds.
    ///
    /// # Errors
    ///
    /// A typed reason plus human-readable detail, forwarded verbatim as
    /// a [`Rejected`](crate::protocol::Response::Rejected) frame.
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)>;

    /// Runs trials `range` (global, zero-based indices into the job's
    /// `0..trials`) and returns their aggregate. `want_outcomes` on the
    /// spec asks for the per-trial code string too.
    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput;

    /// A content hash of everything *beyond the spec's own wire
    /// fields* that determines trial results — for the harness, the
    /// selected scheme's compiled module text. The service folds this
    /// into each job's identity key, so a result cached under one
    /// binary/model-store state is never served after the underlying
    /// benchmark content changes. Runners whose results depend only on
    /// the spec (the mock runners in tests) can keep the default.
    fn fingerprint(&self, _spec: &JobSpec) -> u64 {
        0
    }
}
