//! `rskip-serve`: a long-running fault-injection **campaign service**.
//!
//! The one-shot CLI driver answers one question per process: run N
//! trials of one (bench, scheme, fault-model) cell and print the
//! aggregate. This crate turns that into a service: a TCP server that
//! accepts campaign jobs over newline-delimited JSON, shards each job
//! into trial chunks across a worker pool, and **streams** the running
//! aggregate — with Wilson 95% intervals — after every chunk, so a
//! client watching the stream can stop reading (or cancel) the moment
//! the estimate is tight enough. An optional server-side early-stopping
//! rule does the same thing without the round trip: the job finishes
//! once the watched rate's interval half-width drops below the client's
//! threshold, and the terminal frame reports the honest savings
//! (`executed < requested`).
//!
//! With a state directory the service is **crash-safe**: job specs and
//! per-chunk progress are fsynced to per-tenant journals, a restarted
//! server resumes unfinished jobs at their next chunk boundary (final
//! aggregates byte-identical to an uninterrupted run), completed
//! results are cached by content-hash key and answered without
//! re-executing a trial (`Done { cached: true }`), and the client side
//! retries with capped jittered backoff, reconnecting safely because
//! in-flight dedup and suspended-progress resume make resubmission
//! idempotent.
//!
//! Three properties carry the design:
//!
//! * **Determinism survives sharding.** Trial seeds are a pure function
//!   of `(campaign seed, trial index)` (the harness's split-seed
//!   ChaCha8 scheme) and [`CampaignStats`] is a commutative monoid, so
//!   a job's final aggregate is byte-identical to the one-shot driver
//!   regardless of chunk size, worker count, or how tenants interleave.
//! * **No new dependencies.** The server is `std::net::TcpListener` +
//!   `std::thread`; the wire format reuses the vendored `serde_json`.
//! * **Layering.** This crate sits *below* the harness: it knows how to
//!   queue, schedule, stream and stop, but executes trials only through
//!   the [`CampaignRunner`] trait. The harness implements that trait
//!   (per-tenant warm-started engines) and hosts the `rskip-eval serve`
//!   / `submit` subcommands, which keeps the dependency graph acyclic.
//!
//! [`CampaignStats`]: rskip_core::stats::CampaignStats

pub mod client;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod runner;
pub mod server;

pub use client::{Client, JobOutcome, RetryPolicy, ServerInfo};
pub use journal::{JobJournal, JournalEvent, Recovery, ResumableJob};
pub use protocol::{
    decode, encode, valid_tenant, DoneFrame, ErrorKind, JobSpec, ProgressFrame, Request, Response,
    DEFAULT_TENANT, PROTOCOL_VERSION,
};
pub use queue::{JobQueue, PushError};
pub use runner::{CampaignRunner, ChunkOutput};
pub use server::{backoff_hint_ms, job_key, RecoveryReport, Server, ServerConfig, BACKOFF_CAP_MS};
