//! The campaign-service wire format.
//!
//! Frames are newline-delimited JSON: one [`Request`] or [`Response`]
//! per line, externally tagged by variant name (the vendored serde's —
//! and serde_json's — default enum encoding). A session is one TCP
//! connection: the server greets with [`Response::Hello`], the client
//! submits jobs and cancellations, and the server interleaves each
//! job's [`Response::Progress`] stream with the others' until every
//! job reaches a terminal frame ([`Response::Done`],
//! [`Response::Cancelled`] or [`Response::Rejected`]).
//!
//! Everything statistical on the wire reuses
//! [`rskip_core::stats`]: partial aggregates are [`CampaignStats`] —
//! the *same* type the one-shot CLI driver folds — so a streamed job's
//! final aggregate being byte-identical to the CLI run is a property
//! of one shared representation, not a convention between two.

use serde::{Deserialize, Serialize};

use rskip_core::stats::{CampaignStats, EarlyStop, WilsonCi};

/// Wire protocol version, sent in [`Response::Hello`]. Bump on any
/// incompatible frame change.
pub const PROTOCOL_VERSION: u32 = 1;

/// The tenant namespace used when a job does not name one.
pub const DEFAULT_TENANT: &str = "public";

/// One campaign job as submitted over the wire. Identification fields
/// are strings — the service validates them against the harness
/// registry and answers with a typed [`Reject`] on anything unknown,
/// so a stale client never crashes the server.
///
/// [`Reject`]: Response::Rejected
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Tenant namespace: lowercase `[a-z0-9_-]`, at most 64 bytes.
    /// Empty means [`DEFAULT_TENANT`]. Each tenant warm-starts from its
    /// own model-store root.
    pub tenant: String,
    /// Benchmark name (`conv1d`, `kde`, ...).
    pub bench: String,
    /// Scheme label: `unsafe`, `swift-r`, `arN`, `arN-di`.
    pub scheme: String,
    /// Fault model label: `seu`, `skip`, `burst:N`.
    pub fault_model: String,
    /// Execution tier (`match`, `threaded-nofuse`, `threaded`), or
    /// empty for the server's default.
    pub tier: String,
    /// Requested trial count.
    pub trials: u32,
    /// Trials per chunk (streaming / early-stop / cancellation
    /// granularity); 0 means the server default.
    pub chunk: u32,
    /// Optional early-stopping rule; the job finishes once the watched
    /// rate's Wilson interval is at least this tight, even with trials
    /// left.
    pub stop: Option<EarlyStop>,
    /// Stream per-trial outcome codes (one char per trial, see
    /// [`rskip_core::stats::OutcomeClass::code`]) in each progress
    /// frame.
    pub want_outcomes: bool,
}

impl JobSpec {
    /// A spec with the given bench/scheme/model/trials and every other
    /// field at its wire default.
    pub fn new(bench: &str, scheme: &str, fault_model: &str, trials: u32) -> JobSpec {
        JobSpec {
            tenant: String::new(),
            bench: bench.to_string(),
            scheme: scheme.to_string(),
            fault_model: fault_model.to_string(),
            tier: String::new(),
            trials,
            chunk: 0,
            stop: None,
            want_outcomes: false,
        }
    }

    /// The effective tenant namespace.
    pub fn tenant_or_default(&self) -> &str {
        if self.tenant.is_empty() {
            DEFAULT_TENANT
        } else {
            &self.tenant
        }
    }
}

/// Client → server frames.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a campaign job.
    Submit(JobSpec),
    /// Cancel a job previously accepted **on this connection**.
    Cancel {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Ask the server to shut down once in-flight chunks finish.
    /// (Loopback tooling; a production deployment would gate this.)
    Shutdown,
}

/// Why a frame or job was refused — every error path answers with one
/// of these instead of dropping the connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line was not a well-formed request frame.
    MalformedFrame,
    /// Tenant name failed the namespace rules.
    BadTenant,
    /// No benchmark registered under that name.
    UnknownBench,
    /// Unparseable scheme label.
    UnknownScheme,
    /// Unparseable fault-model label.
    UnknownFaultModel,
    /// Unparseable execution-tier label.
    UnknownTier,
    /// Zero trials, or more than the server's per-job cap.
    OversizedTrials,
    /// The bounded job queue is full — retry after the hinted delay.
    QueueFull,
    /// Cancel for a job this connection never submitted, or one that
    /// already reached a terminal frame.
    UnknownJob,
    /// The server is draining for shutdown.
    ShuttingDown,
}

/// One streamed progress frame: the running aggregate after a chunk.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProgressFrame {
    /// Job id.
    pub job: u64,
    /// Zero-based index of the chunk that just finished.
    pub chunk: u32,
    /// Trials executed so far (`stats.counts.total()`).
    pub executed: u32,
    /// Trials originally requested.
    pub requested: u32,
    /// Running aggregate over every executed trial.
    pub stats: CampaignStats,
    /// Wilson 95% interval for the correct rate at `executed` trials.
    pub correct_ci: WilsonCi,
    /// Wilson 95% interval for the SDC rate at `executed` trials.
    pub sdc_ci: WilsonCi,
    /// Per-trial outcome codes for this chunk, when requested.
    pub outcomes: Option<String>,
    /// Wall-clock nanoseconds this chunk took on its worker.
    pub chunk_nanos: u64,
}

/// The terminal frame of a completed job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DoneFrame {
    /// Job id.
    pub job: u64,
    /// Trials actually executed (`< requested` exactly when
    /// `early_stopped`).
    pub executed: u32,
    /// Trials originally requested.
    pub requested: u32,
    /// Whether the early-stopping rule fired before the last chunk.
    pub early_stopped: bool,
    /// Final aggregate — byte-identical to the one-shot CLI driver over
    /// the same `executed` trials.
    pub stats: CampaignStats,
    /// Wilson 95% interval for the correct rate.
    pub correct_ci: WilsonCi,
    /// Wilson 95% interval for the SDC rate.
    pub sdc_ci: WilsonCi,
    /// Wall-clock nanoseconds from first chunk start to last chunk end
    /// (queue wait excluded).
    pub total_nanos: u64,
}

/// Server → client frames.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Greeting, first frame of every session.
    Hello {
        /// [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Worker threads serving the queue.
        workers: usize,
        /// Bounded queue capacity (jobs).
        queue_capacity: usize,
    },
    /// The job was validated and enqueued.
    Accepted {
        /// Server-assigned job id, unique per server lifetime.
        job: u64,
        /// Trials that will run absent early stop / cancel.
        trials: u32,
        /// Effective chunk size after applying server defaults/caps.
        chunk: u32,
    },
    /// The job was refused before entering the queue.
    Rejected {
        /// Typed reason.
        error: ErrorKind,
        /// Human-readable detail.
        detail: String,
        /// For [`ErrorKind::QueueFull`]: suggested client backoff.
        retry_after_ms: Option<u64>,
    },
    /// A chunk finished; running aggregate attached.
    Progress(ProgressFrame),
    /// The job finished (all trials, or early stop).
    Done(DoneFrame),
    /// The job was cancelled; the partial aggregate up to the last
    /// completed chunk is attached.
    Cancelled {
        /// Job id.
        job: u64,
        /// Trials executed before the cancel took effect.
        executed: u32,
        /// Partial aggregate over those trials.
        stats: CampaignStats,
    },
    /// A request-level error that is not tied to an accepted job
    /// (malformed line, unknown cancel target).
    Error {
        /// Typed reason.
        error: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

/// Whether `tenant` is an acceptable namespace: non-empty, at most 64
/// bytes, characters drawn from `[a-z0-9_-]`. The same rule the store
/// layer enforces (`Store::namespace`) — checked here too so a bad
/// tenant is refused with a typed frame at admission instead of
/// surfacing as a store error mid-job. Rejecting `.`/`/`/`\` by
/// construction means a tenant name can never traverse out of the
/// store root.
#[must_use]
pub fn valid_tenant(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 64
        && tenant
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

/// Serializes one frame to its wire line (no trailing newline).
///
/// # Panics
///
/// Never for these types; the vendored emitter is infallible.
pub fn encode<T: Serialize>(frame: &T) -> String {
    serde_json::to_string(frame).expect("wire frames serialize infallibly")
}

/// Parses one wire line into a frame.
///
/// # Errors
///
/// A human-readable parse/shape error (the caller maps it to
/// [`ErrorKind::MalformedFrame`]).
pub fn decode<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_core::stats::StopMetric;

    #[test]
    fn request_frames_roundtrip() {
        let mut spec = JobSpec::new("conv1d", "ar20", "burst:4", 500);
        spec.tenant = "alpha".into();
        spec.chunk = 100;
        spec.stop = Some(EarlyStop {
            metric: StopMetric::Sdc,
            half_width: 0.02,
        });
        spec.want_outcomes = true;
        for req in [
            Request::Submit(spec),
            Request::Cancel { job: 17 },
            Request::Shutdown,
        ] {
            let line = encode(&req);
            assert!(!line.contains('\n'), "frames must be single lines");
            let back: Request = decode(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_frames_roundtrip() {
        let stats = CampaignStats::default();
        for resp in [
            Response::Hello {
                protocol: PROTOCOL_VERSION,
                workers: 2,
                queue_capacity: 8,
            },
            Response::Accepted {
                job: 1,
                trials: 500,
                chunk: 100,
            },
            Response::Rejected {
                error: ErrorKind::QueueFull,
                detail: "queue at capacity (8 jobs)".into(),
                retry_after_ms: Some(250),
            },
            Response::Progress(ProgressFrame {
                job: 1,
                chunk: 0,
                executed: 100,
                requested: 500,
                stats,
                correct_ci: rskip_core::stats::wilson_ci(71, 100),
                sdc_ci: rskip_core::stats::wilson_ci(2, 100),
                outcomes: Some("CCSC".into()),
                chunk_nanos: 12_345,
            }),
            Response::Done(DoneFrame {
                job: 1,
                executed: 300,
                requested: 500,
                early_stopped: true,
                stats,
                correct_ci: rskip_core::stats::wilson_ci(280, 300),
                sdc_ci: rskip_core::stats::wilson_ci(0, 300),
                total_nanos: 99,
            }),
            Response::Cancelled {
                job: 2,
                executed: 100,
                stats,
            },
            Response::Error {
                error: ErrorKind::UnknownJob,
                detail: "job 9 was never submitted on this connection".into(),
            },
        ] {
            let back: Response = decode(&encode(&resp)).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        assert!(decode::<Request>("").is_err());
        assert!(decode::<Request>("{").is_err());
        assert!(decode::<Request>("{\"Subvert\":{}}").is_err());
        assert!(decode::<Request>("42").is_err());
    }

    #[test]
    fn tenant_rules() {
        for ok in ["public", "alpha", "a", "t-1_x", &"a".repeat(64)] {
            assert!(valid_tenant(ok), "{ok:?} should be accepted");
        }
        for bad in [
            "",
            "..",
            "a/b",
            "a\\b",
            "UPPER",
            "with space",
            "é",
            &"a".repeat(65),
        ] {
            assert!(!valid_tenant(bad), "{bad:?} should be refused");
        }
    }

    #[test]
    fn tenant_default() {
        assert_eq!(
            JobSpec::new("conv1d", "unsafe", "seu", 1).tenant_or_default(),
            DEFAULT_TENANT
        );
    }
}
