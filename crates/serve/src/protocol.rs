//! The campaign-service wire format.
//!
//! Frames are newline-delimited JSON: one [`Request`] or [`Response`]
//! per line, externally tagged by variant name (the vendored serde's —
//! and serde_json's — default enum encoding). A session is one TCP
//! connection: the server greets with [`Response::Hello`], the client
//! submits jobs and cancellations, and the server interleaves each
//! job's [`Response::Progress`] stream with the others' until every
//! job reaches a terminal frame ([`Response::Done`],
//! [`Response::Cancelled`] or [`Response::Rejected`]).
//!
//! Everything statistical on the wire reuses
//! [`rskip_core::stats`]: partial aggregates are [`CampaignStats`] —
//! the *same* type the one-shot CLI driver folds — so a streamed job's
//! final aggregate being byte-identical to the CLI run is a property
//! of one shared representation, not a convention between two.

use serde::{Content, DeError, Deserialize, Serialize};

use rskip_core::stats::{CampaignStats, EarlyStop, WilsonCi};

/// Wire protocol version, sent in [`Response::Hello`]. Bump on any
/// incompatible frame change.
///
/// **Version 2** (current) adds [`Request::Hello`] (a client's version
/// declaration), the `cached` field on [`DoneFrame`], and
/// [`ErrorKind::DuplicateInFlight`]. All three are compatible with
/// version-1 peers by construction:
///
/// * a v2 client only sends `Request::Hello` after the server's
///   greeting already declared `protocol >= 2`;
/// * `cached` decodes as `false` when absent (v1 server), and a v1
///   client's decoder ignores unknown fields, so a v2 server's `Done`
///   frames parse unchanged;
/// * the server answers sessions that never declared v2 with
///   [`ErrorKind::QueueFull`] (same retry semantics) instead of the
///   variant their decoder would reject.
pub const PROTOCOL_VERSION: u32 = 2;

/// The tenant namespace used when a job does not name one.
pub const DEFAULT_TENANT: &str = "public";

/// One campaign job as submitted over the wire. Identification fields
/// are strings — the service validates them against the harness
/// registry and answers with a typed [`Reject`] on anything unknown,
/// so a stale client never crashes the server.
///
/// [`Reject`]: Response::Rejected
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Tenant namespace: lowercase `[a-z0-9_-]`, at most 64 bytes.
    /// Empty means [`DEFAULT_TENANT`]. Each tenant warm-starts from its
    /// own model-store root.
    pub tenant: String,
    /// Benchmark name (`conv1d`, `kde`, ...).
    pub bench: String,
    /// Scheme label: `unsafe`, `swift-r`, `arN`, `arN-di`.
    pub scheme: String,
    /// Fault model label: `seu`, `skip`, `burst:N`.
    pub fault_model: String,
    /// Execution tier (`match`, `threaded-nofuse`, `threaded`), or
    /// empty for the server's default.
    pub tier: String,
    /// Requested trial count.
    pub trials: u32,
    /// Trials per chunk (streaming / early-stop / cancellation
    /// granularity); 0 means the server default.
    pub chunk: u32,
    /// Optional early-stopping rule; the job finishes once the watched
    /// rate's Wilson interval is at least this tight, even with trials
    /// left.
    pub stop: Option<EarlyStop>,
    /// Stream per-trial outcome codes (one char per trial, see
    /// [`rskip_core::stats::OutcomeClass::code`]) in each progress
    /// frame.
    pub want_outcomes: bool,
}

impl JobSpec {
    /// A spec with the given bench/scheme/model/trials and every other
    /// field at its wire default.
    pub fn new(bench: &str, scheme: &str, fault_model: &str, trials: u32) -> JobSpec {
        JobSpec {
            tenant: String::new(),
            bench: bench.to_string(),
            scheme: scheme.to_string(),
            fault_model: fault_model.to_string(),
            tier: String::new(),
            trials,
            chunk: 0,
            stop: None,
            want_outcomes: false,
        }
    }

    /// The effective tenant namespace.
    pub fn tenant_or_default(&self) -> &str {
        if self.tenant.is_empty() {
            DEFAULT_TENANT
        } else {
            &self.tenant
        }
    }
}

/// Client → server frames.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Declares the client's protocol version, unlocking version-2
    /// error kinds for this session. Optional — a session that never
    /// sends it is served with version-1 frames only. A v2 client
    /// sends it only after the server's greeting declared `>= 2`, so
    /// a v1 server never sees the (to it, malformed) variant.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Submit a campaign job.
    Submit(JobSpec),
    /// Cancel a job previously accepted **on this connection**.
    Cancel {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Ask the server to shut down once in-flight chunks finish.
    /// (Loopback tooling; a production deployment would gate this.)
    Shutdown,
}

/// Why a frame or job was refused — every error path answers with one
/// of these instead of dropping the connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line was not a well-formed request frame.
    MalformedFrame,
    /// Tenant name failed the namespace rules.
    BadTenant,
    /// No benchmark registered under that name.
    UnknownBench,
    /// Unparseable scheme label.
    UnknownScheme,
    /// Unparseable fault-model label.
    UnknownFaultModel,
    /// Unparseable execution-tier label.
    UnknownTier,
    /// Zero trials, or more than the server's per-job cap.
    OversizedTrials,
    /// The bounded job queue is full — retry after the hinted delay.
    QueueFull,
    /// Cancel for a job this connection never submitted, or one that
    /// already reached a terminal frame.
    UnknownJob,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// (v2) A byte-identical job is already queued or running — retry
    /// after the hinted delay and the resubmission will attach to its
    /// result (cache hit or suspended-progress resume). Sessions that
    /// never declared v2 receive [`ErrorKind::QueueFull`] instead,
    /// which carries the same retry semantics.
    DuplicateInFlight,
}

/// One streamed progress frame: the running aggregate after a chunk.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProgressFrame {
    /// Job id.
    pub job: u64,
    /// Zero-based index of the chunk that just finished.
    pub chunk: u32,
    /// Trials executed so far (`stats.counts.total()`).
    pub executed: u32,
    /// Trials originally requested.
    pub requested: u32,
    /// Running aggregate over every executed trial.
    pub stats: CampaignStats,
    /// Wilson 95% interval for the correct rate at `executed` trials.
    pub correct_ci: WilsonCi,
    /// Wilson 95% interval for the SDC rate at `executed` trials.
    pub sdc_ci: WilsonCi,
    /// Per-trial outcome codes for this chunk, when requested.
    pub outcomes: Option<String>,
    /// Wall-clock nanoseconds this chunk took on its worker.
    pub chunk_nanos: u64,
}

/// The terminal frame of a completed job.
///
/// `Deserialize` is hand-written (not derived) so that `cached` —
/// which version-1 servers do not emit — defaults to `false` instead
/// of failing the frame; every other field stays required.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DoneFrame {
    /// Job id.
    pub job: u64,
    /// Trials actually executed (`< requested` exactly when
    /// `early_stopped`).
    pub executed: u32,
    /// Trials originally requested.
    pub requested: u32,
    /// Whether the early-stopping rule fired before the last chunk.
    pub early_stopped: bool,
    /// Final aggregate — byte-identical to the one-shot CLI driver over
    /// the same `executed` trials.
    pub stats: CampaignStats,
    /// Wilson 95% interval for the correct rate.
    pub correct_ci: WilsonCi,
    /// Wilson 95% interval for the SDC rate.
    pub sdc_ci: WilsonCi,
    /// Wall-clock nanoseconds from first chunk start to last chunk end
    /// (queue wait excluded). For a resumed job, only the chunks run
    /// since the restart are billed — the pre-crash time is gone and
    /// the service does not pretend otherwise.
    pub total_nanos: u64,
    /// (v2) `true` when the frame was answered from the result cache —
    /// zero trials executed for this submission. Absent on the wire
    /// from v1 servers; decodes as `false` then.
    pub cached: bool,
}

impl Deserialize for DoneFrame {
    fn from_content(v: &Content) -> Result<Self, DeError> {
        let Content::Map(_) = v else {
            return Err(DeError::expected("object for DoneFrame", v));
        };
        let field = |name: &str| v.get(name).unwrap_or(&Content::Null);
        Ok(DoneFrame {
            job: Deserialize::from_content(field("job"))?,
            executed: Deserialize::from_content(field("executed"))?,
            requested: Deserialize::from_content(field("requested"))?,
            early_stopped: Deserialize::from_content(field("early_stopped"))?,
            stats: Deserialize::from_content(field("stats"))?,
            correct_ci: Deserialize::from_content(field("correct_ci"))?,
            sdc_ci: Deserialize::from_content(field("sdc_ci"))?,
            total_nanos: Deserialize::from_content(field("total_nanos"))?,
            cached: match v.get("cached") {
                None | Some(Content::Null) => false,
                Some(c) => Deserialize::from_content(c)?,
            },
        })
    }
}

/// Server → client frames.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Greeting, first frame of every session.
    Hello {
        /// [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Worker threads serving the queue.
        workers: usize,
        /// Bounded queue capacity (jobs).
        queue_capacity: usize,
    },
    /// The job was validated and enqueued.
    Accepted {
        /// Server-assigned job id, unique per server lifetime.
        job: u64,
        /// Trials that will run absent early stop / cancel.
        trials: u32,
        /// Effective chunk size after applying server defaults/caps.
        chunk: u32,
    },
    /// The job was refused before entering the queue.
    Rejected {
        /// Typed reason.
        error: ErrorKind,
        /// Human-readable detail.
        detail: String,
        /// For [`ErrorKind::QueueFull`]: suggested client backoff.
        retry_after_ms: Option<u64>,
    },
    /// A chunk finished; running aggregate attached.
    Progress(ProgressFrame),
    /// The job finished (all trials, or early stop).
    Done(DoneFrame),
    /// The job was cancelled; the partial aggregate up to the last
    /// completed chunk is attached.
    Cancelled {
        /// Job id.
        job: u64,
        /// Trials executed before the cancel took effect.
        executed: u32,
        /// Partial aggregate over those trials.
        stats: CampaignStats,
    },
    /// A request-level error that is not tied to an accepted job
    /// (malformed line, unknown cancel target).
    Error {
        /// Typed reason.
        error: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

/// Whether `tenant` is an acceptable namespace: non-empty, at most 64
/// bytes, characters drawn from `[a-z0-9_-]`. The same rule the store
/// layer enforces (`Store::namespace`) — checked here too so a bad
/// tenant is refused with a typed frame at admission instead of
/// surfacing as a store error mid-job. Rejecting `.`/`/`/`\` by
/// construction means a tenant name can never traverse out of the
/// store root.
#[must_use]
pub fn valid_tenant(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 64
        && tenant
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

/// Serializes one frame to its wire line (no trailing newline).
///
/// # Panics
///
/// Never for these types; the vendored emitter is infallible.
pub fn encode<T: Serialize>(frame: &T) -> String {
    serde_json::to_string(frame).expect("wire frames serialize infallibly")
}

/// Parses one wire line into a frame.
///
/// # Errors
///
/// A human-readable parse/shape error (the caller maps it to
/// [`ErrorKind::MalformedFrame`]).
pub fn decode<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_core::stats::StopMetric;

    #[test]
    fn request_frames_roundtrip() {
        let mut spec = JobSpec::new("conv1d", "ar20", "burst:4", 500);
        spec.tenant = "alpha".into();
        spec.chunk = 100;
        spec.stop = Some(EarlyStop {
            metric: StopMetric::Sdc,
            half_width: 0.02,
        });
        spec.want_outcomes = true;
        for req in [
            Request::Hello {
                protocol: PROTOCOL_VERSION,
            },
            Request::Submit(spec),
            Request::Cancel { job: 17 },
            Request::Shutdown,
        ] {
            let line = encode(&req);
            assert!(!line.contains('\n'), "frames must be single lines");
            let back: Request = decode(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_frames_roundtrip() {
        let stats = CampaignStats::default();
        for resp in [
            Response::Hello {
                protocol: PROTOCOL_VERSION,
                workers: 2,
                queue_capacity: 8,
            },
            Response::Accepted {
                job: 1,
                trials: 500,
                chunk: 100,
            },
            Response::Rejected {
                error: ErrorKind::QueueFull,
                detail: "queue at capacity (8 jobs)".into(),
                retry_after_ms: Some(250),
            },
            Response::Progress(ProgressFrame {
                job: 1,
                chunk: 0,
                executed: 100,
                requested: 500,
                stats,
                correct_ci: rskip_core::stats::wilson_ci(71, 100),
                sdc_ci: rskip_core::stats::wilson_ci(2, 100),
                outcomes: Some("CCSC".into()),
                chunk_nanos: 12_345,
            }),
            Response::Done(DoneFrame {
                job: 1,
                executed: 300,
                requested: 500,
                early_stopped: true,
                stats,
                correct_ci: rskip_core::stats::wilson_ci(280, 300),
                sdc_ci: rskip_core::stats::wilson_ci(0, 300),
                total_nanos: 99,
                cached: true,
            }),
            Response::Cancelled {
                job: 2,
                executed: 100,
                stats,
            },
            Response::Error {
                error: ErrorKind::UnknownJob,
                detail: "job 9 was never submitted on this connection".into(),
            },
        ] {
            let back: Response = decode(&encode(&resp)).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn v1_done_frame_without_cached_decodes_as_uncached() {
        // Exactly what a version-1 server emits: no `cached` field.
        let mut done = DoneFrame {
            job: 4,
            executed: 120,
            requested: 120,
            early_stopped: false,
            stats: CampaignStats::default(),
            correct_ci: rskip_core::stats::wilson_ci(100, 120),
            sdc_ci: rskip_core::stats::wilson_ci(1, 120),
            total_nanos: 777,
            cached: true,
        };
        let line = encode(&Response::Done(done.clone()));
        let v1_line = line.replace(",\"cached\":true", "");
        assert_ne!(v1_line, line, "cached field must have been stripped");
        let back: Response = decode(&v1_line).unwrap();
        done.cached = false;
        assert_eq!(back, Response::Done(done));
    }

    #[test]
    fn duplicate_in_flight_roundtrips() {
        let resp = Response::Rejected {
            error: ErrorKind::DuplicateInFlight,
            detail: "job key 0xabc already running as job 7".into(),
            retry_after_ms: Some(180),
        };
        let back: Response = decode(&encode(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        assert!(decode::<Request>("").is_err());
        assert!(decode::<Request>("{").is_err());
        assert!(decode::<Request>("{\"Subvert\":{}}").is_err());
        assert!(decode::<Request>("42").is_err());
    }

    #[test]
    fn tenant_rules() {
        for ok in ["public", "alpha", "a", "t-1_x", &"a".repeat(64)] {
            assert!(valid_tenant(ok), "{ok:?} should be accepted");
        }
        for bad in [
            "",
            "..",
            "a/b",
            "a\\b",
            "UPPER",
            "with space",
            "é",
            &"a".repeat(65),
        ] {
            assert!(!valid_tenant(bad), "{bad:?} should be refused");
        }
    }

    #[test]
    fn tenant_default() {
        assert_eq!(
            JobSpec::new("conv1d", "unsafe", "seu", 1).tenant_or_default(),
            DEFAULT_TENANT
        );
    }
}
