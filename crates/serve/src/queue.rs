//! A bounded, blocking MPMC job queue.
//!
//! `std::sync::mpsc` gives unbounded channels (or `sync_channel`, whose
//! bounded `send` *blocks* — the opposite of what an admission path
//! wants: a full queue must answer "come back later" immediately, not
//! stall the connection thread that every other frame on that session
//! is waiting behind). So the queue is ~60 lines of `Mutex` +
//! `Condvar`: producers fail fast with [`PushError::Full`], consumers
//! block in [`pop`](JobQueue::pop), and [`close`](JobQueue::close)
//! drains shutdown cleanly — workers finish what was already admitted,
//! then see `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`JobQueue::try_push`] refused an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; `queued` items are waiting.
    Full {
        /// Items currently queued (equals the capacity).
        queued: usize,
    },
    /// The queue was closed for shutdown.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with non-blocking
/// admission and blocking consumption.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently waiting (racy by nature; for display/backoff
    /// hints only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (racy; display only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](JobQueue::close). The item is dropped either way — the
    /// caller answers the client with a typed rejection, not a retry.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full {
                queued: st.items.len(),
            });
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Admits `item` even past capacity (never `Full`) — the
    /// restart-recovery path, which must re-enqueue *every* journaled
    /// unfinished job: refusing one would silently drop work the
    /// server already accepted durably. New submissions still go
    /// through [`try_push`](JobQueue::try_push) and feel backpressure
    /// from the recovered backlog.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`close`](JobQueue::close).
    pub fn restore(&self, item: T) -> Result<(), PushError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed);
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// *and* drained, returning `None` in the latter case.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Closes the queue: future pushes fail, and every consumer wakes —
    /// each drains remaining items, then gets `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_backpressure() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full { queued: 2 }));
        assert_eq!(q.pop(), Some(1));
        // Popping freed a slot: admission works again.
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(4);
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11), Err(PushError::Closed));
        // Already-admitted work still runs...
        assert_eq!(q.pop(), Some(10));
        // ...then consumers see the end.
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q = Arc::new(JobQueue::new(1));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || (qc.pop(), qc.pop()));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(consumer.join().unwrap(), (Some(7), None));
    }

    #[test]
    fn restore_bypasses_capacity_but_not_close() {
        let q = JobQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full { queued: 1 }));
        // Recovery inserts past the bound...
        assert_eq!(q.restore(2), Ok(()));
        assert_eq!(q.restore(3), Ok(()));
        // ...and new admissions keep feeling the backlog.
        assert_eq!(q.try_push(4), Err(PushError::Full { queued: 3 }));
        assert_eq!((q.pop(), q.pop(), q.pop()), (Some(1), Some(2), Some(3)));
        q.close();
        assert_eq!(q.restore(5), Err(PushError::Closed));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(()));
        assert!(!q.is_empty());
    }
}
