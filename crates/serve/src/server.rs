//! The campaign server: accept loop, per-connection sessions, and the
//! worker pool.
//!
//! Thread structure (all `std::thread`, no runtime):
//!
//! ```text
//! accept loop ──► per-connection reader ──► bounded JobQueue ──► worker pool
//!                        │                                          │
//!                        └───────► per-connection writer ◄──────────┘
//!                                   (mpsc, owns the socket)
//! ```
//!
//! Each connection gets a **reader** thread (parses request frames,
//! validates, admits into the queue) and a **writer** thread (the only
//! thing that writes the socket, fed by an `mpsc` channel — so a
//! worker streaming job A's chunks and the reader rejecting job B
//! never interleave bytes mid-frame). Workers are shared across
//! connections and pop jobs FIFO; *within* a job, chunks run
//! sequentially on one worker, which is what makes the early-stopping
//! decision point — and therefore the exact executed-trial set —
//! deterministic for a fixed chunk size. Parallelism comes from the
//! pool multiplexing jobs, and from each chunk's trials fanning out
//! over the harness's deterministic `parallel_map` below us.
//!
//! Cancellation is a per-job `AtomicBool`, checked between chunks: a
//! cancel never tears mid-chunk state, and the `Cancelled` frame
//! reports the aggregate over every chunk that completed. A dropped
//! connection cancels all of its outstanding jobs the same way.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rskip_core::stats::CampaignStats;

use crate::protocol::{
    decode, encode, valid_tenant, DoneFrame, ErrorKind, JobSpec, ProgressFrame, Request, Response,
    PROTOCOL_VERSION,
};
use crate::queue::{JobQueue, PushError};
use crate::runner::CampaignRunner;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads popping the job queue.
    pub workers: usize,
    /// Bounded queue capacity (jobs waiting beyond the ones in flight).
    pub queue_capacity: usize,
    /// Chunk size used when a job submits `chunk: 0`.
    pub default_chunk: u32,
    /// Per-job trial cap; requests above it are rejected as oversized.
    pub max_trials: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            default_chunk: 64,
            max_trials: 1_000_000,
        }
    }
}

/// Per-job cancellation flags for one connection, shared between its
/// reader (sets on `Cancel`/EOF) and the workers (check between
/// chunks, remove on terminal frame). Membership doubles as the job's
/// liveness: a cancel for an id not present is `UnknownJob`, whether
/// it never existed or already finished.
type CancelRegistry = Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>>;

/// One admitted job, as carried through the queue to a worker.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    chunk: u32,
    cancel: Arc<AtomicBool>,
    out: Sender<Response>,
    registry: CancelRegistry,
}

/// A running campaign server. Dropping the handle does *not* stop the
/// server; call [`shutdown`](Server::shutdown) (or send a `Shutdown`
/// frame) to drain and join it.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<JobQueue<QueuedJob>>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr`, spawns the accept loop and `config.workers` worker
    /// threads, and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs, R: CampaignRunner>(
        addr: A,
        runner: Arc<R>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let next_id = Arc::new(AtomicU64::new(1));

        let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
        for _ in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let runner = Arc::clone(&runner);
            threads.push(std::thread::spawn(move || worker_loop(&*runner, &queue)));
        }
        {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &runner, &queue, &shutdown, &next_id, config);
            }));
        }
        Ok(Server {
            addr,
            shutdown,
            queue,
            threads,
        })
    }

    /// The bound address (useful after binding port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops of its own accord — i.e. until a
    /// client sends a `Shutdown` frame. The `rskip-eval serve`
    /// subcommand's main loop.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Initiates shutdown — already-admitted jobs finish, new
    /// submissions are refused — and joins every server thread.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        // The accept loop is parked in accept(); a throwaway connection
        // wakes it to observe the flag.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop<R: CampaignRunner>(
    listener: &TcpListener,
    runner: &Arc<R>,
    queue: &Arc<JobQueue<QueuedJob>>,
    shutdown: &Arc<AtomicBool>,
    next_id: &Arc<AtomicU64>,
    config: ServerConfig,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let runner = Arc::clone(runner);
        let queue = Arc::clone(queue);
        let shutdown = Arc::clone(shutdown);
        let next_id = Arc::clone(next_id);
        let addr = listener.local_addr().ok();
        // Connection threads are detached: they exit on client EOF, and
        // an in-shutdown server only has to outlive its workers.
        std::thread::spawn(move || {
            handle_connection(stream, &*runner, &queue, &shutdown, &next_id, config, addr);
        });
    }
}

/// Serializes every outbound frame for one connection. Sole owner of
/// the write half; exits when all `Sender` clones (reader + workers on
/// this connection's jobs) are gone, or on the first write error
/// (client vanished — frames drain into the void harmlessly).
fn writer_loop(mut stream: TcpStream, frames: &Receiver<Response>) {
    while let Ok(frame) = frames.recv() {
        let mut line = encode(&frame);
        line.push('\n');
        if stream.write_all(line.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
    }
}

#[allow(clippy::too_many_lines)]
fn handle_connection<R: CampaignRunner>(
    stream: TcpStream,
    runner: &R,
    queue: &Arc<JobQueue<QueuedJob>>,
    shutdown: &Arc<AtomicBool>,
    next_id: &Arc<AtomicU64>,
    config: ServerConfig,
    addr: Option<SocketAddr>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out, frames) = channel::<Response>();
    let writer = std::thread::spawn(move || writer_loop(write_half, &frames));

    let _ = out.send(Response::Hello {
        protocol: PROTOCOL_VERSION,
        workers: config.workers.max(1),
        queue_capacity: queue.capacity(),
    });

    let registry: CancelRegistry = Arc::new(Mutex::new(HashMap::new()));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = match decode::<Request>(&line) {
            Ok(r) => r,
            Err(detail) => {
                let _ = out.send(Response::Error {
                    error: ErrorKind::MalformedFrame,
                    detail,
                });
                continue;
            }
        };
        match request {
            Request::Submit(spec) => {
                let response = admit(
                    spec, runner, queue, shutdown, next_id, config, &out, &registry,
                );
                let _ = out.send(response);
            }
            Request::Cancel { job } => {
                let flag = registry.lock().unwrap().get(&job).cloned();
                match flag {
                    Some(flag) => flag.store(true, Ordering::SeqCst),
                    None => {
                        let _ = out.send(Response::Error {
                            error: ErrorKind::UnknownJob,
                            detail: format!(
                                "job {job} was never submitted on this connection, or already finished"
                            ),
                        });
                    }
                }
            }
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                queue.close();
                if let Some(addr) = addr {
                    let _ = TcpStream::connect(addr);
                }
                break;
            }
        }
    }
    // Client gone (EOF, error, or post-Shutdown): cancel whatever it
    // still had in flight.
    for flag in registry.lock().unwrap().values() {
        flag.store(true, Ordering::SeqCst);
    }
    drop(out);
    let _ = writer.join();
}

/// Validates and enqueues one submission, returning the frame to send.
#[allow(clippy::too_many_arguments)]
fn admit<R: CampaignRunner>(
    spec: JobSpec,
    runner: &R,
    queue: &Arc<JobQueue<QueuedJob>>,
    shutdown: &Arc<AtomicBool>,
    next_id: &Arc<AtomicU64>,
    config: ServerConfig,
    out: &Sender<Response>,
    registry: &CancelRegistry,
) -> Response {
    if shutdown.load(Ordering::SeqCst) {
        return Response::Rejected {
            error: ErrorKind::ShuttingDown,
            detail: "server is draining for shutdown".to_string(),
            retry_after_ms: None,
        };
    }
    if !valid_tenant(spec.tenant_or_default()) {
        return Response::Rejected {
            error: ErrorKind::BadTenant,
            detail: format!(
                "tenant {:?} (want non-empty [a-z0-9_-], at most 64 bytes)",
                spec.tenant
            ),
            retry_after_ms: None,
        };
    }
    if spec.trials == 0 || spec.trials > config.max_trials {
        return Response::Rejected {
            error: ErrorKind::OversizedTrials,
            detail: format!(
                "trials must be in 1..={} (got {})",
                config.max_trials, spec.trials
            ),
            retry_after_ms: None,
        };
    }
    if let Err((error, detail)) = runner.validate(&spec) {
        return Response::Rejected {
            error,
            detail,
            retry_after_ms: None,
        };
    }

    let chunk = if spec.chunk == 0 {
        config.default_chunk
    } else {
        spec.chunk
    }
    .min(spec.trials)
    .max(1);
    let id = next_id.fetch_add(1, Ordering::SeqCst);
    let cancel = Arc::new(AtomicBool::new(false));
    registry.lock().unwrap().insert(id, Arc::clone(&cancel));
    let trials = spec.trials;
    let job = QueuedJob {
        id,
        spec,
        chunk,
        cancel,
        out: out.clone(),
        registry: Arc::clone(registry),
    };
    match queue.try_push(job) {
        Ok(()) => Response::Accepted {
            job: id,
            trials,
            chunk,
        },
        Err(err) => {
            registry.lock().unwrap().remove(&id);
            match err {
                PushError::Full { queued } => Response::Rejected {
                    error: ErrorKind::QueueFull,
                    detail: format!("queue at capacity ({queued} jobs waiting)"),
                    // Crude but honest backoff hint: a slot opens when a
                    // queued job starts, so scale with the backlog.
                    retry_after_ms: Some(50 + 100 * queued as u64),
                },
                PushError::Closed => Response::Rejected {
                    error: ErrorKind::ShuttingDown,
                    detail: "server is draining for shutdown".to_string(),
                    retry_after_ms: None,
                },
            }
        }
    }
}

fn worker_loop<R: CampaignRunner>(runner: &R, queue: &JobQueue<QueuedJob>) {
    while let Some(job) = queue.pop() {
        run_job(runner, &job);
        job.registry.lock().unwrap().remove(&job.id);
    }
}

/// Executes one job chunk-by-chunk, streaming the running aggregate
/// after each chunk and honoring cancellation and early stopping
/// between chunks.
fn run_job<R: CampaignRunner>(runner: &R, job: &QueuedJob) {
    let trials = job.spec.trials;
    let started = Instant::now();
    let mut aggregate = CampaignStats::default();
    let mut executed: u32 = 0;
    let mut chunk_index: u32 = 0;
    let mut early_stopped = false;

    while executed < trials {
        if job.cancel.load(Ordering::SeqCst) {
            let _ = job.out.send(Response::Cancelled {
                job: job.id,
                executed,
                stats: aggregate,
            });
            return;
        }
        let end = (executed + job.chunk).min(trials);
        let chunk_started = Instant::now();
        let output = runner.run_chunk(&job.spec, executed..end);
        let chunk_nanos = u64::try_from(chunk_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        aggregate.merge(&output.stats);
        executed = end;
        let _ = job.out.send(Response::Progress(ProgressFrame {
            job: job.id,
            chunk: chunk_index,
            executed,
            requested: trials,
            stats: aggregate,
            correct_ci: aggregate.correct_ci(),
            sdc_ci: aggregate.sdc_ci(),
            outcomes: output.outcomes,
            chunk_nanos,
        }));
        chunk_index += 1;
        if let Some(stop) = job.spec.stop {
            if executed < trials && stop.satisfied(&aggregate) {
                early_stopped = true;
                break;
            }
        }
    }

    let total_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let _ = job.out.send(Response::Done(DoneFrame {
        job: job.id,
        executed,
        requested: trials,
        early_stopped,
        stats: aggregate,
        correct_ci: aggregate.correct_ci(),
        sdc_ci: aggregate.sdc_ci(),
        total_nanos,
    }));
}
