//! The campaign server: accept loop, per-connection sessions, the
//! worker pool — and, with a state directory, crash-safe durability.
//!
//! Thread structure (all `std::thread`, no runtime):
//!
//! ```text
//! accept loop ──► per-connection reader ──► bounded JobQueue ──► worker pool
//!                        │                                          │
//!                        └───────► per-connection writer ◄──────────┘
//!                                   (mpsc, owns the socket)
//! ```
//!
//! Each connection gets a **reader** thread (parses request frames,
//! validates, admits into the queue) and a **writer** thread (the only
//! thing that writes the socket, fed by an `mpsc` channel — so a
//! worker streaming job A's chunks and the reader rejecting job B
//! never interleave bytes mid-frame). Workers are shared across
//! connections and pop jobs FIFO; *within* a job, chunks run
//! sequentially on one worker, which is what makes the early-stopping
//! decision point — and therefore the exact executed-trial set —
//! deterministic for a fixed chunk size. Parallelism comes from the
//! pool multiplexing jobs, and from each chunk's trials fanning out
//! over the harness's deterministic `parallel_map` below us.
//!
//! **Durability.** With [`ServerConfig::state_dir`] set, every job's
//! identity, spec, per-chunk progress and terminal outcome is fsynced
//! to a per-tenant [`JobJournal`] before the next chunk runs, and a
//! restarted server replays the journals: finished jobs seed the
//! result cache, unfinished ones re-enter the queue at their next
//! chunk boundary. Because each trial is a pure function of `(campaign
//! seed, trial index)` and the aggregate is a commutative monoid, the
//! resumed job's final aggregate is byte-identical to an uninterrupted
//! run — `SIGKILL` at any chunk boundary included (the crash-injection
//! hook `RSKIP_SERVE_CRASH_AFTER_CHUNKS=N`, which aborts the process
//! after the N-th journaled chunk, exists to prove exactly that).
//!
//! **Job identity.** Every non-`want_outcomes` job gets a content-hash
//! key ([`job_key`]) over the runner's fingerprint (bench module
//! content) and the result-relevant spec fields. The key drives three
//! behaviors: completed results are cached (a resubmission streams a
//! `Done` with `cached: true` and executes zero trials), identical
//! in-flight submissions are refused with
//! [`ErrorKind::DuplicateInFlight`] + a retry hint (so a reconnecting
//! client never double-runs a campaign), and a job whose connection
//! died mid-run parks its progress under the key — the retried
//! submission resumes from the last completed chunk instead of
//! starting over.
//!
//! Terminal semantics are deliberately asymmetric: an explicit
//! `Cancel` frame is journaled terminal (a restart must not resurrect
//! cancelled work), while a client EOF merely *suspends* — the journal
//! keeps the job resumable and the in-memory progress survives for the
//! retry. Cancellation and suspension are both chunk-atomic: flags are
//! checked between chunks, never mid-chunk.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rskip_core::digest::Fnv1a64;
use rskip_core::stats::CampaignStats;

use crate::journal::{JobJournal, JournalEvent};
use crate::protocol::{
    decode, encode, valid_tenant, DoneFrame, ErrorKind, JobSpec, ProgressFrame, Request, Response,
    PROTOCOL_VERSION,
};
use crate::queue::{JobQueue, PushError};
use crate::runner::CampaignRunner;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads popping the job queue.
    pub workers: usize,
    /// Bounded queue capacity (jobs waiting beyond the ones in flight).
    pub queue_capacity: usize,
    /// Chunk size used when a job submits `chunk: 0`.
    pub default_chunk: u32,
    /// Per-job trial cap; requests above it are rejected as oversized.
    pub max_trials: u32,
    /// Directory for the per-tenant job journals. `None` disables
    /// durability (the result cache and resume-on-reconnect still work
    /// in memory; nothing survives the process).
    pub state_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            default_chunk: 64,
            max_trials: 1_000_000,
            state_dir: None,
        }
    }
}

/// What a restarted server recovered from its state directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Unfinished jobs re-enqueued at their next chunk boundary.
    pub jobs_resumed: usize,
    /// Completed results restored into the cache.
    pub results_cached: usize,
    /// Wall nanoseconds spent replaying journals (the resume
    /// overhead — what `serve-bench` reports).
    pub replay_nanos: u64,
    /// Torn-tail bytes truncated (crash-mid-append residue).
    pub truncated_bytes: u64,
    /// Intact-but-undecodable records skipped.
    pub skipped_records: u64,
}

/// Ceiling for the queue-full backoff hint, before jitter.
pub const BACKOFF_CAP_MS: u64 = 2_000;

/// The backpressure hint for a full queue: linear in the backlog,
/// capped at [`BACKOFF_CAP_MS`], plus up to 25% deterministic-in-
/// `jitter` spread so a herd of synchronized clients doesn't retry in
/// lockstep. Always in `50..=BACKOFF_CAP_MS * 5 / 4`.
#[must_use]
pub fn backoff_hint_ms(queued: usize, jitter: u64) -> u64 {
    let base = (50 + 100 * queued as u64).min(BACKOFF_CAP_MS);
    base + jitter % (base / 4 + 1)
}

/// The content-hash identity of one campaign job: the runner's
/// fingerprint (bench module content) folded with every spec field
/// that determines results. `chunk` participates only when an
/// early-stopping rule is set — the stop decision is evaluated at
/// chunk boundaries, so with `stop` the executed-trial set depends on
/// the chunk size, and without it results are chunking-invariant.
/// `want_outcomes` jobs have no key (per-trial code streams cannot be
/// replayed from an aggregate).
#[must_use]
pub fn job_key(fingerprint: u64, spec: &JobSpec, chunk: u32) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(&fingerprint.to_le_bytes());
    for text in [
        spec.tenant_or_default(),
        &spec.bench.to_ascii_lowercase(),
        &spec.scheme.to_ascii_lowercase(),
        &spec.fault_model.to_ascii_lowercase(),
        &spec.tier.to_ascii_lowercase(),
    ] {
        h.update(text.as_bytes());
        h.update(&[0]);
    }
    h.update(&spec.trials.to_le_bytes());
    if let Some(stop) = spec.stop {
        h.update(&[1, stop.metric as u8]);
        h.update(&stop.half_width.to_bits().to_le_bytes());
        h.update(&chunk.to_le_bytes());
    } else {
        h.update(&[0]);
    }
    h.finish()
}

/// Per-job flags shared between a connection's reader and the worker
/// running the job. `cancel` (an explicit `Cancel` frame) is terminal
/// and journaled; `suspend` (client EOF) parks progress resumably.
/// Both take effect at the next chunk boundary.
#[derive(Clone, Default)]
struct JobFlags {
    cancel: Arc<AtomicBool>,
    suspend: Arc<AtomicBool>,
}

/// Per-connection flag registry. Membership doubles as the job's
/// liveness: a cancel for an id not present is `UnknownJob`, whether
/// it never existed or already finished.
type CancelRegistry = Arc<Mutex<HashMap<u64, JobFlags>>>;

/// One admitted job, as carried through the queue to a worker.
struct QueuedJob {
    id: u64,
    /// Content-hash identity; `None` for `want_outcomes` jobs, which
    /// bypass the cache, dedup and resume machinery entirely.
    key: Option<u64>,
    spec: JobSpec,
    chunk: u32,
    /// Resume point: trials already executed (0 for a fresh job) ...
    start_executed: u32,
    /// ... and their merged aggregate.
    start_stats: CampaignStats,
    flags: JobFlags,
    /// Frame sink; `None` for journal-recovered orphans, whose results
    /// land in the journal and cache only.
    out: Option<Sender<Response>>,
    registry: Option<CancelRegistry>,
}

impl QueuedJob {
    fn send(&self, frame: Response) {
        if let Some(out) = &self.out {
            let _ = out.send(frame);
        }
    }
}

/// Everything shared between sessions, workers, and restarts.
struct ServiceState {
    config: ServerConfig,
    next_id: AtomicU64,
    /// Completed results by job key.
    cache: Mutex<HashMap<u64, DoneFrame>>,
    /// Key → job id for every queued or running keyed job.
    inflight: Mutex<HashMap<u64, u64>>,
    /// Progress parked by client EOF, waiting for a resubmission.
    suspended: Mutex<HashMap<u64, SuspendedJob>>,
    journal: Option<Mutex<JobJournal>>,
    /// Journaled chunks completed, for the crash-injection hook.
    chunks_journaled: AtomicU64,
    /// `RSKIP_SERVE_CRASH_AFTER_CHUNKS`: abort the process (no
    /// cleanup, no final fsyncs — as close to SIGKILL as code can ask
    /// for) after this many journaled chunks.
    crash_after_chunks: Option<u64>,
    /// xorshift state feeding backoff jitter.
    jitter: Mutex<u64>,
}

/// Progress parked by a client EOF. The resubmission's own spec is
/// used on resume (keys match, so results are identical); only the
/// resume point and the original chunk size need to survive.
struct SuspendedJob {
    chunk: u32,
    executed: u32,
    stats: CampaignStats,
}

impl ServiceState {
    fn next_jitter(&self) -> u64 {
        let mut s = self.jitter.lock().unwrap();
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x
    }

    /// Appends `event` to `tenant`'s journal (no-op for keyless jobs
    /// and journal-less servers). A failed append costs durability,
    /// not the job — it is reported, not propagated.
    fn journal_event(&self, key: Option<u64>, tenant: &str, event: &JournalEvent) {
        if key.is_none() {
            return;
        }
        if let Some(journal) = &self.journal {
            if let Err(err) = journal.lock().unwrap().record(tenant, event) {
                eprintln!("rskip-serve: journal append failed for tenant {tenant}: {err:?}");
            }
        }
    }

    /// The crash-injection hook: called after each *journaled* chunk.
    fn crash_hook(&self) {
        let done = self.chunks_journaled.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(n) = self.crash_after_chunks {
            if done >= n {
                eprintln!("rskip-serve: RSKIP_SERVE_CRASH_AFTER_CHUNKS={n} reached, aborting");
                std::process::abort();
            }
        }
    }

    fn clear_inflight(&self, key: Option<u64>) {
        if let Some(k) = key {
            self.inflight.lock().unwrap().remove(&k);
        }
    }
}

/// A running campaign server. Dropping the handle does *not* stop the
/// server; call [`shutdown`](Server::shutdown) (or send a `Shutdown`
/// frame) to drain and join it.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<JobQueue<QueuedJob>>,
    threads: Vec<JoinHandle<()>>,
    recovery: RecoveryReport,
}

impl Server {
    /// Binds `addr`, replays `config.state_dir`'s journals (resuming
    /// unfinished jobs and restoring cached results), spawns the
    /// accept loop and `config.workers` worker threads, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or a state-directory that cannot
    /// be created/replayed.
    pub fn bind<A: ToSocketAddrs, R: CampaignRunner>(
        addr: A,
        runner: Arc<R>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(JobQueue::new(config.queue_capacity));

        let crash_after_chunks = std::env::var("RSKIP_SERVE_CRASH_AFTER_CHUNKS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());

        let replay_started = Instant::now();
        let mut recovery = RecoveryReport::default();
        let mut cache = HashMap::new();
        let mut inflight = HashMap::new();
        let mut next_id = 1u64;
        let mut journal = None;
        let mut resumable = Vec::new();
        if let Some(dir) = &config.state_dir {
            let (jobj, rec) = JobJournal::open(dir)
                .map_err(|e| io::Error::other(format!("state dir {dir:?}: {e:?}")))?;
            journal = Some(Mutex::new(jobj));
            next_id = rec.next_job_id;
            recovery.results_cached = rec.completed.len();
            recovery.truncated_bytes = rec.truncated_bytes;
            recovery.skipped_records = rec.skipped_records;
            cache.extend(rec.completed);
            resumable = rec.resumable;
        }

        let state = Arc::new(ServiceState {
            config,
            next_id: AtomicU64::new(next_id),
            cache: Mutex::new(cache),
            inflight: Mutex::new(HashMap::new()),
            suspended: Mutex::new(HashMap::new()),
            journal,
            chunks_journaled: AtomicU64::new(0),
            crash_after_chunks,
            jitter: Mutex::new(
                0x9E37_79B9_7F4A_7C15
                    ^ u64::from(addr.port())
                    ^ u64::from(std::process::id()) << 17,
            ),
        });

        // Re-enqueue unfinished jobs before any worker starts: they
        // keep their original ids and chunk sizes (the executed-trial
        // set must match the uninterrupted run), run with no client
        // attached, and land in the journal + cache like any other
        // job. `restore` ignores the capacity bound — this work was
        // already accepted durably.
        recovery.jobs_resumed = resumable.len();
        for r in resumable {
            inflight.insert(r.key, r.job);
            let _ = queue.restore(QueuedJob {
                id: r.job,
                key: Some(r.key),
                spec: r.spec,
                chunk: r.chunk,
                start_executed: r.executed,
                start_stats: r.stats,
                flags: JobFlags::default(),
                out: None,
                registry: None,
            });
        }
        *state.inflight.lock().unwrap() = inflight;
        recovery.replay_nanos =
            u64::try_from(replay_started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let workers = state.config.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let runner = Arc::clone(&runner);
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || {
                worker_loop(&*runner, &queue, &state);
            }));
        }
        {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &runner, &queue, &shutdown, &state);
            }));
        }
        Ok(Server {
            addr,
            shutdown,
            queue,
            threads,
            recovery,
        })
    }

    /// The bound address (useful after binding port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What this server recovered from its state directory at bind
    /// time (all zeros without one).
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Blocks until the server stops of its own accord — i.e. until a
    /// client sends a `Shutdown` frame. The `rskip-eval serve`
    /// subcommand's main loop.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Initiates shutdown — already-admitted jobs finish, new
    /// submissions are refused — and joins every server thread.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        // The accept loop is parked in accept(); a throwaway connection
        // wakes it to observe the flag.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop<R: CampaignRunner>(
    listener: &TcpListener,
    runner: &Arc<R>,
    queue: &Arc<JobQueue<QueuedJob>>,
    shutdown: &Arc<AtomicBool>,
    state: &Arc<ServiceState>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let runner = Arc::clone(runner);
        let queue = Arc::clone(queue);
        let shutdown = Arc::clone(shutdown);
        let state = Arc::clone(state);
        let addr = listener.local_addr().ok();
        // Connection threads are detached: they exit on client EOF, and
        // an in-shutdown server only has to outlive its workers.
        std::thread::spawn(move || {
            handle_connection(stream, &*runner, &queue, &shutdown, &state, addr);
        });
    }
}

/// Serializes every outbound frame for one connection. Sole owner of
/// the write half; exits when all `Sender` clones (reader + workers on
/// this connection's jobs) are gone, or on the first write error
/// (client vanished — frames drain into the void harmlessly).
fn writer_loop(mut stream: TcpStream, frames: &Receiver<Response>) {
    while let Ok(frame) = frames.recv() {
        let mut line = encode(&frame);
        line.push('\n');
        if stream.write_all(line.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
    }
}

fn handle_connection<R: CampaignRunner>(
    stream: TcpStream,
    runner: &R,
    queue: &Arc<JobQueue<QueuedJob>>,
    shutdown: &Arc<AtomicBool>,
    state: &Arc<ServiceState>,
    addr: Option<SocketAddr>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out, frames) = channel::<Response>();
    let writer = std::thread::spawn(move || writer_loop(write_half, &frames));

    let _ = out.send(Response::Hello {
        protocol: PROTOCOL_VERSION,
        workers: state.config.workers.max(1),
        queue_capacity: queue.capacity(),
    });

    // Until the client declares otherwise, assume a version-1 peer:
    // v2-only error kinds are mapped to their v1 equivalents.
    let mut session_protocol: u32 = 1;
    let registry: CancelRegistry = Arc::new(Mutex::new(HashMap::new()));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = match decode::<Request>(&line) {
            Ok(r) => r,
            Err(detail) => {
                let _ = out.send(Response::Error {
                    error: ErrorKind::MalformedFrame,
                    detail,
                });
                continue;
            }
        };
        match request {
            Request::Hello { protocol } => {
                session_protocol = protocol.min(PROTOCOL_VERSION);
            }
            Request::Submit(spec) => {
                admit(
                    spec,
                    runner,
                    queue,
                    shutdown,
                    state,
                    &out,
                    &registry,
                    session_protocol,
                );
            }
            Request::Cancel { job } => {
                let flags = registry.lock().unwrap().get(&job).cloned();
                match flags {
                    Some(flags) => flags.cancel.store(true, Ordering::SeqCst),
                    None => {
                        let _ = out.send(Response::Error {
                            error: ErrorKind::UnknownJob,
                            detail: format!(
                                "job {job} was never submitted on this connection, or already finished"
                            ),
                        });
                    }
                }
            }
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                queue.close();
                if let Some(addr) = addr {
                    let _ = TcpStream::connect(addr);
                }
                break;
            }
        }
    }
    // Client gone (EOF, error, or post-Shutdown): *suspend* whatever it
    // still had in flight — progress parks under the job key and a
    // resubmission (same client retrying, or a restart replaying the
    // journal) resumes at the next chunk boundary. Only an explicit
    // Cancel frame is terminal.
    for flags in registry.lock().unwrap().values() {
        flags.suspend.store(true, Ordering::SeqCst);
    }
    drop(out);
    let _ = writer.join();
}

/// Validates one submission and sends every resulting frame: a typed
/// rejection, a cached `Accepted` + `Done{cached}` pair, or an
/// `Accepted` after enqueueing (fresh or resuming parked progress).
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn admit<R: CampaignRunner>(
    spec: JobSpec,
    runner: &R,
    queue: &Arc<JobQueue<QueuedJob>>,
    shutdown: &Arc<AtomicBool>,
    state: &Arc<ServiceState>,
    out: &Sender<Response>,
    registry: &CancelRegistry,
    session_protocol: u32,
) {
    let reject = |error: ErrorKind, detail: String, retry_after_ms: Option<u64>| {
        let _ = out.send(Response::Rejected {
            error,
            detail,
            retry_after_ms,
        });
    };
    if shutdown.load(Ordering::SeqCst) {
        return reject(
            ErrorKind::ShuttingDown,
            "server is draining for shutdown".to_string(),
            None,
        );
    }
    if !valid_tenant(spec.tenant_or_default()) {
        return reject(
            ErrorKind::BadTenant,
            format!(
                "tenant {:?} (want non-empty [a-z0-9_-], at most 64 bytes)",
                spec.tenant
            ),
            None,
        );
    }
    if spec.trials == 0 || spec.trials > state.config.max_trials {
        return reject(
            ErrorKind::OversizedTrials,
            format!(
                "trials must be in 1..={} (got {})",
                state.config.max_trials, spec.trials
            ),
            None,
        );
    }
    if let Err((error, detail)) = runner.validate(&spec) {
        return reject(error, detail, None);
    }

    let chunk = if spec.chunk == 0 {
        state.config.default_chunk
    } else {
        spec.chunk
    }
    .min(spec.trials)
    .max(1);
    let trials = spec.trials;
    let key = if spec.want_outcomes {
        None
    } else {
        Some(job_key(runner.fingerprint(&spec), &spec, chunk))
    };

    if let Some(k) = key {
        // Result cache: answer without executing a trial. The frame
        // gets a fresh job id so the client's bookkeeping stays per-
        // submission, and honest accounting: `cached: true`.
        let hit = state.cache.lock().unwrap().get(&k).cloned();
        if let Some(mut done) = hit {
            let id = state.next_id.fetch_add(1, Ordering::SeqCst);
            done.job = id;
            done.cached = true;
            let _ = out.send(Response::Accepted {
                job: id,
                trials,
                chunk,
            });
            let _ = out.send(Response::Done(done));
            return;
        }
        // In-flight dedup: the same work is already queued or running
        // (possibly submitted by a client that lost its connection and
        // is retrying). Refuse with a hint; once the original finishes
        // the retry hits the cache, and if it was suspended by an EOF
        // the retry attaches to its parked progress below.
        {
            let mut inflight = state.inflight.lock().unwrap();
            if let Some(&running) = inflight.get(&k) {
                let hint = backoff_hint_ms(queue.len(), state.next_jitter());
                let error = if session_protocol >= 2 {
                    ErrorKind::DuplicateInFlight
                } else {
                    ErrorKind::QueueFull
                };
                return reject(
                    error,
                    format!("identical job already in flight as job {running}"),
                    Some(hint),
                );
            }
            // Reserve the key before releasing the lock: a racing
            // duplicate must see it.
            inflight.insert(k, 0);
        }
    }

    // Resume parked progress from a dropped connection, if any. The
    // suspended chunk size wins — the early-stop decision points (and
    // so the executed-trial set) must match the original run.
    let parked = key.and_then(|k| state.suspended.lock().unwrap().remove(&k));
    let (chunk, start_executed, start_stats) = match &parked {
        Some(s) => (s.chunk, s.executed, s.stats),
        None => (chunk, 0, CampaignStats::default()),
    };

    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    if let Some(k) = key {
        state.inflight.lock().unwrap().insert(k, id);
    }
    let flags = JobFlags::default();
    registry.lock().unwrap().insert(id, flags.clone());
    let tenant = spec.tenant_or_default().to_string();
    let job = QueuedJob {
        id,
        key,
        spec,
        chunk,
        start_executed,
        start_stats,
        flags,
        out: Some(out.clone()),
        registry: Some(Arc::clone(registry)),
    };

    // Journal the acceptance (and inherited progress) *before* the
    // push: once a worker can see the job, a crash must find it in the
    // journal. A failed push terminates the record right below.
    if let Some(k) = key {
        state.journal_event(
            key,
            &tenant,
            &JournalEvent::Accepted {
                job: id,
                key: k,
                spec: job.spec.clone(),
                chunk,
            },
        );
        if start_executed > 0 {
            state.journal_event(
                key,
                &tenant,
                &JournalEvent::Chunk {
                    job: id,
                    executed: start_executed,
                    stats: start_stats,
                },
            );
        }
    }

    match queue.try_push(job) {
        Ok(()) => {
            let _ = out.send(Response::Accepted {
                job: id,
                trials,
                chunk,
            });
        }
        Err(err) => {
            registry.lock().unwrap().remove(&id);
            state.clear_inflight(key);
            if let Some(s) = parked {
                // Progress must not be lost to a full queue.
                if let Some(k) = key {
                    state.suspended.lock().unwrap().insert(k, s);
                }
            }
            // Terminate the journaled acceptance so a restart does not
            // resurrect a job the client was told to retry.
            state.journal_event(
                key,
                &tenant,
                &JournalEvent::Cancelled {
                    job: id,
                    executed: start_executed,
                },
            );
            match err {
                PushError::Full { queued } => reject(
                    ErrorKind::QueueFull,
                    format!("queue at capacity ({queued} jobs waiting)"),
                    Some(backoff_hint_ms(queued, state.next_jitter())),
                ),
                PushError::Closed => reject(
                    ErrorKind::ShuttingDown,
                    "server is draining for shutdown".to_string(),
                    None,
                ),
            }
        }
    }
}

fn worker_loop<R: CampaignRunner>(
    runner: &R,
    queue: &JobQueue<QueuedJob>,
    state: &Arc<ServiceState>,
) {
    while let Some(job) = queue.pop() {
        run_job(runner, state, &job);
        if let Some(registry) = &job.registry {
            registry.lock().unwrap().remove(&job.id);
        }
    }
}

/// Executes one job chunk-by-chunk from its resume point, journaling
/// and streaming the running aggregate after each chunk and honoring
/// cancellation, suspension and early stopping between chunks.
fn run_job<R: CampaignRunner>(runner: &R, state: &Arc<ServiceState>, job: &QueuedJob) {
    let trials = job.spec.trials;
    let started = Instant::now();
    let mut aggregate = job.start_stats;
    let mut executed = job.start_executed;
    let mut chunk_index = executed / job.chunk;
    let mut early_stopped = false;

    // A crash can land between the chunk that satisfied the stop rule
    // and the Done record; re-evaluating on the resumed aggregate
    // reproduces the uninterrupted run's decision exactly.
    if let Some(stop) = job.spec.stop {
        if executed > 0 && executed < trials && stop.satisfied(&aggregate) {
            early_stopped = true;
        }
    }

    while !early_stopped && executed < trials {
        if job.flags.cancel.load(Ordering::SeqCst) {
            state.journal_event(
                job.key,
                job.spec.tenant_or_default(),
                &JournalEvent::Cancelled {
                    job: job.id,
                    executed,
                },
            );
            state.clear_inflight(job.key);
            job.send(Response::Cancelled {
                job: job.id,
                executed,
                stats: aggregate,
            });
            return;
        }
        if job.flags.suspend.load(Ordering::SeqCst) {
            // Client vanished: park progress resumably. No terminal
            // journal record — a restart re-enqueues this job; a
            // resubmission of the same spec attaches right here.
            if let Some(k) = job.key {
                state.suspended.lock().unwrap().insert(
                    k,
                    SuspendedJob {
                        chunk: job.chunk,
                        executed,
                        stats: aggregate,
                    },
                );
            }
            state.clear_inflight(job.key);
            return;
        }
        let end = (executed + job.chunk).min(trials);
        let chunk_started = Instant::now();
        let output = runner.run_chunk(&job.spec, executed..end);
        let chunk_nanos = u64::try_from(chunk_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        aggregate.merge(&output.stats);
        executed = end;
        state.journal_event(
            job.key,
            job.spec.tenant_or_default(),
            &JournalEvent::Chunk {
                job: job.id,
                executed,
                stats: aggregate,
            },
        );
        state.crash_hook();
        job.send(Response::Progress(ProgressFrame {
            job: job.id,
            chunk: chunk_index,
            executed,
            requested: trials,
            stats: aggregate,
            correct_ci: aggregate.correct_ci(),
            sdc_ci: aggregate.sdc_ci(),
            outcomes: output.outcomes,
            chunk_nanos,
        }));
        chunk_index += 1;
        if let Some(stop) = job.spec.stop {
            if executed < trials && stop.satisfied(&aggregate) {
                early_stopped = true;
            }
        }
    }

    let total_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let done = DoneFrame {
        job: job.id,
        executed,
        requested: trials,
        early_stopped,
        stats: aggregate,
        correct_ci: aggregate.correct_ci(),
        sdc_ci: aggregate.sdc_ci(),
        total_nanos,
        cached: false,
    };
    state.journal_event(
        job.key,
        job.spec.tenant_or_default(),
        &JournalEvent::Done {
            job: job.id,
            executed,
            early_stopped,
            stats: aggregate,
            total_nanos,
        },
    );
    if let Some(k) = job.key {
        state.cache.lock().unwrap().insert(k, done.clone());
    }
    state.clear_inflight(job.key);
    job.send(Response::Done(done));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_core::stats::{EarlyStop, StopMetric};

    #[test]
    fn backoff_hint_is_bounded_and_jittered() {
        for queued in [0usize, 1, 7, 19, 1_000, usize::MAX / 128] {
            let base = (50 + 100 * queued as u64).min(BACKOFF_CAP_MS);
            for jitter in [0u64, 1, 42, u64::MAX] {
                let hint = backoff_hint_ms(queued, jitter);
                assert!(hint >= base, "hint {hint} below base {base}");
                assert!(
                    hint <= base + base / 4,
                    "hint {hint} above base {base} + 25%"
                );
                assert!(hint <= BACKOFF_CAP_MS + BACKOFF_CAP_MS / 4);
            }
        }
        // The jitter actually spreads: a synchronized herd with
        // different states does not share one retry instant.
        let spread: std::collections::HashSet<u64> =
            (0..64).map(|j| backoff_hint_ms(100, j * 977)).collect();
        assert!(spread.len() > 8, "jitter produced {} values", spread.len());
    }

    #[test]
    fn job_key_separates_results_not_cosmetics() {
        let spec = JobSpec::new("conv1d", "ar20", "seu", 500);
        let base = job_key(7, &spec, 64);
        // Same work, different chunking: same key (results are
        // chunking-invariant without a stop rule).
        assert_eq!(base, job_key(7, &spec, 128));
        // Case-insensitive labels.
        let mut loud = spec.clone();
        loud.scheme = "AR20".into();
        assert_eq!(base, job_key(7, &loud, 64));
        // Result-relevant differences split the key.
        let mut other = spec.clone();
        other.trials = 501;
        assert_ne!(base, job_key(7, &other, 64));
        let mut other = spec.clone();
        other.fault_model = "skip".into();
        assert_ne!(base, job_key(7, &other, 64));
        let mut other = spec.clone();
        other.tenant = "team-b".into();
        assert_ne!(base, job_key(7, &other, 64));
        let mut other = spec.clone();
        other.tier = "match".into();
        assert_ne!(base, job_key(7, &other, 64));
        assert_ne!(base, job_key(8, &spec, 64), "fingerprint participates");
        // With a stop rule the chunk size changes the decision points,
        // so it joins the key.
        let mut stopped = spec.clone();
        stopped.stop = Some(EarlyStop {
            metric: StopMetric::Sdc,
            half_width: 0.02,
        });
        assert_ne!(job_key(7, &stopped, 64), job_key(7, &stopped, 128));
        assert_ne!(job_key(7, &stopped, 64), base);
    }
}
