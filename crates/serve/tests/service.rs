//! End-to-end tests of the campaign service over loopback, using mock
//! runners. The harness-backed runner gets its own integration test in
//! `rskip-harness`; here the trials are synthetic so the scheduler's
//! properties — chunking determinism, streaming, early stopping,
//! backpressure, cancellation, typed error paths — are tested in
//! isolation and in milliseconds.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rskip_core::stats::{CampaignStats, EarlyStop, OutcomeClass, StopMetric, TrialOutcome};
use rskip_serve::{
    decode, encode, CampaignRunner, ChunkOutput, Client, ErrorKind, JobJournal, JobSpec, Request,
    Response, RetryPolicy, Server, ServerConfig,
};

fn temp_state_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("rskip-serve-test-{tag}-{}-{n}", std::process::id()))
}

/// Deterministic synthetic outcome for trial `t` of `spec` — a pure
/// function of (bench, trial index), mimicking the harness's split-seed
/// property: no dependence on chunk boundaries or scheduling.
fn synthetic_class(spec: &JobSpec, t: u32) -> OutcomeClass {
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(t).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    for b in spec.bench.bytes() {
        x = x.rotate_left(7) ^ u64::from(b);
    }
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    match x % 12 {
        0 => OutcomeClass::Sdc,
        1 => OutcomeClass::Segfault,
        2 => OutcomeClass::Hang,
        _ => OutcomeClass::Correct,
    }
}

fn synthetic_chunk(spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
    let mut stats = CampaignStats::default();
    let mut codes = String::new();
    for t in range {
        let class = synthetic_class(spec, t);
        stats.record(TrialOutcome {
            class,
            recovered: false,
            fired: true,
            pruned: false,
        });
        codes.push(class.code());
    }
    ChunkOutput {
        stats,
        outcomes: spec.want_outcomes.then_some(codes),
    }
}

fn validate_mock(spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
    if spec.bench != "mock" {
        return Err((
            ErrorKind::UnknownBench,
            format!("no bench {:?}", spec.bench),
        ));
    }
    if spec.scheme != "s" {
        return Err((
            ErrorKind::UnknownScheme,
            format!("no scheme {:?}", spec.scheme),
        ));
    }
    if spec.fault_model != "m" {
        return Err((
            ErrorKind::UnknownFaultModel,
            format!("no fault model {:?}", spec.fault_model),
        ));
    }
    if !spec.tier.is_empty() && spec.tier != "t" {
        return Err((ErrorKind::UnknownTier, format!("no tier {:?}", spec.tier)));
    }
    Ok(())
}

/// Instant deterministic runner.
struct MockRunner;

impl CampaignRunner for MockRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
        validate_mock(spec)
    }

    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
        synthetic_chunk(spec, range)
    }
}

/// Runner that sleeps per chunk, for cancellation timing.
struct SlowRunner(Duration);

impl CampaignRunner for SlowRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
        validate_mock(spec)
    }

    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
        std::thread::sleep(self.0);
        synthetic_chunk(spec, range)
    }
}

/// Runner that signals chunk start and then blocks until released, for
/// deterministic backpressure tests.
struct GateRunner {
    started: Mutex<Sender<()>>,
    release: Mutex<Receiver<()>>,
}

impl CampaignRunner for GateRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
        validate_mock(spec)
    }

    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
        self.started.lock().unwrap().send(()).unwrap();
        self.release.lock().unwrap().recv().unwrap();
        synthetic_chunk(spec, range)
    }
}

/// Instant runner that records every executed trial range — the probe
/// for "a cache hit / resume executed exactly these trials".
#[derive(Default)]
struct RecordingRunner {
    ranges: Mutex<Vec<Range<u32>>>,
}

impl CampaignRunner for RecordingRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
        validate_mock(spec)
    }

    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
        self.ranges.lock().unwrap().push(range.clone());
        synthetic_chunk(spec, range)
    }
}

fn spec(trials: u32, chunk: u32) -> JobSpec {
    let mut s = JobSpec::new("mock", "s", "m", trials);
    s.chunk = chunk;
    s
}

#[test]
fn streamed_aggregate_is_byte_identical_to_one_shot() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    assert_eq!(client.info().protocol, rskip_serve::PROTOCOL_VERSION);

    let mut job_spec = spec(500, 100);
    job_spec.want_outcomes = true;
    let job = client.submit_accepted(&job_spec).expect("accept");
    let outcome = client.stream_job(job, |_| {}).expect("stream");

    // Five chunks of 100, all executed.
    assert_eq!(outcome.progress.len(), 5);
    assert_eq!(outcome.done.executed, 500);
    assert_eq!(outcome.done.requested, 500);
    assert!(!outcome.done.early_stopped);

    // The one-shot reference: the same runner over 0..500 in one call.
    let one_shot = synthetic_chunk(&job_spec, 0..500);
    assert_eq!(outcome.done.stats, one_shot.stats);
    // Byte-identical on the wire, not just structurally equal.
    assert_eq!(encode(&outcome.done.stats), encode(&one_shot.stats));
    // Streamed per-trial codes concatenate to the one-shot string.
    let streamed: String = outcome
        .progress
        .iter()
        .map(|p| p.outcomes.clone().expect("asked for outcomes"))
        .collect();
    assert_eq!(Some(streamed), one_shot.outcomes);

    server.shutdown();
}

#[test]
fn chunk_size_does_not_change_the_aggregate() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");
    let mut finals = Vec::new();
    for chunk in [1, 7, 100, 500] {
        let mut client = Client::connect(server.addr()).expect("connect");
        let job = client.submit_accepted(&spec(500, chunk)).expect("accept");
        let outcome = client.stream_job(job, |_| {}).expect("stream");
        finals.push(encode(&outcome.done.stats));
    }
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "aggregate must be chunking-invariant: {finals:?}"
    );
    server.shutdown();
}

#[test]
fn progress_cis_narrow_and_early_stop_reports_savings() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut job_spec = spec(100_000, 200);
    job_spec.stop = Some(EarlyStop {
        metric: StopMetric::Sdc,
        half_width: 0.01,
    });
    let job = client.submit_accepted(&job_spec).expect("accept");
    let outcome = client.stream_job(job, |_| {}).expect("stream");

    // Executed counts strictly increase; for frames with an unchanged
    // SDC count the Wilson half-width strictly shrinks (the monotone
    // regime — across frames where the count moved, width may grow).
    for pair in outcome.progress.windows(2) {
        assert!(pair[1].executed > pair[0].executed);
        if pair[1].stats.counts.sdc == pair[0].stats.counts.sdc {
            assert!(pair[1].sdc_ci.half_width() < pair[0].sdc_ci.half_width());
        }
    }
    let first = outcome.progress.first().expect("at least one chunk");
    let last = outcome.progress.last().expect("at least one chunk");
    assert!(last.sdc_ci.half_width() <= first.sdc_ci.half_width());

    // The rule fired with trials to spare, and honestly reported so.
    assert!(outcome.done.early_stopped);
    assert!(
        outcome.done.executed < outcome.done.requested,
        "early stop must save trials: {} vs {}",
        outcome.done.executed,
        outcome.done.requested
    );
    assert!(outcome.done.sdc_ci.half_width() <= 0.01);

    server.shutdown();
}

#[test]
fn error_paths_leave_the_server_serving() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Malformed line → typed error frame, connection stays up.
    client.send_raw("{definitely not json").expect("send");
    match client.recv().expect("frame") {
        Response::Error { error, .. } => assert_eq!(error, ErrorKind::MalformedFrame),
        other => panic!("expected MalformedFrame error, got {other:?}"),
    }

    // Unknown identifiers and bounds → typed rejections.
    let cases: Vec<(JobSpec, ErrorKind)> = vec![
        (JobSpec::new("nope", "s", "m", 10), ErrorKind::UnknownBench),
        (
            JobSpec::new("mock", "nope", "m", 10),
            ErrorKind::UnknownScheme,
        ),
        (
            JobSpec::new("mock", "s", "nope", 10),
            ErrorKind::UnknownFaultModel,
        ),
        (
            {
                let mut s = JobSpec::new("mock", "s", "m", 10);
                s.tier = "warp".into();
                s
            },
            ErrorKind::UnknownTier,
        ),
        (
            JobSpec::new("mock", "s", "m", 0),
            ErrorKind::OversizedTrials,
        ),
        (
            JobSpec::new("mock", "s", "m", u32::MAX),
            ErrorKind::OversizedTrials,
        ),
        (
            {
                let mut s = JobSpec::new("mock", "s", "m", 10);
                s.tenant = "../escape".into();
                s
            },
            ErrorKind::BadTenant,
        ),
    ];
    for (bad, want) in cases {
        match client.submit(&bad).expect("frame") {
            Response::Rejected { error, .. } => assert_eq!(error, want, "for {bad:?}"),
            other => panic!("expected rejection of {bad:?}, got {other:?}"),
        }
    }

    // Cancel of a job that was never submitted → typed error.
    client.cancel(10_000).expect("send");
    match client.recv().expect("frame") {
        Response::Error { error, .. } => assert_eq!(error, ErrorKind::UnknownJob),
        other => panic!("expected UnknownJob error, got {other:?}"),
    }

    // After all of the above, a valid job still runs to completion.
    let job = client.submit_accepted(&spec(50, 10)).expect("accept");
    let outcome = client.stream_job(job, |_| {}).expect("stream");
    assert_eq!(outcome.done.executed, 50);

    // Cancel of a *finished* job → UnknownJob too.
    client.cancel(job).expect("send");
    match client.recv().expect("frame") {
        Response::Error { error, .. } => assert_eq!(error, ErrorKind::UnknownJob),
        other => panic!("expected UnknownJob error, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn queue_full_rejects_with_backoff_hint() {
    let (started_tx, started_rx) = channel();
    let (release_tx, release_rx) = channel();
    let runner = GateRunner {
        started: Mutex::new(started_tx),
        release: Mutex::new(release_rx),
    };
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(runner), config).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Distinct trial counts keep the three jobs' content keys apart —
    // this test is about backpressure, not the in-flight dedup (which
    // has its own test).
    // Job A: the single worker pops it and blocks inside its chunk.
    let job_a = client.submit_accepted(&spec(1, 1)).expect("accept A");
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("worker started job A");
    // Job B fills the one queue slot.
    let job_b = client.submit_accepted(&spec(2, 2)).expect("accept B");
    // Job C finds the queue full: typed rejection with a backoff hint.
    match client.submit(&spec(3, 3)).expect("frame") {
        Response::Rejected {
            error,
            retry_after_ms,
            ..
        } => {
            assert_eq!(error, ErrorKind::QueueFull);
            let hint = retry_after_ms.expect("QueueFull must hint a backoff");
            assert!(
                (50..=rskip_serve::BACKOFF_CAP_MS * 5 / 4).contains(&hint),
                "hint {hint} outside the documented bounds"
            );
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }

    // Release both chunks; A then B complete normally.
    release_tx.send(()).unwrap();
    release_tx.send(()).unwrap();
    let done_a = client.stream_job(job_a, |_| {}).expect("A finishes");
    assert_eq!(done_a.done.executed, 1);
    let done_b = client.stream_job(job_b, |_| {}).expect("B finishes");
    assert_eq!(done_b.done.executed, 2);

    server.shutdown();
}

#[test]
fn cancel_mid_flight_reports_partial_aggregate() {
    let runner = SlowRunner(Duration::from_millis(25));
    let server = Server::bind("127.0.0.1:0", Arc::new(runner), ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    let job = client.submit_accepted(&spec(10_000, 5)).expect("accept");
    // Wait for the first progress frame, then cancel.
    let mut executed_at_cancel = match client.recv().expect("frame") {
        Response::Progress(p) if p.job == job => {
            client.cancel(job).expect("send cancel");
            p.executed
        }
        other => panic!("expected a progress frame first, got {other:?}"),
    };
    // Drain until the terminal Cancelled frame.
    loop {
        match client.recv().expect("frame") {
            Response::Progress(p) if p.job == job => executed_at_cancel = p.executed,
            Response::Cancelled {
                job: cancelled,
                executed,
                stats,
            } => {
                assert_eq!(cancelled, job);
                assert_eq!(executed, executed_at_cancel);
                assert!(executed > 0 && executed < 10_000);
                // The partial aggregate covers exactly the completed
                // chunks — chunk-boundary atomic, never mid-chunk.
                let reference = synthetic_chunk(&spec(10_000, 5), 0..executed);
                assert_eq!(stats, reference.stats);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    server.shutdown();
}

#[test]
fn shutdown_frame_drains_and_refuses_new_work() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");

    let mut first = Client::connect(server.addr()).expect("connect");
    first.shutdown_server().expect("send shutdown");

    // A fresh connection either fails outright (listener gone) or gets
    // a typed ShuttingDown rejection — never a hang or a crash.
    if let Ok(mut second) = Client::connect(server.addr()) {
        match second.submit(&spec(10, 5)) {
            Ok(Response::Rejected { error, .. }) => assert_eq!(error, ErrorKind::ShuttingDown),
            Ok(other) => panic!("expected ShuttingDown, got {other:?}"),
            Err(_) => {} // connection torn down mid-drain: acceptable
        }
    }

    server.shutdown();
}

#[test]
fn cached_resubmission_executes_zero_trials() {
    let runner = Arc::new(RecordingRunner::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&runner), ServerConfig::default())
        .expect("bind loopback");
    let job_spec = spec(50, 10);

    let mut client = Client::connect(server.addr()).expect("connect");
    let job = client.submit_accepted(&job_spec).expect("accept");
    let first = client.stream_job(job, |_| {}).expect("stream");
    assert!(!first.done.cached, "a fresh run is not a cache hit");
    assert_eq!(first.done.executed, 50);
    let chunks_after_first = runner.ranges.lock().unwrap().len();
    assert_eq!(chunks_after_first, 5);

    // Same spec from a new session: answered from the result cache —
    // an immediate Done, honestly flagged, with zero trials executed.
    let mut retry = Client::connect(server.addr()).expect("reconnect");
    let job2 = retry.submit_accepted(&job_spec).expect("accept cached");
    assert_ne!(job2, job, "cached answers still get fresh job ids");
    let second = retry.stream_job(job2, |_| {}).expect("stream cached");
    assert!(second.done.cached, "resubmission must be served from cache");
    assert!(second.progress.is_empty(), "no trials, no progress frames");
    assert_eq!(
        runner.ranges.lock().unwrap().len(),
        chunks_after_first,
        "a cache hit must execute zero chunks"
    );
    assert_eq!(second.done.executed, 50);
    assert_eq!(encode(&second.done.stats), encode(&first.done.stats));

    server.shutdown();
}

#[test]
fn duplicate_in_flight_is_refused_with_hint_and_mapped_for_v1() {
    let (started_tx, started_rx) = channel();
    let (release_tx, release_rx) = channel();
    let runner = GateRunner {
        started: Mutex::new(started_tx),
        release: Mutex::new(release_rx),
    };
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(runner), config).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    let job = client.submit_accepted(&spec(1, 1)).expect("accept");
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("worker started the job");

    // This session declared protocol 2, so the duplicate gets the
    // typed v2 rejection plus a retry hint.
    match client.submit(&spec(1, 1)).expect("frame") {
        Response::Rejected {
            error,
            detail,
            retry_after_ms,
        } => {
            assert_eq!(error, ErrorKind::DuplicateInFlight);
            assert!(retry_after_ms.is_some(), "duplicates must hint a backoff");
            assert!(detail.contains(&format!("job {job}")), "detail: {detail}");
        }
        other => panic!("expected DuplicateInFlight, got {other:?}"),
    }

    // A session that never sent a client Hello is treated as a v1
    // peer: the same condition maps to the nearest v1 error kind.
    {
        let stream = TcpStream::connect(server.addr()).expect("raw connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("server hello");
        let mut frame = encode(&Request::Submit(spec(1, 1)));
        frame.push('\n');
        let mut writer = stream;
        writer.write_all(frame.as_bytes()).expect("send");
        line.clear();
        reader.read_line(&mut line).expect("response");
        match decode::<Response>(&line).expect("decode") {
            Response::Rejected {
                error,
                retry_after_ms,
                ..
            } => {
                assert_eq!(
                    error,
                    ErrorKind::QueueFull,
                    "v1 sessions must see a v1 error kind"
                );
                assert!(retry_after_ms.is_some());
            }
            other => panic!("expected a rejection, got {other:?}"),
        }
    }

    release_tx.send(()).unwrap();
    let done = client.stream_job(job, |_| {}).expect("finishes");
    assert_eq!(done.done.executed, 1);

    server.shutdown();
}

/// Gate + range recording: deterministic suspension tests need both.
struct GateRecordingRunner {
    started: Mutex<Sender<()>>,
    release: Mutex<Receiver<()>>,
    ranges: Mutex<Vec<Range<u32>>>,
}

impl CampaignRunner for GateRecordingRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
        validate_mock(spec)
    }

    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
        self.started.lock().unwrap().send(()).unwrap();
        self.release.lock().unwrap().recv().unwrap();
        self.ranges.lock().unwrap().push(range.clone());
        synthetic_chunk(spec, range)
    }
}

#[test]
fn eof_suspends_progress_and_resilient_resubmit_resumes_it() {
    let (started_tx, started_rx) = channel();
    let (release_tx, release_rx) = channel();
    let runner = Arc::new(GateRecordingRunner {
        started: Mutex::new(started_tx),
        release: Mutex::new(release_rx),
        ranges: Mutex::new(Vec::new()),
    });
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&runner), config).expect("bind loopback");
    let job_spec = spec(4, 2);

    {
        let mut client = Client::connect(server.addr()).expect("connect");
        client.submit_accepted(&job_spec).expect("accept");
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("worker entered the first chunk");
        // The client vanishes mid-chunk (scope drop = EOF, no Cancel).
    }
    // Let the reader thread observe the EOF and raise the suspend
    // flag, then release the gated first chunk.
    std::thread::sleep(Duration::from_millis(200));
    release_tx.send(()).unwrap();
    // The worker parks at the chunk boundary instead of starting the
    // second chunk: no new gate entry.
    assert!(
        started_rx.recv_timeout(Duration::from_millis(300)).is_err(),
        "a suspended job must not start another chunk"
    );

    // A retrying client resubmits the identical spec and attaches to
    // the parked progress: only the missing trials run.
    release_tx.send(()).unwrap(); // pre-release the one remaining chunk
    let mut frames = Vec::new();
    let policy = RetryPolicy {
        max_attempts: 50,
        base_ms: 5,
        cap_ms: 50,
    };
    let done = Client::submit_resilient(server.addr(), &job_spec, policy, |p| {
        frames.push(p.clone());
    })
    .expect("resilient resubmit");
    assert!(!done.cached, "the resumed run actually executed trials");
    assert_eq!(done.executed, 4);
    assert!(
        frames.iter().all(|p| p.executed > 2),
        "resume must not re-stream finished trials: {frames:?}"
    );
    assert_eq!(
        *runner.ranges.lock().unwrap(),
        vec![0..2, 2..4],
        "exactly the missing trials run — no overlap, no gap"
    );
    let one_shot = synthetic_chunk(&job_spec, 0..4);
    assert_eq!(encode(&done.stats), encode(&one_shot.stats));

    server.shutdown();
}

#[test]
fn drain_shutdown_journals_clean_completion() {
    let dir = temp_state_dir("drain");
    let config = ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), config).expect("bind loopback");
    assert_eq!(server.recovery().results_cached, 0);

    let mut client = Client::connect(server.addr()).expect("connect");
    let job = client.submit_accepted(&spec(50, 10)).expect("accept");
    let outcome = client.stream_job(job, |_| {}).expect("stream");
    client.shutdown_server().expect("send shutdown");
    drop(client);
    server.join();

    // The drained job is terminally journaled: a restart would seed
    // the cache and owe no work.
    let (_, recovery) = JobJournal::open(&dir).expect("reopen journal");
    assert!(
        recovery.resumable.is_empty(),
        "drain shutdown must leave no resumable jobs"
    );
    assert_eq!(recovery.completed.len(), 1);
    let done = recovery.completed.values().next().expect("one result");
    assert_eq!(encode(&done.stats), encode(&outcome.done.stats));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_resumes_suspended_job_and_caches_its_result() {
    let dir = temp_state_dir("restart");
    let job_spec = spec(4, 2);
    let one_shot = synthetic_chunk(&job_spec, 0..4);

    // Phase 1: a durable server runs half the job, the client
    // vanishes (EOF mid-chunk), and shutdown leaves the journal with
    // no terminal record for the job.
    {
        let (started_tx, started_rx) = channel();
        let (release_tx, release_rx) = channel();
        let runner = GateRunner {
            started: Mutex::new(started_tx),
            release: Mutex::new(release_rx),
        };
        let config = ServerConfig {
            workers: 1,
            state_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", Arc::new(runner), config).expect("bind");
        {
            let mut client = Client::connect(server.addr()).expect("connect");
            client.submit_accepted(&job_spec).expect("accept");
            started_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("worker entered the first chunk");
        }
        std::thread::sleep(Duration::from_millis(200));
        release_tx.send(()).unwrap();
        assert!(
            started_rx.recv_timeout(Duration::from_millis(300)).is_err(),
            "a suspended job must not start another chunk"
        );
        server.shutdown();
    }
    // The journal holds the acceptance and one chunk checkpoint —
    // resumable at trial 2. (Opening is safe: the server is down.)
    {
        let (_, recovery) = JobJournal::open(&dir).expect("inspect journal");
        assert_eq!(recovery.resumable.len(), 1);
        assert_eq!(recovery.resumable[0].executed, 2);
        assert!(recovery.completed.is_empty());
    }

    // Phase 2: a restarted server replays the journal, finishes the
    // orphan with no client attached, and a resubmission is answered
    // from the cache — having executed only the missing trials.
    let runner = Arc::new(RecordingRunner::default());
    let config = ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&runner), config).expect("rebind");
    let recovery = server.recovery();
    assert_eq!(recovery.jobs_resumed, 1);
    assert_eq!(recovery.results_cached, 0);

    let mut saw_progress = false;
    let policy = RetryPolicy {
        max_attempts: 100,
        base_ms: 5,
        cap_ms: 50,
    };
    let done = Client::submit_resilient(server.addr(), &job_spec, policy, |_| {
        saw_progress = true;
    })
    .expect("resilient submit after restart");
    assert!(
        done.cached,
        "the replayed orphan's result answers from cache"
    );
    assert!(!saw_progress, "a cache hit streams no progress");
    assert_eq!(done.executed, 4);
    assert_eq!(encode(&done.stats), encode(&one_shot.stats));
    assert_eq!(
        *runner.ranges.lock().unwrap(),
        vec![2..4],
        "restart must resume at the next chunk boundary, not from zero"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
