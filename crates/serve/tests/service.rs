//! End-to-end tests of the campaign service over loopback, using mock
//! runners. The harness-backed runner gets its own integration test in
//! `rskip-harness`; here the trials are synthetic so the scheduler's
//! properties — chunking determinism, streaming, early stopping,
//! backpressure, cancellation, typed error paths — are tested in
//! isolation and in milliseconds.

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rskip_core::stats::{CampaignStats, EarlyStop, OutcomeClass, StopMetric, TrialOutcome};
use rskip_serve::{
    encode, CampaignRunner, ChunkOutput, Client, ErrorKind, JobSpec, Response, Server, ServerConfig,
};

/// Deterministic synthetic outcome for trial `t` of `spec` — a pure
/// function of (bench, trial index), mimicking the harness's split-seed
/// property: no dependence on chunk boundaries or scheduling.
fn synthetic_class(spec: &JobSpec, t: u32) -> OutcomeClass {
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(t).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    for b in spec.bench.bytes() {
        x = x.rotate_left(7) ^ u64::from(b);
    }
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    match x % 12 {
        0 => OutcomeClass::Sdc,
        1 => OutcomeClass::Segfault,
        2 => OutcomeClass::Hang,
        _ => OutcomeClass::Correct,
    }
}

fn synthetic_chunk(spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
    let mut stats = CampaignStats::default();
    let mut codes = String::new();
    for t in range {
        let class = synthetic_class(spec, t);
        stats.record(TrialOutcome {
            class,
            recovered: false,
            fired: true,
            pruned: false,
        });
        codes.push(class.code());
    }
    ChunkOutput {
        stats,
        outcomes: spec.want_outcomes.then_some(codes),
    }
}

fn validate_mock(spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
    if spec.bench != "mock" {
        return Err((
            ErrorKind::UnknownBench,
            format!("no bench {:?}", spec.bench),
        ));
    }
    if spec.scheme != "s" {
        return Err((
            ErrorKind::UnknownScheme,
            format!("no scheme {:?}", spec.scheme),
        ));
    }
    if spec.fault_model != "m" {
        return Err((
            ErrorKind::UnknownFaultModel,
            format!("no fault model {:?}", spec.fault_model),
        ));
    }
    if !spec.tier.is_empty() && spec.tier != "t" {
        return Err((ErrorKind::UnknownTier, format!("no tier {:?}", spec.tier)));
    }
    Ok(())
}

/// Instant deterministic runner.
struct MockRunner;

impl CampaignRunner for MockRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
        validate_mock(spec)
    }

    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
        synthetic_chunk(spec, range)
    }
}

/// Runner that sleeps per chunk, for cancellation timing.
struct SlowRunner(Duration);

impl CampaignRunner for SlowRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
        validate_mock(spec)
    }

    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
        std::thread::sleep(self.0);
        synthetic_chunk(spec, range)
    }
}

/// Runner that signals chunk start and then blocks until released, for
/// deterministic backpressure tests.
struct GateRunner {
    started: Mutex<Sender<()>>,
    release: Mutex<Receiver<()>>,
}

impl CampaignRunner for GateRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), (ErrorKind, String)> {
        validate_mock(spec)
    }

    fn run_chunk(&self, spec: &JobSpec, range: Range<u32>) -> ChunkOutput {
        self.started.lock().unwrap().send(()).unwrap();
        self.release.lock().unwrap().recv().unwrap();
        synthetic_chunk(spec, range)
    }
}

fn spec(trials: u32, chunk: u32) -> JobSpec {
    let mut s = JobSpec::new("mock", "s", "m", trials);
    s.chunk = chunk;
    s
}

#[test]
fn streamed_aggregate_is_byte_identical_to_one_shot() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    assert_eq!(client.info().protocol, rskip_serve::PROTOCOL_VERSION);

    let mut job_spec = spec(500, 100);
    job_spec.want_outcomes = true;
    let job = client.submit_accepted(&job_spec).expect("accept");
    let outcome = client.stream_job(job, |_| {}).expect("stream");

    // Five chunks of 100, all executed.
    assert_eq!(outcome.progress.len(), 5);
    assert_eq!(outcome.done.executed, 500);
    assert_eq!(outcome.done.requested, 500);
    assert!(!outcome.done.early_stopped);

    // The one-shot reference: the same runner over 0..500 in one call.
    let one_shot = synthetic_chunk(&job_spec, 0..500);
    assert_eq!(outcome.done.stats, one_shot.stats);
    // Byte-identical on the wire, not just structurally equal.
    assert_eq!(encode(&outcome.done.stats), encode(&one_shot.stats));
    // Streamed per-trial codes concatenate to the one-shot string.
    let streamed: String = outcome
        .progress
        .iter()
        .map(|p| p.outcomes.clone().expect("asked for outcomes"))
        .collect();
    assert_eq!(Some(streamed), one_shot.outcomes);

    server.shutdown();
}

#[test]
fn chunk_size_does_not_change_the_aggregate() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");
    let mut finals = Vec::new();
    for chunk in [1, 7, 100, 500] {
        let mut client = Client::connect(server.addr()).expect("connect");
        let job = client.submit_accepted(&spec(500, chunk)).expect("accept");
        let outcome = client.stream_job(job, |_| {}).expect("stream");
        finals.push(encode(&outcome.done.stats));
    }
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "aggregate must be chunking-invariant: {finals:?}"
    );
    server.shutdown();
}

#[test]
fn progress_cis_narrow_and_early_stop_reports_savings() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut job_spec = spec(100_000, 200);
    job_spec.stop = Some(EarlyStop {
        metric: StopMetric::Sdc,
        half_width: 0.01,
    });
    let job = client.submit_accepted(&job_spec).expect("accept");
    let outcome = client.stream_job(job, |_| {}).expect("stream");

    // Executed counts strictly increase; for frames with an unchanged
    // SDC count the Wilson half-width strictly shrinks (the monotone
    // regime — across frames where the count moved, width may grow).
    for pair in outcome.progress.windows(2) {
        assert!(pair[1].executed > pair[0].executed);
        if pair[1].stats.counts.sdc == pair[0].stats.counts.sdc {
            assert!(pair[1].sdc_ci.half_width() < pair[0].sdc_ci.half_width());
        }
    }
    let first = outcome.progress.first().expect("at least one chunk");
    let last = outcome.progress.last().expect("at least one chunk");
    assert!(last.sdc_ci.half_width() <= first.sdc_ci.half_width());

    // The rule fired with trials to spare, and honestly reported so.
    assert!(outcome.done.early_stopped);
    assert!(
        outcome.done.executed < outcome.done.requested,
        "early stop must save trials: {} vs {}",
        outcome.done.executed,
        outcome.done.requested
    );
    assert!(outcome.done.sdc_ci.half_width() <= 0.01);

    server.shutdown();
}

#[test]
fn error_paths_leave_the_server_serving() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Malformed line → typed error frame, connection stays up.
    client.send_raw("{definitely not json").expect("send");
    match client.recv().expect("frame") {
        Response::Error { error, .. } => assert_eq!(error, ErrorKind::MalformedFrame),
        other => panic!("expected MalformedFrame error, got {other:?}"),
    }

    // Unknown identifiers and bounds → typed rejections.
    let cases: Vec<(JobSpec, ErrorKind)> = vec![
        (JobSpec::new("nope", "s", "m", 10), ErrorKind::UnknownBench),
        (
            JobSpec::new("mock", "nope", "m", 10),
            ErrorKind::UnknownScheme,
        ),
        (
            JobSpec::new("mock", "s", "nope", 10),
            ErrorKind::UnknownFaultModel,
        ),
        (
            {
                let mut s = JobSpec::new("mock", "s", "m", 10);
                s.tier = "warp".into();
                s
            },
            ErrorKind::UnknownTier,
        ),
        (
            JobSpec::new("mock", "s", "m", 0),
            ErrorKind::OversizedTrials,
        ),
        (
            JobSpec::new("mock", "s", "m", u32::MAX),
            ErrorKind::OversizedTrials,
        ),
        (
            {
                let mut s = JobSpec::new("mock", "s", "m", 10);
                s.tenant = "../escape".into();
                s
            },
            ErrorKind::BadTenant,
        ),
    ];
    for (bad, want) in cases {
        match client.submit(&bad).expect("frame") {
            Response::Rejected { error, .. } => assert_eq!(error, want, "for {bad:?}"),
            other => panic!("expected rejection of {bad:?}, got {other:?}"),
        }
    }

    // Cancel of a job that was never submitted → typed error.
    client.cancel(10_000).expect("send");
    match client.recv().expect("frame") {
        Response::Error { error, .. } => assert_eq!(error, ErrorKind::UnknownJob),
        other => panic!("expected UnknownJob error, got {other:?}"),
    }

    // After all of the above, a valid job still runs to completion.
    let job = client.submit_accepted(&spec(50, 10)).expect("accept");
    let outcome = client.stream_job(job, |_| {}).expect("stream");
    assert_eq!(outcome.done.executed, 50);

    // Cancel of a *finished* job → UnknownJob too.
    client.cancel(job).expect("send");
    match client.recv().expect("frame") {
        Response::Error { error, .. } => assert_eq!(error, ErrorKind::UnknownJob),
        other => panic!("expected UnknownJob error, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn queue_full_rejects_with_backoff_hint() {
    let (started_tx, started_rx) = channel();
    let (release_tx, release_rx) = channel();
    let runner = GateRunner {
        started: Mutex::new(started_tx),
        release: Mutex::new(release_rx),
    };
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(runner), config).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Job A: the single worker pops it and blocks inside its chunk.
    let job_a = client.submit_accepted(&spec(1, 1)).expect("accept A");
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("worker started job A");
    // Job B fills the one queue slot.
    let job_b = client.submit_accepted(&spec(1, 1)).expect("accept B");
    // Job C finds the queue full: typed rejection with a backoff hint.
    match client.submit(&spec(1, 1)).expect("frame") {
        Response::Rejected {
            error,
            retry_after_ms,
            ..
        } => {
            assert_eq!(error, ErrorKind::QueueFull);
            assert!(retry_after_ms.is_some(), "QueueFull must hint a backoff");
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }

    // Release both chunks; A then B complete normally.
    release_tx.send(()).unwrap();
    release_tx.send(()).unwrap();
    let done_a = client.stream_job(job_a, |_| {}).expect("A finishes");
    assert_eq!(done_a.done.executed, 1);
    let done_b = client.stream_job(job_b, |_| {}).expect("B finishes");
    assert_eq!(done_b.done.executed, 1);

    server.shutdown();
}

#[test]
fn cancel_mid_flight_reports_partial_aggregate() {
    let runner = SlowRunner(Duration::from_millis(25));
    let server = Server::bind("127.0.0.1:0", Arc::new(runner), ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    let job = client.submit_accepted(&spec(10_000, 5)).expect("accept");
    // Wait for the first progress frame, then cancel.
    let mut executed_at_cancel = match client.recv().expect("frame") {
        Response::Progress(p) if p.job == job => {
            client.cancel(job).expect("send cancel");
            p.executed
        }
        other => panic!("expected a progress frame first, got {other:?}"),
    };
    // Drain until the terminal Cancelled frame.
    loop {
        match client.recv().expect("frame") {
            Response::Progress(p) if p.job == job => executed_at_cancel = p.executed,
            Response::Cancelled {
                job: cancelled,
                executed,
                stats,
            } => {
                assert_eq!(cancelled, job);
                assert_eq!(executed, executed_at_cancel);
                assert!(executed > 0 && executed < 10_000);
                // The partial aggregate covers exactly the completed
                // chunks — chunk-boundary atomic, never mid-chunk.
                let reference = synthetic_chunk(&spec(10_000, 5), 0..executed);
                assert_eq!(stats, reference.stats);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    server.shutdown();
}

#[test]
fn shutdown_frame_drains_and_refuses_new_work() {
    let server = Server::bind("127.0.0.1:0", Arc::new(MockRunner), ServerConfig::default())
        .expect("bind loopback");

    let mut first = Client::connect(server.addr()).expect("connect");
    first.shutdown_server().expect("send shutdown");

    // A fresh connection either fails outright (listener gone) or gets
    // a typed ShuttingDown rejection — never a hang or a crash.
    if let Ok(mut second) = Client::connect(server.addr()) {
        match second.submit(&spec(10, 5)) {
            Ok(Response::Rejected { error, .. }) => assert_eq!(error, ErrorKind::ShuttingDown),
            Ok(other) => panic!("expected ShuttingDown, got {other:?}"),
            Err(_) => {} // connection torn down mid-drain: acceptable
        }
    }

    server.shutdown();
}
