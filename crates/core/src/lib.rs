//! # rskip — low-cost prediction-based fault protection
//!
//! A from-scratch Rust reproduction of *"Low-Cost Prediction-Based Fault
//! Protection Strategy"* (Park, Li, Zhang, Mahlke — CGO 2020): the RSkip
//! compiler, its prediction runtime, the SWIFT/SWIFT-R baselines, and a
//! complete evaluation substrate (IR, interpreter, timing model, SEU fault
//! injector, nine benchmark workloads, and a harness regenerating every
//! table and figure of the paper's evaluation).
//!
//! ## The idea
//!
//! Conventional software fault protection re-executes every computation
//! and compares (SWIFT-R triples it for recovery) — 2–3.5× the dynamic
//! instructions. RSkip instead *predicts* loop outputs with cheap
//! approximation models and fuzzy-validates: when the computed value and
//! the prediction agree within an *acceptable range*, the expensive
//! redundant re-computation is skipped. Mispredictions cost time, never
//! correctness; missed faults are bounded by the acceptable range.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ProtectionPlan`] | `rskip-core` | compiler↔runtime plan types, parallel utilities |
//! | [`ir`] | `rskip-ir` | typed register IR, builder, verifier, parser |
//! | [`analysis`] | `rskip-analysis` | CFG, dominators, loops, slices, candidates |
//! | [`passes`] | `rskip-passes` | SWIFT, SWIFT-R, outliner, RSkip transform |
//! | [`predict`] | `rskip-predict` | dynamic interpolation, approximate memoization |
//! | [`exec`] | `rskip-exec` | interpreter, pipeline timing, SEU injection |
//! | [`runtime`] | `rskip-runtime` | prediction runtime, signatures, QoS, training |
//! | [`workloads`] | `rskip-workloads` | the nine Table-1 benchmarks |
//! | [`harness`] | `rskip-harness` | per-figure experiment drivers |
//!
//! ## Quickstart
//!
//! ```
//! use rskip::exec::{Machine, NoopHooks};
//! use rskip::passes::{protect, Scheme};
//! use rskip::runtime::{PredictionRuntime, RuntimeConfig};
//! use rskip::workloads::{benchmark_by_name, SizeProfile};
//!
//! // 1. A workload (or build your own module with rskip::ir).
//! let bench = benchmark_by_name("conv1d").unwrap();
//! let module = bench.build(SizeProfile::Tiny);
//! let input = bench.gen_input(SizeProfile::Tiny, 2000);
//!
//! // 2. Compile with prediction-based protection.
//! let protected = protect(&module, Scheme::RSkip);
//!
//! // 3. Attach the prediction runtime and run.
//! let rt = PredictionRuntime::from_plan(&protected.plan(), RuntimeConfig::with_ar(0.2));
//! let mut machine = Machine::new(&protected.module, rt);
//! input.apply(&mut machine);
//! let outcome = machine.run("main", &[]);
//! assert!(outcome.returned());
//! let skip_rate = machine.hooks().total_skip_rate();
//! assert!(skip_rate > 0.0);
//! ```

#![deny(missing_docs)]

pub use rskip_analysis as analysis;
pub use rskip_exec as exec;
pub use rskip_harness as harness;
pub use rskip_ir as ir;
pub use rskip_passes as passes;
pub use rskip_predict as predict;
pub use rskip_runtime as runtime;
pub use rskip_workloads as workloads;

pub use rskip_core::{ProtectionPlan, RegionPlan};

use rskip_passes::Protected;
use rskip_runtime::RegionInit;

/// Converts a protected build's region specs into runtime init records —
/// the glue every deployment needs. Equivalent to `p.plan().regions`;
/// [`ProtectionPlan`] is the compiler↔runtime handoff type.
///
/// # Example
///
/// ```
/// use rskip::passes::{protect, Scheme};
/// use rskip::workloads::{benchmark_by_name, SizeProfile};
///
/// let bench = benchmark_by_name("sgemm").unwrap();
/// let p = protect(&bench.build(SizeProfile::Tiny), Scheme::RSkip);
/// let inits = rskip::region_inits(&p);
/// assert_eq!(inits.len(), p.regions.len());
/// ```
pub fn region_inits(p: &Protected) -> Vec<RegionInit> {
    p.plan().regions
}
