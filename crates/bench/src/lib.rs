//! Criterion benchmark support crate — see `benches/` for the per-figure
//! benchmark targets regenerating the paper's evaluation.
