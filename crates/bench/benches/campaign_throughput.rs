//! Campaign throughput: fault-injection trials/sec, per execution tier.
//!
//! Runs Fig.-9-style campaigns (Tiny, AR20, 120 SEU trials) through
//! [`rskip_harness::throughput`]: each benchmark is measured serially
//! under every [`ExecTier`] (`match`, `threaded-nofuse`, `threaded`),
//! with the tiers asserted trial-identical before any number is
//! published. The parallel worker-pool speedup and the persistent model
//! store's warm-start effectiveness are measured for the first benchmark
//! as before. Everything lands in `results/BENCH_campaign.json`:
//!
//! * `benchmarks[]` — per-tier secs/campaign, trials/sec and speedup vs
//!   `match`, plus the static superinstruction-fusion counts and the
//!   decoded-unit cache activity behind the threaded tier's numbers;
//! * `parallel` — serial vs worker-pool throughput (bounded by
//!   `hardware_threads`; on a single-core host they coincide);
//! * `model_store` — cold vs warm preparation through the store.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rskip_harness::build::{ArSetting, BenchSetup, EvalOptions};
use rskip_harness::campaign::{num_threads, Campaign};
use rskip_harness::throughput::{measure_tiers, threaded_speedup, BenchThroughput};
use rskip_harness::Store;
use rskip_workloads::SizeProfile;
use serde::Serialize;

/// The shape of `results/BENCH_campaign.json`.
#[derive(Serialize)]
struct CampaignJson {
    size: &'static str,
    scheme: &'static str,
    trials: u32,
    hardware_threads: usize,
    pool_threads: usize,
    benchmarks: Vec<BenchThroughput>,
    parallel: ParallelJson,
    model_store: StoreJson,
    note: &'static str,
}

#[derive(Serialize)]
struct ParallelJson {
    benchmark: &'static str,
    serial_secs: f64,
    serial_trials_per_sec: f64,
    parallel_secs: f64,
    parallel_trials_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct StoreJson {
    cold: String,
    warm: String,
    cold_prep_secs: f64,
    warm_prep_secs: f64,
}

const TRIALS: u32 = 120;
/// Timed repetitions per tier (interleaved best-of, after one warm-up).
const REPS: u32 = 5;
/// Campaign seed, shared by every benchmark's sweep.
const SEED0: u64 = 0xBEEF;
/// The benchmarks swept per tier: the paper's running example plus a
/// second, branch-heavier kernel so fusion is measured on more than one
/// instruction mix.
const BENCHES: [&str; 2] = ["conv1d", "kde"];

fn timed_campaign(c: &Campaign<'_>, setup: &BenchSetup, threads: usize, reps: u32) -> f64 {
    let make = || setup.runtime(ArSetting { percent: 20 });
    // One warm-up pass, then the timed repetitions.
    black_box(c.run_on(threads, make, |h| h.total_faults_recovered()));
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(c.run_on(threads, make, |h| h.total_faults_recovered()));
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let opts = EvalOptions::at_size(SizeProfile::Tiny);
    let ar = ArSetting { percent: 20 };

    // Preparation of the first benchmark goes through the persistent
    // model store so the JSON also captures warm-start effectiveness:
    // the first prepare misses (profiles + trains + saves), the second
    // is served from disk.
    let store_dir = std::env::temp_dir().join(format!("rskip-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = Store::open(&store_dir);
    let bench_of = |name: &str| rskip_workloads::benchmark_by_name(name).expect("registry");
    let cold = BenchSetup::prepare_with_store(bench_of(BENCHES[0]), &opts, Some(&store));
    let setup = BenchSetup::prepare_with_store(bench_of(BENCHES[0]), &opts, Some(&store));
    let store_cold = format!("{:?}", cold.prep.store);
    let store_warm = format!("{:?}", setup.prep.store);
    let cold_prep_secs = cold.prep.prep_nanos as f64 / 1e9;
    let warm_prep_secs = setup.prep.prep_nanos as f64 / 1e9;
    drop(cold);
    let _ = std::fs::remove_dir_all(&store_dir);

    // Per-tier serial throughput over every benchmark in the sweep. The
    // measurement asserts cross-tier trial equality internally.
    let mut reports = Vec::new();
    for name in BENCHES {
        let s = if name == BENCHES[0] {
            None
        } else {
            Some(BenchSetup::prepare(bench_of(name), &opts))
        };
        let s = s.as_ref().unwrap_or(&setup);
        let report = measure_tiers(s, ar, TRIALS, SEED0, REPS);
        print!("{}", report.render());
        assert!(
            threaded_speedup(&report) > 0.0,
            "threaded tier missing from report"
        );
        reports.push(report);
    }

    // Serial vs worker-pool on the first benchmark, as before.
    let input = setup.test_input();
    let golden = setup.bench.golden(opts.size, &input);
    let make = || setup.runtime(ar);
    let campaign = Campaign::new(
        &setup.rskip.module,
        &input,
        &golden,
        setup.bench.output_global(),
        make,
        SEED0,
        TRIALS,
    );

    let hardware = std::thread::available_parallelism().map_or(1, usize::from);
    let pool = num_threads();

    c.bench_function("campaign/serial", |b| {
        b.iter(|| black_box(campaign.run_on(1, make, |h| h.total_faults_recovered())))
    });
    c.bench_function("campaign/parallel", |b| {
        b.iter(|| black_box(campaign.run_on(pool, make, |h| h.total_faults_recovered())))
    });

    // Determinism sanity: the numbers we are about to publish come from
    // identical experiments.
    let serial_stats = campaign.run_on(1, make, |h| h.total_faults_recovered());
    let parallel_stats = campaign.run_on(pool, make, |h| h.total_faults_recovered());
    assert_eq!(
        serial_stats, parallel_stats,
        "campaign not schedule-invariant"
    );

    let serial_secs = timed_campaign(&campaign, &setup, 1, REPS);
    let parallel_secs = timed_campaign(&campaign, &setup, pool, REPS);

    let threaded = threaded_speedup(&reports[0]);
    let json = CampaignJson {
        size: "Tiny",
        scheme: "AR20",
        trials: TRIALS,
        hardware_threads: hardware,
        pool_threads: pool,
        benchmarks: reports,
        parallel: ParallelJson {
            benchmark: BENCHES[0],
            serial_secs,
            serial_trials_per_sec: f64::from(TRIALS) / serial_secs,
            parallel_secs,
            parallel_trials_per_sec: f64::from(TRIALS) / parallel_secs,
            speedup: serial_secs / parallel_secs,
        },
        model_store: StoreJson {
            cold: store_cold,
            warm: store_warm,
            cold_prep_secs,
            warm_prep_secs,
        },
        note: "tier speedups are within-run ratios (same machine state); \
               parallel speedup is bounded by hardware_threads; wall-clock \
               trials/sec varies with host load",
    };
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_campaign.json"
    );
    std::fs::write(
        path,
        serde_json::to_string_pretty(&json).expect("serialize") + "\n",
    )
    .expect("write results/BENCH_campaign.json");
    println!(
        "[campaign] {TRIALS} trials: threaded {threaded:.2}x vs match ({}), parallel({pool}) {:.2}x vs serial (hw threads: {hardware}) -> {path}",
        BENCHES[0],
        serial_secs / parallel_secs,
    );
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);
