//! Campaign throughput: fault-injection trials/sec, serial vs parallel.
//!
//! Runs a Fig.-9-style campaign (conv1d, Tiny, AR20, 120 SEU trials)
//! through [`rskip_harness::campaign::Campaign`] on one thread and on the
//! full worker pool, prints both as criterion benchmarks, and records the
//! measured trials/sec plus the speedup in
//! `results/BENCH_campaign.json`. The JSON also records the machine's
//! hardware thread count: on a single-core container the parallel run
//! cannot beat the serial one, and the file says so rather than
//! extrapolating.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rskip_harness::build::{ArSetting, BenchSetup, EvalOptions};
use rskip_harness::campaign::{num_threads, Campaign};
use rskip_harness::Store;
use rskip_workloads::SizeProfile;

const TRIALS: u32 = 120;

fn timed_campaign(c: &Campaign<'_>, setup: &BenchSetup, threads: usize, reps: u32) -> f64 {
    let make = || setup.runtime(ArSetting { percent: 20 });
    // One warm-up pass, then the timed repetitions.
    black_box(c.run_on(threads, make, |h| h.total_faults_recovered()));
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(c.run_on(threads, make, |h| h.total_faults_recovered()));
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let opts = EvalOptions::at_size(SizeProfile::Tiny);

    // Preparation goes through the persistent model store so the JSON
    // also captures warm-start effectiveness: the first prepare misses
    // (profiles + trains + saves), the second is served from disk.
    let store_dir = std::env::temp_dir().join(format!("rskip-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = Store::open(&store_dir);
    let bench_of = || rskip_workloads::benchmark_by_name("conv1d").expect("registry");
    let cold = BenchSetup::prepare_with_store(bench_of(), &opts, Some(&store));
    let setup = BenchSetup::prepare_with_store(bench_of(), &opts, Some(&store));
    let store_cold = format!("{:?}", cold.prep.store);
    let store_warm = format!("{:?}", setup.prep.store);
    let cold_prep_secs = cold.prep.prep_nanos as f64 / 1e9;
    let warm_prep_secs = setup.prep.prep_nanos as f64 / 1e9;
    drop(cold);
    let _ = std::fs::remove_dir_all(&store_dir);
    let input = setup.test_input();
    let golden = setup.bench.golden(opts.size, &input);
    let make = || setup.runtime(ArSetting { percent: 20 });
    let campaign = Campaign::new(
        &setup.rskip.module,
        &input,
        &golden,
        setup.bench.output_global(),
        make,
        0xBEEF,
        TRIALS,
    );

    let hardware = std::thread::available_parallelism().map_or(1, usize::from);
    let pool = num_threads();

    c.bench_function("campaign/serial", |b| {
        b.iter(|| black_box(campaign.run_on(1, make, |h| h.total_faults_recovered())))
    });
    c.bench_function("campaign/parallel", |b| {
        b.iter(|| black_box(campaign.run_on(pool, make, |h| h.total_faults_recovered())))
    });

    // Determinism sanity: the numbers we are about to publish come from
    // identical experiments.
    let serial_stats = campaign.run_on(1, make, |h| h.total_faults_recovered());
    let parallel_stats = campaign.run_on(pool, make, |h| h.total_faults_recovered());
    assert_eq!(
        serial_stats, parallel_stats,
        "campaign not schedule-invariant"
    );

    let serial_secs = timed_campaign(&campaign, &setup, 1, 3);
    let parallel_secs = timed_campaign(&campaign, &setup, pool, 3);
    let serial_tps = f64::from(TRIALS) / serial_secs;
    let parallel_tps = f64::from(TRIALS) / parallel_secs;
    let speedup = serial_secs / parallel_secs;

    let json = format!(
        "{{\n  \"benchmark\": \"conv1d\",\n  \"scheme\": \"AR20\",\n  \"size\": \"Tiny\",\n  \"trials\": {TRIALS},\n  \"hardware_threads\": {hardware},\n  \"pool_threads\": {pool},\n  \"serial_secs\": {serial_secs:.6},\n  \"serial_trials_per_sec\": {serial_tps:.1},\n  \"parallel_secs\": {parallel_secs:.6},\n  \"parallel_trials_per_sec\": {parallel_tps:.1},\n  \"speedup\": {speedup:.3},\n  \"model_store\": {{\n    \"cold\": \"{store_cold}\",\n    \"warm\": \"{store_warm}\",\n    \"cold_prep_secs\": {cold_prep_secs:.6},\n    \"warm_prep_secs\": {warm_prep_secs:.6}\n  }},\n  \"note\": \"speedup is bounded by hardware_threads; on a single-core host serial and parallel throughput coincide\"\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_campaign.json"
    );
    std::fs::write(path, &json).expect("write results/BENCH_campaign.json");
    println!(
        "[campaign] {TRIALS} trials: serial {serial_tps:.1}/s, parallel({pool}) {parallel_tps:.1}/s, speedup {speedup:.2}x (hw threads: {hardware}) -> {path}"
    );
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);
