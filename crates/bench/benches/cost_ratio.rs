//! §2 cost-ratio regeneration bench: prints the modeled
//! DI : memoization : re-computation ratio (paper: 1 : 1.84 : 4.18) and
//! benchmarks the simulated execution of each mechanism's work.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rskip_exec::run_simple;
use rskip_harness::build::EvalOptions;
use rskip_ir::Value;
use rskip_predict::{DiConfig, DynamicInterpolation};
use rskip_workloads::SizeProfile;

fn bench_cost_ratio(c: &mut Criterion) {
    let ratio = rskip_harness::cost_ratio::run(&EvalOptions::at_size(SizeProfile::Tiny));
    let (a, b_, c_) = ratio.normalized();
    println!(
        "[cost_ratio] DI : memo : re-compute = {a:.2} : {b_:.2} : {c_:.2} (paper 1 : 1.84 : 4.18)"
    );

    // Host-time microbenchmarks of the mechanisms.
    c.bench_function("cost/di_observe", |bch| {
        let mut di = DynamicInterpolation::new(DiConfig { tp: 0.5, ar: 0.2 });
        let mut x = 0.0f64;
        bch.iter(|| {
            x += 1.0;
            black_box(di.observe(x))
        })
    });

    let bench = rskip_workloads::benchmark_by_name("blackscholes").expect("registry");
    let module = bench.build(SizeProfile::Tiny);
    let args = [
        Value::F(30.0),
        Value::F(30.0),
        Value::F(0.05),
        Value::F(0.2),
        Value::F(0.5),
        Value::F(0.0),
    ];
    c.bench_function("cost/recompute_body", |bch| {
        bch.iter(|| black_box(run_simple(&module, "BlkSchlsEqEuroNoDiv", &args)))
    });
}

criterion_group!(benches, bench_cost_ratio);
criterion_main!(benches);
