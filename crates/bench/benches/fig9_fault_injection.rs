//! Fig. 9 regeneration bench: SEU injection runs. Prints a reduced
//! campaign's outcome distribution, then benchmarks the cost of one
//! injected run per scheme.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rskip_exec::{ExecConfig, FaultModel, InjectionPlan, Machine, NoopHooks};
use rskip_harness::build::{ArSetting, BenchSetup, EvalOptions};
use rskip_harness::fig9::SchemeLabel;
use rskip_workloads::SizeProfile;

fn bench_fig9(c: &mut Criterion) {
    let opts = EvalOptions {
        size: SizeProfile::Tiny,
        train_seeds: vec![1000, 1001],
        ..EvalOptions::at_size(SizeProfile::Tiny)
    };
    let setup = BenchSetup::prepare(
        rskip_workloads::benchmark_by_name("conv1d").expect("registry"),
        &opts,
    );
    let row = rskip_harness::fig9::run_bench(&setup, 60);
    for cell in &row.cells {
        println!(
            "[fig9] conv1d {}: protection rate {:.1}%",
            cell.scheme.label(),
            cell.counts.protection_rate() * 100.0
        );
    }
    let _ = SchemeLabel::all();

    let input = setup.test_input();
    let config = ExecConfig::default();
    let mut group = c.benchmark_group("fig9/one_injection");
    group.sample_size(10);
    group.bench_function("swift_r", |b| {
        b.iter_batched(
            || (),
            |()| {
                let mut m = Machine::with_config(&setup.swift_r.module, NoopHooks, config.clone());
                input.apply(&mut m);
                m.set_injection(InjectionPlan {
                    trigger: 500,
                    seed: 7,
                    anywhere: false,
                    model: FaultModel::SingleBitSeu,
                });
                m.run("main", &[])
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rskip_ar20", |b| {
        b.iter_batched(
            || setup.runtime(ArSetting { percent: 20 }),
            |rt| {
                let mut m = Machine::with_config(&setup.rskip.module, rt, config.clone());
                input.apply(&mut m);
                m.set_injection(InjectionPlan {
                    trigger: 500,
                    seed: 7,
                    anywhere: false,
                    model: FaultModel::SingleBitSeu,
                });
                m.run("main", &[])
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
