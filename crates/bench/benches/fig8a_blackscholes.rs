//! Fig. 8a regeneration bench: blackscholes with and without the
//! second-level predictor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rskip_exec::{ExecConfig, Machine, PipelineConfig};
use rskip_harness::build::{ArSetting, BenchSetup, EvalOptions};
use rskip_workloads::SizeProfile;

fn bench_fig8a(c: &mut Criterion) {
    let opts = EvalOptions {
        size: SizeProfile::Tiny,
        train_seeds: vec![1000, 1001, 1002],
        ..EvalOptions::at_size(SizeProfile::Tiny)
    };
    let fig = rskip_harness::fig8::run_8a(&opts);
    for p in &fig.points {
        println!(
            "[fig8a] AR{}: DI-only {:.2}x/{:.1}% vs DI+memo {:.2}x/{:.1}%",
            p.ar,
            p.di_time,
            p.di_skip * 100.0,
            p.full_time,
            p.full_skip * 100.0
        );
    }

    let setup = BenchSetup::prepare(
        rskip_workloads::benchmark_by_name("blackscholes").expect("registry"),
        &opts,
    );
    let input = setup.test_input();
    let config = ExecConfig {
        timing: Some(PipelineConfig::default()),
        ..ExecConfig::default()
    };
    let ar = ArSetting { percent: 20 };

    let mut group = c.benchmark_group("fig8a");
    group.sample_size(10);
    group.bench_function("di_only", |b| {
        b.iter_batched(
            || setup.runtime_di_only(ar),
            |rt| {
                let mut m = Machine::with_config(&setup.rskip.module, rt, config.clone());
                input.apply(&mut m);
                m.run("main", &[])
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("di_plus_memo", |b| {
        b.iter_batched(
            || setup.runtime(ar),
            |rt| {
                let mut m = Machine::with_config(&setup.rskip.module, rt, config.clone());
                input.apply(&mut m);
                m.run("main", &[])
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_fig8a);
criterion_main!(benches);
