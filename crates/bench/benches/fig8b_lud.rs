//! Fig. 8b regeneration bench: lud input-diversity sweep at AR20.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rskip_exec::{ExecConfig, Machine, PipelineConfig};
use rskip_harness::build::{ArSetting, BenchSetup, EvalOptions};
use rskip_workloads::SizeProfile;

fn bench_fig8b(c: &mut Criterion) {
    let opts = EvalOptions {
        size: SizeProfile::Tiny,
        train_seeds: vec![1000, 1001],
        ..EvalOptions::at_size(SizeProfile::Tiny)
    };
    let fig = rskip_harness::fig8::run_8b(&opts, 8);
    println!(
        "[fig8b] lud over {} inputs: avg RSkip {:.2}x, avg skip {:.1}%",
        fig.points.len(),
        fig.average_rskip_time(),
        fig.average_skip() * 100.0
    );

    let setup = BenchSetup::prepare(
        rskip_workloads::benchmark_by_name("lud").expect("registry"),
        &opts,
    );
    let config = ExecConfig {
        timing: Some(PipelineConfig::default()),
        ..ExecConfig::default()
    };
    let ar = ArSetting { percent: 20 };

    let mut group = c.benchmark_group("fig8b");
    group.sample_size(10);
    for input_id in [0u64, 7] {
        let input = setup.bench.gen_input(opts.size, 2000 + input_id);
        group.bench_function(format!("rskip_ar20_input{input_id}"), |b| {
            b.iter_batched(
                || setup.runtime(ar),
                |rt| {
                    let mut m = Machine::with_config(&setup.rskip.module, rt, config.clone());
                    input.apply(&mut m);
                    m.run("main", &[])
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8b);
criterion_main!(benches);
