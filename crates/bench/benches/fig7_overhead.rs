//! Fig. 7 regeneration bench: one timed simulated execution per scheme per
//! benchmark. Each criterion id is one bar of the figure; the *reported
//! metric* for the paper comparison is the simulated cycle/instruction
//! ratio, which the bench prints once per target.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rskip_exec::{ExecConfig, Machine, NoopHooks, PipelineConfig};
use rskip_harness::build::{ArSetting, BenchSetup, EvalOptions};
use rskip_workloads::SizeProfile;

fn options() -> EvalOptions {
    EvalOptions {
        size: SizeProfile::Tiny,
        train_seeds: vec![1000, 1001],
        ..EvalOptions::at_size(SizeProfile::Tiny)
    }
}

fn bench_fig7(c: &mut Criterion) {
    let opts = options();
    for name in ["conv1d", "sgemm", "blackscholes"] {
        let setup = BenchSetup::prepare(
            rskip_workloads::benchmark_by_name(name).expect("registry"),
            &opts,
        );
        let input = setup.test_input();

        // Print the figure row once (the regenerated data).
        let row = rskip_harness::fig7::run_bench(&setup);
        println!(
            "[fig7] {name}: SWIFT-R {:.2}x time, AR100 {:.2}x time / {:.1}% skip",
            row.swift_r.norm_time,
            row.rskip.last().unwrap().1.norm_time,
            row.rskip.last().unwrap().1.skip_rate * 100.0,
        );

        let mut group = c.benchmark_group(format!("fig7/{name}"));
        group.sample_size(10);
        let config = ExecConfig {
            timing: Some(PipelineConfig::default()),
            ..ExecConfig::default()
        };

        group.bench_function("unprotected", |b| {
            b.iter_batched(
                || (),
                |()| {
                    let mut m = Machine::with_config(&setup.unprotected, NoopHooks, config.clone());
                    input.apply(&mut m);
                    m.run("main", &[])
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function("swift_r", |b| {
            b.iter_batched(
                || (),
                |()| {
                    let mut m =
                        Machine::with_config(&setup.swift_r.module, NoopHooks, config.clone());
                    input.apply(&mut m);
                    m.run("main", &[])
                },
                BatchSize::SmallInput,
            )
        });
        for ar in [20u32, 100] {
            group.bench_function(format!("rskip_ar{ar}"), |b| {
                b.iter_batched(
                    || setup.runtime(ArSetting { percent: ar }),
                    |rt| {
                        let mut m = Machine::with_config(&setup.rskip.module, rt, config.clone());
                        input.apply(&mut m);
                        m.run("main", &[])
                    },
                    BatchSize::SmallInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
