//! Fig. 2 regeneration bench: the motivational predictability analysis
//! over sampled loop outputs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rskip_harness::build::{BenchSetup, EvalOptions};
use rskip_predict::trend::{top_k_coverage, trend_coverage};
use rskip_workloads::SizeProfile;

fn bench_fig2(c: &mut Criterion) {
    let opts = EvalOptions {
        size: SizeProfile::Tiny,
        train_seeds: vec![1000, 1001],
        ..EvalOptions::at_size(SizeProfile::Tiny)
    };
    let setup = BenchSetup::prepare(
        rskip_workloads::benchmark_by_name("conv1d").expect("registry"),
        &opts,
    );
    let row = rskip_harness::fig2::run_bench(&setup);
    println!(
        "[fig2] conv1d: trend {:.1}%, top-10 {:.1}% of dynamic instructions",
        row.trend * 100.0,
        row.top10 * 100.0
    );

    let outputs: Vec<f64> = setup
        .profiles
        .iter()
        .flat_map(|p| p.outputs.iter().copied())
        .collect();
    c.bench_function("fig2/trend_coverage", |b| {
        b.iter(|| black_box(trend_coverage(&outputs, 0.10, 1)))
    });
    c.bench_function("fig2/top10_coverage", |b| {
        b.iter(|| black_box(top_k_coverage(&outputs, 10, 0.05)))
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
