//! Microbenchmarks of the prediction models themselves: dynamic
//! interpolation observation throughput, memoization lookups, quantizer
//! construction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rskip_predict::{DiConfig, DynamicInterpolation, MemoConfig, MemoTrainer, Quantizer};

fn bench_interpolation(c: &mut Criterion) {
    let values: Vec<f64> = (0..4096)
        .map(|k| 100.0 + (k as f64 * 0.05).sin() * 10.0 + k as f64 * 0.01)
        .collect();
    c.bench_function("di_observe_4096_smooth", |b| {
        b.iter(|| {
            let mut di = DynamicInterpolation::new(DiConfig { tp: 0.5, ar: 0.2 });
            for &v in &values {
                black_box(di.observe(v));
            }
            black_box(di.flush())
        })
    });
    let noisy: Vec<f64> = (0..4096)
        .map(|k| if k % 3 == 0 { 1.0 } else { 100.0 + k as f64 })
        .collect();
    c.bench_function("di_observe_4096_noisy", |b| {
        b.iter(|| {
            let mut di = DynamicInterpolation::new(DiConfig { tp: 0.5, ar: 0.2 });
            for &v in &noisy {
                black_box(di.observe(v));
            }
            black_box(di.flush())
        })
    });
}

fn bench_memoization(c: &mut Criterion) {
    let mut trainer = MemoTrainer::new(6);
    for i in 0..4000u64 {
        let x = (i as f64 * 0.618).fract() * 40.0;
        let y = (i % 8) as f64;
        trainer.add_sample(&[x, y, 0.05, 0.2, 0.5, 0.0], x + y);
    }
    let cfg = MemoConfig {
        table_bits: 14,
        hist_bins: 128,
    };
    c.bench_function("memo_build_4000_samples", |b| {
        b.iter(|| black_box(trainer.build_with_bits(&[5, 3, 2, 2, 1, 1], &cfg)))
    });
    let mut memo = trainer.build_with_bits(&[5, 3, 2, 2, 1, 1], &cfg);
    c.bench_function("memo_predict", |b| {
        b.iter(|| black_box(memo.predict(&[20.0, 3.0, 0.05, 0.2, 0.5, 0.0])))
    });
}

fn bench_quantizer(c: &mut Criterion) {
    let samples: Vec<f64> = (0..10_000)
        .map(|i| ((i as f64 * 0.7548).fract()).powi(3) * 1000.0)
        .collect();
    c.bench_function("quantizer_histogram_build", |b| {
        b.iter(|| black_box(Quantizer::from_samples(&samples, 32, 256)))
    });
    let q = Quantizer::from_samples(&samples, 32, 256);
    c.bench_function("quantizer_level", |b| b.iter(|| black_box(q.level(123.4))));
}

criterion_group!(
    benches,
    bench_interpolation,
    bench_memoization,
    bench_quantizer
);
criterion_main!(benches);
