//! SWIFT-R: instruction triplication with majority-vote recovery
//! [Reis et al., "Automatic instruction-level software-only recovery"].
//!
//! Every computational instruction is executed three times into disjoint
//! register files (the original plus two shadows). At synchronization
//! points — store value and address, conditional branch conditions, call
//! arguments, return values — a two-instruction majority vote
//! (`eq` + `select`) recovers the correct value if any single copy was
//! corrupted:
//!
//! ```text
//! t = cmp.eq x, x1        ; does the original agree with shadow 1?
//! m = select t, x, x2     ; yes -> x is majority; no -> x2 breaks the tie
//! ```
//!
//! * If `x` is corrupted: `t = 0`, vote yields clean `x2`.
//! * If `x1` is corrupted: `t = 0`, vote yields clean `x2` (= `x`).
//! * If `x2` is corrupted: `t = 1`, vote yields clean `x`.
//!
//! Loads are triplicated too (the memory system is ECC-protected, so three
//! loads of the same address agree); stores execute once with voted
//! operands. Calls execute once with voted arguments — the callee rebuilds
//! redundancy from its (voted) parameters, making calls synchronization
//! points as in the paper. Intrinsic calls (the trusted runtime) are never
//! duplicated.

use rskip_ir::{CmpOp, Function, Inst, Module, Operand, Reg, Terminator, Ty};

/// Applies SWIFT-R to every function with `attrs.protect == true`.
pub fn apply_swift_r(module: &mut Module) {
    for f in &mut module.functions {
        if f.attrs.protect && !f.attrs.outlined {
            transform_function(f);
        }
    }
}

struct Ctx {
    /// First shadow register per original register.
    s1: Vec<Reg>,
    /// Second shadow register per original register.
    s2: Vec<Reg>,
    n_orig: usize,
}

impl Ctx {
    fn shadow_op(&self, op: Operand, which: u8) -> Operand {
        match op {
            Operand::Reg(r) if r.index() < self.n_orig => {
                let s = if which == 1 {
                    self.s1[r.index()]
                } else {
                    self.s2[r.index()]
                };
                Operand::Reg(s)
            }
            other => other,
        }
    }
}

fn transform_function(f: &mut Function) {
    let n_orig = f.regs.len();
    let mut s1 = Vec::with_capacity(n_orig);
    let mut s2 = Vec::with_capacity(n_orig);
    for i in 0..n_orig {
        let ty = f.regs[i].ty;
        s1.push(f.new_reg(ty));
        s2.push(f.new_reg(ty));
    }
    let ctx = Ctx { s1, s2, n_orig };

    for bi in 0..f.blocks.len() {
        let old = std::mem::take(&mut f.blocks[bi].insts);
        let mut out: Vec<Inst> = Vec::with_capacity(old.len() * 3);

        // Entry block: rebuild redundancy from the parameters.
        if bi == 0 {
            for p in 0..f.params.len() {
                let ty = f.regs[p].ty;
                out.push(Inst::Mov {
                    ty,
                    dst: ctx.s1[p],
                    src: Operand::Reg(Reg(p as u32)),
                });
                out.push(Inst::Mov {
                    ty,
                    dst: ctx.s2[p],
                    src: Operand::Reg(Reg(p as u32)),
                });
            }
        }

        for inst in old {
            match &inst {
                Inst::Store { ty, addr, value } => {
                    let a = vote(f, &ctx, &mut out, *addr, Ty::I64);
                    let v = vote(f, &ctx, &mut out, *value, *ty);
                    out.push(Inst::Store {
                        ty: *ty,
                        addr: a,
                        value: v,
                    });
                }
                Inst::Call { dst, callee, args } => {
                    let voted: Vec<Operand> = args
                        .iter()
                        .map(|&a| {
                            let ty = operand_ty(f, a);
                            vote(f, &ctx, &mut out, a, ty)
                        })
                        .collect();
                    out.push(Inst::Call {
                        dst: *dst,
                        callee: callee.clone(),
                        args: voted,
                    });
                    if let Some(d) = dst {
                        copy_to_shadows(f, &ctx, &mut out, *d);
                    }
                }
                Inst::IntrinsicCall { dst, intr, args } => {
                    let voted: Vec<Operand> = args
                        .iter()
                        .map(|&a| {
                            let ty = operand_ty(f, a);
                            vote(f, &ctx, &mut out, a, ty)
                        })
                        .collect();
                    out.push(Inst::IntrinsicCall {
                        dst: *dst,
                        intr: *intr,
                        args: voted,
                    });
                    if let Some(d) = dst {
                        copy_to_shadows(f, &ctx, &mut out, *d);
                    }
                }
                Inst::Load { ty, dst, addr } => {
                    // Loads execute once with a *voted* address (memory is
                    // ECC-protected, so re-loading adds nothing — SWIFT's
                    // "removing unnecessary memory redundancies"); the
                    // loaded value is copied to the shadows. This also
                    // prevents a corrupted shadow address from causing a
                    // wild access the vote would have caught.
                    let a = vote(f, &ctx, &mut out, *addr, Ty::I64);
                    out.push(Inst::Load {
                        ty: *ty,
                        dst: *dst,
                        addr: a,
                    });
                    copy_to_shadows(f, &ctx, &mut out, *dst);
                }
                pure => {
                    // Triplicate.
                    out.push(pure.clone());
                    for which in [1u8, 2u8] {
                        let mut clone = pure.clone();
                        clone.map_uses(|op| ctx.shadow_op(op, which));
                        if let Some(d) = clone.dst() {
                            debug_assert!(d.index() < ctx.n_orig);
                            let shadow = if which == 1 {
                                ctx.s1[d.index()]
                            } else {
                                ctx.s2[d.index()]
                            };
                            clone.set_dst(shadow);
                        }
                        out.push(clone);
                    }
                }
            }
        }

        // Synchronization points in the terminator.
        let term = f.blocks[bi].term.clone();
        let new_term = match term {
            Terminator::CondBr(c, t, fl) => {
                let voted = vote(f, &ctx, &mut out, c, Ty::I64);
                Terminator::CondBr(voted, t, fl)
            }
            Terminator::Ret(Some(v)) => {
                let ty = operand_ty(f, v);
                let voted = vote(f, &ctx, &mut out, v, ty);
                Terminator::Ret(Some(voted))
            }
            other => other,
        };
        f.blocks[bi].insts = out;
        f.blocks[bi].term = new_term;
    }
}

fn operand_ty(f: &Function, op: Operand) -> Ty {
    match op {
        Operand::Reg(r) => f.reg_ty(r),
        Operand::ImmI(_) | Operand::Global(_) => Ty::I64,
        Operand::ImmF(_) => Ty::F64,
    }
}

/// Emits the 2-instruction majority vote for `op`; constants vote as
/// themselves.
fn vote(f: &mut Function, ctx: &Ctx, out: &mut Vec<Inst>, op: Operand, ty: Ty) -> Operand {
    let Operand::Reg(r) = op else { return op };
    if r.index() >= ctx.n_orig {
        // Pass-created register (e.g. an earlier vote result): already a
        // majority value.
        return op;
    }
    let t = f.new_reg(Ty::I64);
    out.push(Inst::Cmp {
        ty,
        op: CmpOp::Eq,
        dst: t,
        lhs: op,
        rhs: Operand::Reg(ctx.s1[r.index()]),
    });
    let m = f.new_reg(ty);
    out.push(Inst::Select {
        ty,
        dst: m,
        cond: Operand::Reg(t),
        on_true: op,
        on_false: Operand::Reg(ctx.s2[r.index()]),
    });
    Operand::Reg(m)
}

/// After a non-duplicated definition (call or intrinsic result), seed the
/// shadows so downstream triplicated uses have consistent copies.
fn copy_to_shadows(f: &mut Function, ctx: &Ctx, out: &mut Vec<Inst>, d: Reg) {
    if d.index() >= ctx.n_orig {
        return;
    }
    let ty = f.reg_ty(d);
    out.push(Inst::Mov {
        ty,
        dst: ctx.s1[d.index()],
        src: Operand::Reg(d),
    });
    out.push(Inst::Mov {
        ty,
        dst: ctx.s2[d.index()],
        src: Operand::Reg(d),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_exec::{run_simple, Termination};
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Value, Verifier};

    fn sum_loop_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_init(
            "data",
            Ty::F64,
            (1..=8).map(|v| Value::F(v as f64)).collect(),
        );
        let out = mb.global_zeroed("out", Ty::F64, 1);
        let mut f = mb.function("main", vec![], Some(Ty::F64));
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let acc = f.def_reg(Ty::F64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.mov(acc, Operand::imm_f(0.0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(8));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::reg(i));
        let v = f.load(Ty::F64, Operand::reg(addr));
        f.bin_into(acc, BinOp::Add, Ty::F64, Operand::reg(acc), Operand::reg(v));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(header);
        f.switch_to(exit);
        f.store(Ty::F64, Operand::global(out), Operand::reg(acc));
        f.ret(Some(Operand::reg(acc)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn preserves_semantics() {
        let mut m = sum_loop_module();
        let clean = run_simple(&m, "main", &[]);
        apply_swift_r(&mut m);
        Verifier::new(&m).verify().unwrap();
        let protected = run_simple(&m, "main", &[]);
        assert_eq!(clean.termination, protected.termination);
        assert_eq!(
            protected.termination,
            Termination::Returned(Some(Value::F(36.0)))
        );
    }

    #[test]
    fn multiplies_dynamic_instructions_by_about_three() {
        let mut m = sum_loop_module();
        let clean = run_simple(&m, "main", &[]);
        apply_swift_r(&mut m);
        let protected = run_simple(&m, "main", &[]);
        let ratio = protected.counters.retired as f64 / clean.counters.retired as f64;
        assert!(
            (2.2..4.5).contains(&ratio),
            "dynamic instruction ratio = {ratio}"
        );
    }

    #[test]
    fn calls_vote_arguments_and_reseed_shadows() {
        let mut mb = ModuleBuilder::new("m");
        let mut sq = mb.function("square", vec![Ty::F64], Some(Ty::F64));
        let p = sq.param(0);
        let r = sq.bin(BinOp::Mul, Ty::F64, Operand::reg(p), Operand::reg(p));
        sq.ret(Some(Operand::reg(r)));
        sq.finish();
        let mut f = mb.function("main", vec![], Some(Ty::F64));
        let x = f.mov_new(Ty::F64, Operand::imm_f(3.0));
        let y = f
            .call("square", vec![Operand::reg(x)], Some(Ty::F64))
            .unwrap();
        let z = f.bin(BinOp::Add, Ty::F64, Operand::reg(y), Operand::imm_f(1.0));
        f.ret(Some(Operand::reg(z)));
        f.finish();
        let mut m = mb.finish();
        apply_swift_r(&mut m);
        Verifier::new(&m).verify().unwrap();
        let out = run_simple(&m, "main", &[]);
        assert_eq!(out.termination, Termination::Returned(Some(Value::F(10.0))));
    }

    #[test]
    fn unprotected_functions_are_left_alone() {
        let mut m = sum_loop_module();
        m.functions[0].attrs.protect = false;
        let before = m.functions[0].inst_count();
        apply_swift_r(&mut m);
        assert_eq!(m.functions[0].inst_count(), before);
    }

    /// The core recovery property: flip any single bit of any single live
    /// register at any point inside the loop — the output must stay
    /// correct, because every value is triplicated and voted before it
    /// reaches memory or control flow.
    #[test]
    fn recovers_from_every_single_register_fault() {
        use rskip_exec::{ExecConfig, FaultModel, InjectionPlan, Machine, NoopHooks};

        let mut m = sum_loop_module();
        // Mark the loop as a region so injection has scope.
        let f = m.function("main").unwrap();
        let cfg = rskip_analysis::Cfg::new(f);
        let dom = rskip_analysis::DomTree::new(f, &cfg);
        let forest = rskip_analysis::LoopForest::new(f, &cfg, &dom);
        let blocks = forest.loops()[0].blocks.clone();
        let region = m.new_region();
        crate::util::add_region_markers(&mut m, "main", &blocks, rskip_ir::BlockId(1), region);
        apply_swift_r(&mut m);
        Verifier::new(&m).verify().unwrap();

        let config = ExecConfig {
            step_limit: 100_000,
            ..ExecConfig::default()
        };
        let golden = {
            let mut machine = Machine::with_config(&m, NoopHooks, config.clone());
            machine.run("main", &[]);
            machine.read_global("out").to_vec()
        };

        let mut recovered = 0;
        let mut total = 0;
        for trigger in (0..400).step_by(13) {
            for seed in 0..4 {
                let mut machine = Machine::with_config(&m, NoopHooks, config.clone());
                machine.set_injection(InjectionPlan {
                    trigger,
                    seed,
                    anywhere: false,
                    model: FaultModel::SingleBitSeu,
                });
                let out = machine.run("main", &[]);
                if out.injection.is_none() {
                    continue;
                }
                total += 1;
                if out.returned() && machine.read_global("out") == golden.as_slice() {
                    recovered += 1;
                }
            }
        }
        assert!(total > 50, "injections actually fired: {total}");
        let rate = recovered as f64 / total as f64;
        // SWIFT-R is not perfect (window-of-vulnerability faults exist in
        // the paper too: 97.24%), but the vast majority must recover.
        assert!(rate > 0.9, "recovery rate = {rate} ({recovered}/{total})");
    }
}
