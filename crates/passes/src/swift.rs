//! SWIFT: instruction duplication with detection only
//! [Reis et al., "SWIFT: Software implemented fault tolerance", CGO'05].
//!
//! One shadow copy of every computation; at synchronization points the
//! original and shadow are compared, and a mismatch branches to a detector
//! block that fires the `detect` intrinsic (which traps — SWIFT claims no
//! recovery). Used as an ablation baseline; the paper's evaluation baseline
//! is SWIFT-R.

use rskip_ir::{BlockId, CmpOp, Function, Inst, Module, Operand, Reg, Terminator, Ty};

/// Applies SWIFT to every function with `attrs.protect == true`.
pub fn apply_swift(module: &mut Module) {
    for f in &mut module.functions {
        if f.attrs.protect && !f.attrs.outlined {
            transform_function(f);
        }
    }
}

fn operand_ty(f: &Function, op: Operand) -> Ty {
    match op {
        Operand::Reg(r) => f.reg_ty(r),
        Operand::ImmI(_) | Operand::Global(_) => Ty::I64,
        Operand::ImmF(_) => Ty::F64,
    }
}

fn transform_function(f: &mut Function) {
    let n_orig = f.regs.len();
    let shadow: Vec<Reg> = (0..n_orig).map(|i| f.new_reg(f.regs[i].ty)).collect();

    // The detector block: fires `detect` and (unreachably) returns a zero.
    let detect_bb = f.add_block("swift_detect");
    f.block_mut(detect_bb).insts.push(Inst::IntrinsicCall {
        dst: None,
        intr: rskip_ir::Intrinsic::Detect,
        args: vec![],
    });
    f.block_mut(detect_bb).term = Terminator::Ret(match f.ret {
        None => None,
        Some(Ty::I64) => Some(Operand::imm_i(0)),
        Some(Ty::F64) => Some(Operand::imm_f(0.0)),
    });

    let shadow_op = |op: Operand| -> Operand {
        match op {
            Operand::Reg(r) if r.index() < n_orig => Operand::Reg(shadow[r.index()]),
            other => other,
        }
    };

    let n_blocks = f.blocks.len() - 1; // exclude the detector
    for bi in 0..n_blocks {
        if BlockId(bi as u32) == detect_bb {
            continue;
        }
        let old_insts = std::mem::take(&mut f.blocks[bi].insts);
        let old_term = f.blocks[bi].term.clone();

        // Build the (possibly split) chain of blocks replacing block `bi`.
        let mut cur = BlockId(bi as u32);
        let mut out: Vec<Inst> = Vec::with_capacity(old_insts.len() * 2);

        // Entry block: seed shadows from parameters.
        if bi == 0 {
            for (p, &sh) in shadow.iter().enumerate().take(f.params.len()) {
                out.push(Inst::Mov {
                    ty: f.regs[p].ty,
                    dst: sh,
                    src: Operand::Reg(Reg(p as u32)),
                });
            }
        }

        // Emits a mismatch check on `op`, splitting the block.
        macro_rules! check {
            ($f:expr, $out:expr, $cur:expr, $op:expr, $ty:expr) => {{
                let op: Operand = $op;
                if let Operand::Reg(r) = op {
                    if r.index() < n_orig {
                        let t = $f.new_reg(Ty::I64);
                        $out.push(Inst::Cmp {
                            ty: $ty,
                            op: CmpOp::Ne,
                            dst: t,
                            lhs: op,
                            rhs: Operand::Reg(shadow[r.index()]),
                        });
                        let cont = $f.add_block(format!("{}.chk", $f.block($cur).name));
                        $f.block_mut($cur).insts = std::mem::take(&mut $out);
                        $f.block_mut($cur).term =
                            Terminator::CondBr(Operand::Reg(t), detect_bb, cont);
                        $cur = cont;
                    }
                }
            }};
        }

        for inst in old_insts {
            match &inst {
                Inst::Store { ty, addr, value } => {
                    check!(f, out, cur, *addr, Ty::I64);
                    check!(f, out, cur, *value, *ty);
                    out.push(inst);
                }
                Inst::Call { dst, callee, args } => {
                    for &a in args {
                        let ty = operand_ty(f, a);
                        check!(f, out, cur, a, ty);
                    }
                    out.push(Inst::Call {
                        dst: *dst,
                        callee: callee.clone(),
                        args: args.clone(),
                    });
                    if let Some(d) = dst {
                        if d.index() < n_orig {
                            out.push(Inst::Mov {
                                ty: f.reg_ty(*d),
                                dst: shadow[d.index()],
                                src: Operand::Reg(*d),
                            });
                        }
                    }
                }
                Inst::IntrinsicCall { dst, .. } => {
                    out.push(inst.clone());
                    if let Some(d) = dst {
                        if d.index() < n_orig {
                            out.push(Inst::Mov {
                                ty: f.reg_ty(*d),
                                dst: shadow[d.index()],
                                src: Operand::Reg(*d),
                            });
                        }
                    }
                }
                Inst::Load { ty, dst, addr } => {
                    // Validate the address, load once, copy the value to
                    // the shadow (SWIFT's ECC-based load handling).
                    check!(f, out, cur, *addr, Ty::I64);
                    out.push(inst.clone());
                    out.push(Inst::Mov {
                        ty: *ty,
                        dst: shadow[dst.index()],
                        src: Operand::Reg(*dst),
                    });
                    let _ = addr;
                }
                pure => {
                    out.push(pure.clone());
                    let mut clone = pure.clone();
                    clone.map_uses(shadow_op);
                    if let Some(d) = clone.dst() {
                        clone.set_dst(shadow[d.index()]);
                    }
                    out.push(clone);
                }
            }
        }

        // Terminator sync points.
        let new_term = match old_term {
            Terminator::CondBr(c, t, fl) => {
                check!(f, out, cur, c, Ty::I64);
                Terminator::CondBr(c, t, fl)
            }
            Terminator::Ret(Some(v)) => {
                let ty = operand_ty(f, v);
                check!(f, out, cur, v, ty);
                Terminator::Ret(Some(v))
            }
            other => other,
        };
        f.block_mut(cur).insts = out;
        f.block_mut(cur).term = new_term;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_exec::{
        run_simple, ExecConfig, FaultModel, InjectionPlan, Machine, NoopHooks, Termination, Trap,
    };
    use rskip_ir::{BinOp, ModuleBuilder, Value, Verifier};

    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let out = mb.global_zeroed("out", Ty::F64, 1);
        let mut f = mb.function("main", vec![], Some(Ty::F64));
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let acc = f.def_reg(Ty::F64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.mov(acc, Operand::imm_f(0.0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(20));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        let fi = f.un(rskip_ir::UnOp::IntToFloat, Ty::F64, Operand::reg(i));
        f.bin_into(
            acc,
            BinOp::Add,
            Ty::F64,
            Operand::reg(acc),
            Operand::reg(fi),
        );
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(header);
        f.switch_to(exit);
        f.store(Ty::F64, Operand::global(out), Operand::reg(acc));
        f.ret(Some(Operand::reg(acc)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn preserves_semantics() {
        let mut m = loop_module();
        let clean = run_simple(&m, "main", &[]);
        apply_swift(&mut m);
        Verifier::new(&m).verify().unwrap();
        let protected = run_simple(&m, "main", &[]);
        assert_eq!(clean.termination, protected.termination);
        assert_eq!(
            protected.termination,
            Termination::Returned(Some(Value::F(190.0)))
        );
    }

    #[test]
    fn roughly_doubles_dynamic_instructions() {
        let mut m = loop_module();
        let clean = run_simple(&m, "main", &[]);
        apply_swift(&mut m);
        let protected = run_simple(&m, "main", &[]);
        let ratio = protected.counters.retired as f64 / clean.counters.retired as f64;
        assert!((1.8..3.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn detects_injected_faults() {
        let mut m = loop_module();
        // Region-mark the loop so injection fires inside it.
        let f = m.function("main").unwrap();
        let cfg = rskip_analysis::Cfg::new(f);
        let dom = rskip_analysis::DomTree::new(f, &cfg);
        let forest = rskip_analysis::LoopForest::new(f, &cfg, &dom);
        let blocks = forest.loops()[0].blocks.clone();
        let region = m.new_region();
        crate::util::add_region_markers(&mut m, "main", &blocks, BlockId(1), region);
        apply_swift(&mut m);
        Verifier::new(&m).verify().unwrap();

        let config = ExecConfig {
            step_limit: 100_000,
            ..ExecConfig::default()
        };
        let mut detected = 0;
        let mut total = 0;
        for trigger in (0..300).step_by(7) {
            for seed in 0..3 {
                let mut machine = Machine::with_config(&m, NoopHooks, config.clone());
                machine.set_injection(InjectionPlan {
                    trigger,
                    seed,
                    anywhere: false,
                    model: FaultModel::SingleBitSeu,
                });
                let out = machine.run("main", &[]);
                if out.injection.is_none() {
                    continue;
                }
                total += 1;
                if out.termination == Termination::Trapped(Trap::FaultDetected) {
                    detected += 1;
                }
            }
        }
        assert!(total > 40, "fired {total}");
        // Many faults are masked (dead registers, shadows whose divergence
        // is overwritten); but a healthy share must reach the detector.
        assert!(detected > total / 10, "detected {detected}/{total}");
    }
}
