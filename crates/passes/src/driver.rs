//! The scheme driver: one entry point that turns an unprotected module
//! into a protected one (paper Fig. 3's compiler box).
//!
//! Every [`protect_with`] call ends with the `rskip-lint` post-pass hook:
//! the transformed module is re-verified, its protection coverage is
//! linted under the scheme's validation model, and memoized region bodies
//! are checked for purity. A transformation bug therefore fails the build
//! with a typed [`PassError`] instead of surfacing as a detection miss in
//! a fault campaign.

use rskip_analysis::{
    find_candidates, lint_memoized_body, lint_module, CandidateKind, CoverageDiag, CoverageReport,
    DetectConfig, ValidationModel,
};
use rskip_core::{ProtectionPlan, RegionPlan};
use rskip_ir::{Module, RegionId, Ty, VerifyError};

use crate::outline::outline_body;
use crate::rskip::{apply_rskip, BodySource};
use crate::swift::apply_swift;
use crate::swift_r::apply_swift_r;
use crate::util::add_region_markers;

/// The protection scheme to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No protection (the paper's UNSAFE bar); candidate loops still get
    /// region markers so fault injection covers the same code.
    Unsafe,
    /// SWIFT — duplication with detection only (ablation baseline).
    Swift,
    /// SWIFT-R — TMR duplication with majority-vote recovery (the paper's
    /// baseline).
    SwiftR,
    /// RSkip — prediction-based protection on candidate loops, SWIFT-R
    /// everywhere else.
    RSkip,
}

impl Scheme {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Unsafe => "UNSAFE",
            Scheme::Swift => "SWIFT",
            Scheme::SwiftR => "SWIFT-R",
            Scheme::RSkip => "RSkip",
        }
    }

    /// The validation discipline this scheme's coverage promise uses —
    /// `None` for [`Scheme::Unsafe`], which promises nothing and is
    /// therefore never linted.
    pub fn validation_model(self) -> Option<ValidationModel> {
        match self {
            Scheme::Unsafe => None,
            Scheme::Swift => Some(ValidationModel::Detect),
            Scheme::SwiftR | Scheme::RSkip => Some(ValidationModel::Vote),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything the runtime needs to know about one protected region.
#[derive(Clone, Debug)]
pub struct RegionSpec {
    /// The region id (indexes runtime state).
    pub region: RegionId,
    /// Function containing the region.
    pub function: String,
    /// The PP body function, when the scheme built one.
    pub body_fn: Option<String>,
    /// Body parameter types (argument replay).
    pub param_tys: Vec<Ty>,
    /// Whether approximate memoization may be deployed (Fig. 4a pattern
    /// with a pure callee).
    pub memoizable: bool,
    /// Per-loop acceptable-range override (the paper's pragma).
    pub acceptable_range: Option<f64>,
    /// Static cost estimate of one value computation (runtime heuristics).
    pub estimated_cost: f64,
}

impl RegionSpec {
    /// The runtime-facing slice of this spec as a shared [`RegionPlan`].
    pub fn plan(&self) -> RegionPlan {
        RegionPlan {
            region: self.region.0,
            has_body: self.body_fn.is_some(),
            memoizable: self.memoizable,
            acceptable_range: self.acceptable_range,
        }
    }
}

/// A protected build: the transformed module plus region metadata.
#[derive(Clone, Debug)]
pub struct Protected {
    /// The transformed module (verifies).
    pub module: Module,
    /// One spec per detected candidate loop.
    pub regions: Vec<RegionSpec>,
    /// The scheme that was applied.
    pub scheme: Scheme,
}

impl Protected {
    /// The [`ProtectionPlan`] to hand to the prediction runtime: one
    /// [`RegionPlan`] per region, carrying exactly the metadata the
    /// runtime consumes.
    pub fn plan(&self) -> ProtectionPlan {
        ProtectionPlan {
            regions: self.regions.iter().map(RegionSpec::plan).collect(),
            // Supervision is a deployment policy, not a compile-time
            // decision — callers attach one before handing the plan to
            // the runtime if they want online health monitoring.
            supervisor: None,
        }
    }
}

/// A failure raised by [`protect_with`]: either an invalid input module,
/// or — far more seriously — evidence that a protection pass produced a
/// module that fails verification or leaves unprotected windows.
#[derive(Clone, Debug)]
pub enum PassError {
    /// The input module does not verify; nothing was transformed.
    InputVerify(VerifyError),
    /// The transformed module fails IR verification — a pass bug.
    OutputVerify {
        /// The scheme whose output failed to verify.
        scheme: Scheme,
        /// The verifier's complaint.
        error: VerifyError,
    },
    /// The post-pass coverage lint found unprotected windows — the
    /// transformed module does not honour the scheme's fault-protection
    /// contract.
    Coverage {
        /// The scheme whose output failed the lint.
        scheme: Scheme,
        /// Every unprotected-window diagnostic, source-located.
        diags: Vec<CoverageDiag>,
    },
    /// A region was marked memoizable but its body function has side
    /// effects, so replaying or memoizing it would change program state.
    MemoizedImpure {
        /// The offending body function.
        body_fn: String,
        /// One diagnostic per impure instruction.
        diags: Vec<CoverageDiag>,
    },
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassError::InputVerify(e) => write!(f, "input module fails verification: {e}"),
            PassError::OutputVerify { scheme, error } => {
                write!(f, "{scheme} output fails verification: {error}")
            }
            PassError::Coverage { scheme, diags } => {
                writeln!(
                    f,
                    "{scheme} output fails the protection-coverage lint ({} diagnostics):",
                    diags.len()
                )?;
                for d in diags.iter().take(8) {
                    writeln!(f, "  {d}")?;
                }
                if diags.len() > 8 {
                    writeln!(f, "  ... and {} more", diags.len() - 8)?;
                }
                Ok(())
            }
            PassError::MemoizedImpure { body_fn, diags } => {
                writeln!(f, "memoizable body @{body_fn} is impure:")?;
                for d in diags {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PassError {}

/// Protects `module` under `scheme` with default detection thresholds.
///
/// # Panics
///
/// Panics on any [`PassError`] — use [`protect_with`] to handle failures
/// as values.
pub fn protect(module: &Module, scheme: Scheme) -> Protected {
    protect_with(module, scheme, &DetectConfig::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Protects `module` under `scheme` with explicit detection thresholds.
///
/// All schemes run candidate detection and add region markers around
/// detected loops, so the fault-injection scope of §7.2 ("faults are only
/// injected into the detected loops") is identical across schemes.
///
/// After transforming, the driver re-verifies the output and runs the
/// `rskip-lint` coverage and purity checks, so a buggy pass surfaces here
/// as a typed error rather than as silent missed detections downstream.
pub fn protect_with(
    module: &Module,
    scheme: Scheme,
    detect: &DetectConfig,
) -> Result<Protected, PassError> {
    let protected = transform(module, scheme, detect)?;
    lint_protected(&protected.module, scheme, &protected.regions)?;
    Ok(protected)
}

/// Runs the protection pipeline *without* the post-pass lint hook — the
/// transformation and output verification only. This is the entry point
/// for the `rskip-eval lint` front-end, which wants the coverage report
/// (diagnostics included) as data rather than as an error.
pub fn transform(
    module: &Module,
    scheme: Scheme,
    detect: &DetectConfig,
) -> Result<Protected, PassError> {
    rskip_ir::Verifier::new(module)
        .verify()
        .map_err(PassError::InputVerify)?;
    let mut out = module.clone();
    let candidates = find_candidates(module, detect);

    // Reject overlapping candidates (nested target loops): keep the more
    // expensive one.
    let mut kept: Vec<&rskip_analysis::CandidateLoop> = Vec::new();
    for c in &candidates {
        let overlaps = kept
            .iter()
            .any(|k| k.function == c.function && !k.target.blocks.is_disjoint(&c.target.blocks));
        if !overlaps {
            kept.push(c);
        }
    }

    let mut regions = Vec::new();
    match scheme {
        Scheme::Unsafe | Scheme::Swift | Scheme::SwiftR => {
            for cand in &kept {
                let region = out.new_region();
                add_region_markers(
                    &mut out,
                    &cand.function,
                    &cand.target.blocks,
                    cand.target.header,
                    region,
                );
                regions.push(RegionSpec {
                    region,
                    function: cand.function.clone(),
                    body_fn: None,
                    param_tys: Vec::new(),
                    memoizable: false,
                    acceptable_range: cand.acceptable_range,
                    estimated_cost: cand.estimated_cost,
                });
            }
        }
        Scheme::RSkip => {
            // Phase B: outline on the pristine module (block/loop indices
            // recorded in the candidates stay valid).
            let mut prepared: Vec<(usize, BodySource)> = Vec::new();
            for (i, cand) in kept.iter().enumerate() {
                match &cand.kind {
                    CandidateKind::Call { callee, .. } => {
                        prepared.push((
                            i,
                            BodySource::Callee {
                                original: callee.clone(),
                            },
                        ));
                    }
                    CandidateKind::SliceLoop => match outline_body(module, cand, "tmp") {
                        Ok(ob) => prepared.push((i, BodySource::Outlined(ob))),
                        Err(_) => { /* falls back below */ }
                    },
                }
            }

            // Phase C: transform.
            let mut transformed = vec![false; kept.len()];
            for (i, source) in prepared {
                let cand = kept[i];
                let region = out.new_region();
                if let Ok((body_fn, param_tys)) = apply_rskip(&mut out, cand, region, source) {
                    transformed[i] = true;
                    let memoizable = matches!(
                        &cand.kind,
                        CandidateKind::Call {
                            memoizable: true,
                            ..
                        }
                    );
                    regions.push(RegionSpec {
                        region,
                        function: cand.function.clone(),
                        body_fn: Some(body_fn),
                        param_tys,
                        memoizable,
                        acceptable_range: cand.acceptable_range,
                        estimated_cost: cand.estimated_cost,
                    });
                }
            }
            // Fallback: conventional protection with markers.
            for (i, cand) in kept.iter().enumerate() {
                if transformed[i] {
                    continue;
                }
                let region = out.new_region();
                add_region_markers(
                    &mut out,
                    &cand.function,
                    &cand.target.blocks,
                    cand.target.header,
                    region,
                );
                regions.push(RegionSpec {
                    region,
                    function: cand.function.clone(),
                    body_fn: None,
                    param_tys: Vec::new(),
                    memoizable: false,
                    acceptable_range: cand.acceptable_range,
                    estimated_cost: cand.estimated_cost,
                });
            }
        }
    }

    match scheme {
        Scheme::Unsafe => {}
        Scheme::Swift => apply_swift(&mut out),
        Scheme::SwiftR | Scheme::RSkip => apply_swift_r(&mut out),
    }
    // Drop the PP clones' bypassed subloop skeletons and any other dead
    // blocks the transforms stranded.
    crate::cleanup::remove_unreachable_blocks(&mut out);

    rskip_ir::Verifier::new(&out)
        .verify()
        .map_err(|error| PassError::OutputVerify { scheme, error })?;
    Ok(Protected {
        module: out,
        regions,
        scheme,
    })
}

/// The `rskip-lint` post-pass hook: coverage-lint the transformed module
/// under the scheme's validation model and purity-check every memoized
/// region body. Returns the coverage report so callers (the harness's
/// `lint` subcommand) can surface per-function statistics.
pub fn lint_protected(
    module: &Module,
    scheme: Scheme,
    regions: &[RegionSpec],
) -> Result<Option<CoverageReport>, PassError> {
    // Unprotected builds have nothing to promise.
    let Some(model) = scheme.validation_model() else {
        return Ok(None);
    };
    let report = lint_module(module, model);
    if !report.is_clean() {
        return Err(PassError::Coverage {
            scheme,
            diags: report.diags.clone(),
        });
    }
    for spec in regions {
        let Some(body_fn) = spec.body_fn.as_deref() else {
            continue;
        };
        if !spec.memoizable {
            continue;
        }
        let diags = lint_memoized_body(module, body_fn);
        if !diags.is_empty() {
            return Err(PassError::MemoizedImpure {
                body_fn: body_fn.to_string(),
                diags,
            });
        }
    }
    Ok(Some(report))
}
