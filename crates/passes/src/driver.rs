//! The scheme driver: one entry point that turns an unprotected module
//! into a protected one (paper Fig. 3's compiler box).

use rskip_analysis::{find_candidates, CandidateKind, DetectConfig};
use rskip_core::{ProtectionPlan, RegionPlan};
use rskip_ir::{Module, RegionId, Ty};

use crate::outline::outline_body;
use crate::rskip::{apply_rskip, BodySource};
use crate::swift::apply_swift;
use crate::swift_r::apply_swift_r;
use crate::util::add_region_markers;

/// The protection scheme to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No protection (the paper's UNSAFE bar); candidate loops still get
    /// region markers so fault injection covers the same code.
    Unsafe,
    /// SWIFT — duplication with detection only (ablation baseline).
    Swift,
    /// SWIFT-R — TMR duplication with majority-vote recovery (the paper's
    /// baseline).
    SwiftR,
    /// RSkip — prediction-based protection on candidate loops, SWIFT-R
    /// everywhere else.
    RSkip,
}

impl Scheme {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Unsafe => "UNSAFE",
            Scheme::Swift => "SWIFT",
            Scheme::SwiftR => "SWIFT-R",
            Scheme::RSkip => "RSkip",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything the runtime needs to know about one protected region.
#[derive(Clone, Debug)]
pub struct RegionSpec {
    /// The region id (indexes runtime state).
    pub region: RegionId,
    /// Function containing the region.
    pub function: String,
    /// The PP body function, when the scheme built one.
    pub body_fn: Option<String>,
    /// Body parameter types (argument replay).
    pub param_tys: Vec<Ty>,
    /// Whether approximate memoization may be deployed (Fig. 4a pattern
    /// with a pure callee).
    pub memoizable: bool,
    /// Per-loop acceptable-range override (the paper's pragma).
    pub acceptable_range: Option<f64>,
    /// Static cost estimate of one value computation (runtime heuristics).
    pub estimated_cost: f64,
}

impl RegionSpec {
    /// The runtime-facing slice of this spec as a shared [`RegionPlan`].
    pub fn plan(&self) -> RegionPlan {
        RegionPlan {
            region: self.region.0,
            has_body: self.body_fn.is_some(),
            memoizable: self.memoizable,
            acceptable_range: self.acceptable_range,
        }
    }
}

/// A protected build: the transformed module plus region metadata.
#[derive(Clone, Debug)]
pub struct Protected {
    /// The transformed module (verifies).
    pub module: Module,
    /// One spec per detected candidate loop.
    pub regions: Vec<RegionSpec>,
    /// The scheme that was applied.
    pub scheme: Scheme,
}

impl Protected {
    /// The [`ProtectionPlan`] to hand to the prediction runtime: one
    /// [`RegionPlan`] per region, carrying exactly the metadata the
    /// runtime consumes.
    pub fn plan(&self) -> ProtectionPlan {
        ProtectionPlan {
            regions: self.regions.iter().map(RegionSpec::plan).collect(),
        }
    }
}

/// Protects `module` under `scheme` with default detection thresholds.
pub fn protect(module: &Module, scheme: Scheme) -> Protected {
    protect_with(module, scheme, &DetectConfig::default())
}

/// Protects `module` under `scheme` with explicit detection thresholds.
///
/// All schemes run candidate detection and add region markers around
/// detected loops, so the fault-injection scope of §7.2 ("faults are only
/// injected into the detected loops") is identical across schemes.
///
/// # Panics
///
/// Panics if the input module does not verify — callers are expected to
/// hand over verified modules.
pub fn protect_with(module: &Module, scheme: Scheme, detect: &DetectConfig) -> Protected {
    rskip_ir::Verifier::new(module)
        .verify()
        .expect("input module must verify");
    let mut out = module.clone();
    let candidates = find_candidates(module, detect);

    // Reject overlapping candidates (nested target loops): keep the more
    // expensive one.
    let mut kept: Vec<&rskip_analysis::CandidateLoop> = Vec::new();
    for c in &candidates {
        let overlaps = kept
            .iter()
            .any(|k| k.function == c.function && !k.target.blocks.is_disjoint(&c.target.blocks));
        if !overlaps {
            kept.push(c);
        }
    }

    let mut regions = Vec::new();
    match scheme {
        Scheme::Unsafe | Scheme::Swift | Scheme::SwiftR => {
            for cand in &kept {
                let region = out.new_region();
                add_region_markers(
                    &mut out,
                    &cand.function,
                    &cand.target.blocks,
                    cand.target.header,
                    region,
                );
                regions.push(RegionSpec {
                    region,
                    function: cand.function.clone(),
                    body_fn: None,
                    param_tys: Vec::new(),
                    memoizable: false,
                    acceptable_range: cand.acceptable_range,
                    estimated_cost: cand.estimated_cost,
                });
            }
        }
        Scheme::RSkip => {
            // Phase B: outline on the pristine module (block/loop indices
            // recorded in the candidates stay valid).
            let mut prepared: Vec<(usize, BodySource)> = Vec::new();
            for (i, cand) in kept.iter().enumerate() {
                match &cand.kind {
                    CandidateKind::Call { callee, .. } => {
                        prepared.push((
                            i,
                            BodySource::Callee {
                                original: callee.clone(),
                            },
                        ));
                    }
                    CandidateKind::SliceLoop => match outline_body(module, cand, "tmp") {
                        Ok(ob) => prepared.push((i, BodySource::Outlined(ob))),
                        Err(_) => { /* falls back below */ }
                    },
                }
            }

            // Phase C: transform.
            let mut transformed = vec![false; kept.len()];
            for (i, source) in prepared {
                let cand = kept[i];
                let region = out.new_region();
                if let Ok((body_fn, param_tys)) = apply_rskip(&mut out, cand, region, source) {
                    transformed[i] = true;
                    let memoizable = matches!(
                        &cand.kind,
                        CandidateKind::Call {
                            memoizable: true,
                            ..
                        }
                    );
                    regions.push(RegionSpec {
                        region,
                        function: cand.function.clone(),
                        body_fn: Some(body_fn),
                        param_tys,
                        memoizable,
                        acceptable_range: cand.acceptable_range,
                        estimated_cost: cand.estimated_cost,
                    });
                }
            }
            // Fallback: conventional protection with markers.
            for (i, cand) in kept.iter().enumerate() {
                if transformed[i] {
                    continue;
                }
                let region = out.new_region();
                add_region_markers(
                    &mut out,
                    &cand.function,
                    &cand.target.blocks,
                    cand.target.header,
                    region,
                );
                regions.push(RegionSpec {
                    region,
                    function: cand.function.clone(),
                    body_fn: None,
                    param_tys: Vec::new(),
                    memoizable: false,
                    acceptable_range: cand.acceptable_range,
                    estimated_cost: cand.estimated_cost,
                });
            }
        }
    }

    match scheme {
        Scheme::Unsafe => {}
        Scheme::Swift => apply_swift(&mut out),
        Scheme::SwiftR | Scheme::RSkip => apply_swift_r(&mut out),
    }
    // Drop the PP clones' bypassed subloop skeletons and any other dead
    // blocks the transforms stranded.
    crate::cleanup::remove_unreachable_blocks(&mut out);

    debug_assert!(
        rskip_ir::Verifier::new(&out).verify().is_ok(),
        "protected module fails verification: {:?}",
        rskip_ir::Verifier::new(&out).verify()
    );
    Protected {
        module: out,
        regions,
        scheme,
    }
}
