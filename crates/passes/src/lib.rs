//! # rskip-passes — the protection transformations
//!
//! The compiler half of RSkip: given an unprotected module, produce a
//! resilient one under a chosen protection [`Scheme`]:
//!
//! * [`Scheme::Unsafe`] — no protection; candidate loops still get region
//!   markers so fault-injection scope matches across schemes (§7.2 injects
//!   "only into the detected loops").
//! * [`Scheme::Swift`] — SWIFT [Reis et al., CGO'05]: one shadow copy of
//!   every computation, compare at synchronization points, abort on
//!   mismatch (detection only).
//! * [`Scheme::SwiftR`] — SWIFT-R [Reis et al.]: TMR-style triplication
//!   with 2-instruction majority votes at synchronization points
//!   (detection *and* recovery) — the paper's baseline.
//! * [`Scheme::RSkip`] — the paper's contribution: candidate loops are
//!   dual-versioned into a conventionally protected copy (CP) and a
//!   prediction-protected copy (PP). The PP copy runs the expensive value
//!   computation once (outlined into a *body* function), drives the
//!   prediction runtime through intrinsics, and re-executes the body only
//!   for elements that failed fuzzy validation, with re-computation-based
//!   majority recovery on true mismatches. Everything else — the loop
//!   shell, addresses, induction variables, control flow, the rest of the
//!   program — still gets SWIFT-R protection ("they are protected with
//!   traditional instruction duplication", §2).
//!
//! Synchronization points follow the paper (§2): stores (value and
//! address), conditional branches, function call arguments and return
//! values.

#![deny(missing_docs)]

mod cleanup;
mod driver;
mod outline;
mod rskip;
mod swift;
mod swift_r;
mod util;

pub use cleanup::remove_unreachable_blocks;
pub use driver::{
    lint_protected, protect, protect_with, transform, PassError, Protected, RegionSpec, Scheme,
};
pub use outline::{outline_body, OutlineError, OutlinedBody};
pub use rskip::{apply_rskip, BodySource, RSkipError};
pub use rskip_core::{ProtectionPlan, RegionPlan};
pub use swift::apply_swift;
pub use swift_r::apply_swift_r;
pub use util::{add_region_markers, clone_loop_blocks};
