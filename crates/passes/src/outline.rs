//! Loop-body outlining: extract the backward slice of a protected store
//! into a fresh, re-executable *body function*.
//!
//! The PP loop version calls the body once per iteration (the *original
//! copy* of Fig. 1b); the prediction runtime records the call arguments so
//! that elements failing fuzzy validation can re-execute the body with
//! identical inputs (the *redundant copy*, materialized lazily).

use std::collections::{BTreeMap, BTreeSet};

use rskip_analysis::{CandidateLoop, Cfg, DomTree, LoopForest};
use rskip_ir::{Block, BlockId, FuncAttrs, Function, Inst, Module, Operand, Reg, Terminator, Ty};

/// Why outlining failed; such candidates fall back to conventional
/// protection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutlineError {
    /// The contracted control-flow chain between slice blocks passed
    /// through a conditional branch or left the loop.
    NonLinearChain(BlockId),
    /// A live-in of the body is defined by slice instructions — the value
    /// computation is loop-carried and cannot be re-executed per element.
    LoopCarried(Reg),
    /// The stored value is not an `f64` register.
    BadValue,
}

impl std::fmt::Display for OutlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutlineError::NonLinearChain(b) => {
                write!(f, "slice control flow is not a linear chain at {b}")
            }
            OutlineError::LoopCarried(r) => {
                write!(f, "slice value is loop-carried through {r}")
            }
            OutlineError::BadValue => write!(f, "stored value is not an f64 register"),
        }
    }
}

impl std::error::Error for OutlineError {}

/// The result of outlining.
#[derive(Clone, Debug)]
pub struct OutlinedBody {
    /// The new body function (append it to the module).
    pub func: Function,
    /// The *original* registers (in the enclosing function) whose values
    /// the shell must pass, in parameter order.
    pub param_regs: Vec<Reg>,
    /// Parameter types, parallel to `param_regs`.
    pub param_tys: Vec<Ty>,
    /// Block sets (original ids) of the subloops absorbed into the body;
    /// the PP shell must bypass them entirely.
    pub subloops: Vec<BTreeSet<BlockId>>,
}

/// A virtual block of the clone unit, before function construction.
struct VBlock {
    /// Block in the original function.
    orig: BlockId,
    /// Instructions to clone: indices into the original block.
    insts: Vec<usize>,
    /// Whether the original terminator is kept (subloop internal control
    /// flow) or replaced by a fall-through / return.
    keep_term: bool,
}

/// Outlines the value computation of `cand` into a function named
/// `body_name`.
///
/// # Errors
///
/// See [`OutlineError`].
pub fn outline_body(
    module: &Module,
    cand: &CandidateLoop,
    body_name: &str,
) -> Result<OutlinedBody, OutlineError> {
    let f = module
        .function(&cand.function)
        .expect("candidate function exists");
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let forest = LoopForest::new(f, &cfg, &dom);

    let value_reg = match f.block(cand.store_block).insts[cand.store_idx] {
        Inst::Store {
            ty: Ty::F64,
            value: Operand::Reg(r),
            ..
        } => r,
        _ => return Err(OutlineError::BadValue),
    };

    // --- Assemble the clone unit. ---
    let subloop_blocks: BTreeSet<BlockId> = cand
        .slice
        .subloops
        .iter()
        .flat_map(|&i| forest.loops()[i].blocks.iter().copied())
        .collect();
    let mut direct: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();
    for &(b, idx) in &cand.slice.insts {
        if !subloop_blocks.contains(&b) {
            direct.entry(b).or_default().push(idx);
        }
    }
    direct.entry(cand.store_block).or_default();

    let mut involved: Vec<BlockId> = subloop_blocks
        .iter()
        .copied()
        .chain(direct.keys().copied())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    involved.sort_by_key(|b| cfg.rpo_index(*b).unwrap_or(usize::MAX));

    let vblocks: Vec<VBlock> = involved
        .iter()
        .map(|&b| {
            if subloop_blocks.contains(&b) {
                VBlock {
                    orig: b,
                    insts: (0..f.block(b).insts.len()).collect(),
                    keep_term: true,
                }
            } else {
                let mut idxs = direct.get(&b).cloned().unwrap_or_default();
                idxs.sort_unstable();
                VBlock {
                    orig: b,
                    insts: idxs,
                    keep_term: false,
                }
            }
        })
        .collect();
    let vindex: BTreeMap<BlockId, usize> =
        involved.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let terminal_v = vindex[&cand.store_block];

    // Contract a CFG edge target through non-involved loop blocks.
    let contract = |mut t: BlockId| -> Result<usize, OutlineError> {
        let mut hops = 0;
        loop {
            if let Some(&v) = vindex.get(&t) {
                return Ok(v);
            }
            if !cand.target.blocks.contains(&t) || hops > f.blocks.len() {
                return Err(OutlineError::NonLinearChain(t));
            }
            match f.block(t).term {
                Terminator::Br(next) => t = next,
                _ => return Err(OutlineError::NonLinearChain(t)),
            }
            hops += 1;
        }
    };

    // Successors of each vblock in vblock-index space.
    let mut vsuccs: Vec<Vec<usize>> = Vec::with_capacity(vblocks.len());
    for (vi, vb) in vblocks.iter().enumerate() {
        if vi == terminal_v && !vb.keep_term {
            vsuccs.push(vec![]);
            continue;
        }
        if vb.keep_term {
            let mut ss = Vec::new();
            for s in f.block(vb.orig).term.successors() {
                ss.push(contract(s)?);
            }
            vsuccs.push(ss);
        } else {
            // Linear fall-through: contract through the original chain.
            match f.block(vb.orig).term {
                Terminator::Br(next) => vsuccs.push(vec![contract(next)?]),
                Terminator::CondBr(..) | Terminator::Ret(_) => {
                    // A direct block ending in a condbr that is not a
                    // subloop block: only acceptable if it *is* the
                    // terminal (handled above).
                    return Err(OutlineError::NonLinearChain(vb.orig));
                }
            }
        }
    }

    // --- Live-in analysis over the clone unit. ---
    let mut gens: Vec<BTreeSet<Reg>> = Vec::new();
    let mut kills: Vec<BTreeSet<Reg>> = Vec::new();
    for (vi, vb) in vblocks.iter().enumerate() {
        let mut gen = BTreeSet::new();
        let mut kill = BTreeSet::new();
        for &idx in &vb.insts {
            let inst = &f.block(vb.orig).insts[idx];
            for r in inst.used_regs() {
                if !kill.contains(&r) {
                    gen.insert(r);
                }
            }
            if let Some(d) = inst.dst() {
                kill.insert(d);
            }
        }
        if vb.keep_term {
            if let Some(Operand::Reg(r)) = f.block(vb.orig).term.used_operand() {
                if !kill.contains(&r) {
                    gen.insert(r);
                }
            }
        }
        if vi == terminal_v && !kill.contains(&value_reg) {
            gen.insert(value_reg);
        }
        gens.push(gen);
        kills.push(kill);
    }
    let mut live_in: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); vblocks.len()];
    let mut changed = true;
    while changed {
        changed = false;
        for vi in (0..vblocks.len()).rev() {
            let mut out: BTreeSet<Reg> = BTreeSet::new();
            for &s in &vsuccs[vi] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn = gens[vi].clone();
            for r in out.difference(&kills[vi]) {
                inn.insert(*r);
            }
            if inn != live_in[vi] {
                live_in[vi] = inn;
                changed = true;
            }
        }
    }

    // The entry vblock is the RPO-first involved block.
    let entry_live = &live_in[0];
    // Loop-carried slice values cannot be re-executed.
    for r in entry_live {
        if cand.slice.defined_regs.contains(r) && Some(*r) != cand.slice.aliased_dst {
            return Err(OutlineError::LoopCarried(*r));
        }
    }

    // --- Parameter ordering: IV first, then slice read order. ---
    let mut param_regs: Vec<Reg> = Vec::new();
    if entry_live.contains(&cand.iv.reg) {
        param_regs.push(cand.iv.reg);
    }
    for &r in &cand.slice.read_regs {
        if entry_live.contains(&r) && !param_regs.contains(&r) {
            param_regs.push(r);
        }
    }
    for &r in entry_live {
        if !param_regs.contains(&r) {
            param_regs.push(r);
        }
    }
    let param_tys: Vec<Ty> = param_regs.iter().map(|&r| f.reg_ty(r)).collect();

    // --- Build the body function. ---
    let mut body = Function::new(body_name, param_tys.clone(), Some(Ty::F64));
    body.attrs = FuncAttrs {
        outlined: true,
        protect: false,
    };
    body.blocks.clear();
    for vb in &vblocks {
        body.blocks.push(Block::new(f.block(vb.orig).name.clone()));
    }
    // Name parameters after their original registers for readability.
    for (i, &r) in param_regs.iter().enumerate() {
        body.regs[i].name = Some(
            f.regs[r.index()]
                .name
                .clone()
                .unwrap_or_else(|| format!("r{}", r.0)),
        );
    }

    let mut reg_map: BTreeMap<Reg, Reg> = param_regs
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, Reg(i as u32)))
        .collect();
    let mut map_reg = |r: Reg, body: &mut Function| -> Reg {
        if let Some(&m) = reg_map.get(&r) {
            return m;
        }
        let m = body.new_reg(f.reg_ty(r));
        reg_map.insert(r, m);
        m
    };

    for (vi, vb) in vblocks.iter().enumerate() {
        let mut insts = Vec::with_capacity(vb.insts.len());
        for &idx in &vb.insts {
            let mut inst = f.block(vb.orig).insts[idx].clone();
            inst.map_uses(|op| match op {
                Operand::Reg(r) => Operand::Reg(map_reg(r, &mut body)),
                other => other,
            });
            if let Some(d) = inst.dst() {
                inst.set_dst(map_reg(d, &mut body));
            }
            insts.push(inst);
        }
        let term = if vi == terminal_v && !vb.keep_term {
            Terminator::Ret(Some(Operand::Reg(map_reg(value_reg, &mut body))))
        } else if vb.keep_term {
            let mut t = f.block(vb.orig).term.clone();
            // Remap the condition register and the targets.
            if let Terminator::CondBr(Operand::Reg(c), _, _) = &t {
                let mapped = map_reg(*c, &mut body);
                if let Terminator::CondBr(cond, _, _) = &mut t {
                    *cond = Operand::Reg(mapped);
                }
            }
            let mut err = None;
            t.map_successors(|s| match contract(s) {
                Ok(v) => BlockId(v as u32),
                Err(e) => {
                    err = Some(e);
                    BlockId(0)
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            t
        } else {
            Terminator::Br(BlockId(vsuccs[vi][0] as u32))
        };
        body.blocks[vi].insts = insts;
        body.blocks[vi].term = term;
    }

    let subloops = cand
        .slice
        .subloops
        .iter()
        .map(|&i| forest.loops()[i].blocks.clone())
        .collect();
    Ok(OutlinedBody {
        func: body,
        param_regs,
        param_tys,
        subloops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_analysis::{find_candidates, DetectConfig};
    use rskip_exec::{run_simple, Termination};
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Value, Verifier};

    /// for i in 0..16 { acc = 0; for k in 0..32 { acc += g[k] * w[k] };
    /// out[i] = acc * 0.5 }  — i is live-in only through nothing (the
    /// reduction ignores i), so the body has no IV parameter.
    fn reduction_module(use_iv: bool) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_init(
            "g",
            Ty::F64,
            (0..32).map(|k| Value::F(k as f64 * 0.25)).collect(),
        );
        let w = mb.global_init(
            "w",
            Ty::F64,
            (0..64).map(|k| Value::F(1.0 + k as f64 * 0.125)).collect(),
        );
        let out = mb.global_zeroed("out", Ty::F64, 16);
        let mut f = mb.function("main", vec![], None);
        let entry = f.entry_block();
        let oh = f.new_block("oh");
        let pre = f.new_block("pre");
        let ih = f.new_block("ih");
        let ib = f.new_block("ib");
        let fin = f.new_block("fin");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let k = f.def_reg(Ty::I64, "k");
        let acc = f.def_reg(Ty::F64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(oh);
        f.switch_to(oh);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(16));
        f.cond_br(Operand::reg(c), pre, exit);
        f.switch_to(pre);
        f.mov(acc, Operand::imm_f(0.0));
        f.mov(k, Operand::imm_i(0));
        f.br(ih);
        f.switch_to(ih);
        let c2 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(k), Operand::imm_i(32));
        f.cond_br(Operand::reg(c2), ib, fin);
        f.switch_to(ib);
        let ga = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::reg(k));
        let gv = f.load(Ty::F64, Operand::reg(ga));
        // Optionally make the weight index depend on the outer IV, so the
        // IV becomes a live-in parameter of the body.
        let widx = if use_iv {
            f.bin(BinOp::Add, Ty::I64, Operand::reg(k), Operand::reg(i))
        } else {
            f.bin(BinOp::Add, Ty::I64, Operand::reg(k), Operand::imm_i(0))
        };
        let wa = f.bin(BinOp::Add, Ty::I64, Operand::global(w), Operand::reg(widx));
        let wv = f.load(Ty::F64, Operand::reg(wa));
        let prod = f.bin(BinOp::Mul, Ty::F64, Operand::reg(gv), Operand::reg(wv));
        f.bin_into(
            acc,
            BinOp::Add,
            Ty::F64,
            Operand::reg(acc),
            Operand::reg(prod),
        );
        f.bin_into(k, BinOp::Add, Ty::I64, Operand::reg(k), Operand::imm_i(1));
        f.br(ih);
        f.switch_to(fin);
        let scaled = f.bin(BinOp::Mul, Ty::F64, Operand::reg(acc), Operand::imm_f(0.5));
        let oa = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
        f.store(Ty::F64, Operand::reg(oa), Operand::reg(scaled));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(oh);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    #[test]
    fn outlined_body_computes_the_same_value() {
        let m = reduction_module(true);
        let cands = find_candidates(&m, &DetectConfig::default());
        assert_eq!(cands.len(), 1);
        let body = outline_body(&m, &cands[0], "main__body_0").unwrap();

        // IV must be the first parameter (the weight index uses it).
        assert_eq!(body.param_regs[0], cands[0].iv.reg);

        // Append the body and call it directly: body(i) must equal the
        // loop's stored out[i].
        let mut m2 = m.clone();
        m2.add_function(body.func.clone());
        Verifier::new(&m2).verify().unwrap();

        // Reference: run the original program.
        let mut machine = rskip_exec::Machine::new(&m2, rskip_exec::NoopHooks);
        machine.run("main", &[]);
        let expect: Vec<Value> = machine.read_global("out").to_vec();

        for i in [0i64, 3, 7, 15] {
            // Only the IV param matters; the others are overwritten before
            // use inside the body — pass zeros.
            let args: Vec<Value> = body
                .param_tys
                .iter()
                .enumerate()
                .map(|(j, ty)| {
                    if j == 0 {
                        Value::I(i)
                    } else {
                        Value::zero(*ty)
                    }
                })
                .collect();
            let out = run_simple(&m2, "main__body_0", &args);
            match out.termination {
                Termination::Returned(Some(v)) => {
                    assert!(
                        v.bit_eq(expect[i as usize]),
                        "body({i}) = {v:?}, loop stored {:?}",
                        expect[i as usize]
                    );
                }
                other => panic!("body trapped: {other:?}"),
            }
        }
    }

    #[test]
    fn body_without_iv_dependence_has_no_iv_param() {
        let m = reduction_module(false);
        let cands = find_candidates(&m, &DetectConfig::default());
        let body = outline_body(&m, &cands[0], "b").unwrap();
        assert!(!body.param_regs.contains(&cands[0].iv.reg));
        // Everything is computed inside: zero live-ins.
        assert!(body.param_regs.is_empty(), "params: {:?}", body.param_regs);
    }

    #[test]
    fn body_function_is_marked_unprotected() {
        let m = reduction_module(true);
        let cands = find_candidates(&m, &DetectConfig::default());
        let body = outline_body(&m, &cands[0], "b").unwrap();
        assert!(body.func.attrs.outlined);
        assert!(!body.func.attrs.protect);
        assert_eq!(body.func.ret, Some(Ty::F64));
    }
}
