//! The RSkip transform: dual-version candidate loops into a conventionally
//! protected copy (CP) and a prediction-protected copy (PP).
//!
//! Per candidate loop (paper §3, Fig. 3):
//!
//! 1. the value computation becomes a *body* function (outlined slice, or
//!    a clone of the called function for the Fig. 4a pattern);
//! 2. the loop blocks are cloned into the PP version: the body executes
//!    once per iteration, the result is stored, and `observe` reports
//!    `(iter, addr, value, args…)` to the prediction runtime;
//! 3. after each `observe` (and after the final flush at region exit) a
//!    *recheck* loop drains the runtime's pending queue: elements that
//!    failed fuzzy validation — or phase endpoints interpolation cannot
//!    estimate — are re-computed with the recorded arguments and compared
//!    exactly; a true mismatch triggers a third execution and a majority
//!    vote over (stored, recomputed₁, recomputed₂), i.e. re-computation
//!    based recovery;
//! 4. a dispatch block asks the runtime (`select_version`) whether to run
//!    PP or CP on this entry;
//! 5. region enter/exit markers bound the detected loop for fault
//!    injection and runtime bookkeeping.
//!
//! The loop shell (induction variable, addresses, compares, branches) and
//! the CP copy are protected by the SWIFT-R pass that runs afterwards;
//! body functions are marked `outlined`/`noprotect` and execute as the
//! single original copy.

use std::collections::BTreeSet;

use rskip_analysis::CandidateLoop;
use rskip_ir::{
    BlockId, CmpOp, Function, Inst, Intrinsic, Module, Operand, Reg, RegionId, Terminator, Ty,
};

use crate::outline::{OutlineError, OutlinedBody};
use crate::util::{clone_loop_blocks, redirect_entries};

/// Why the transform failed for a candidate (the driver falls back to
/// conventional protection with region markers).
#[derive(Clone, Debug, PartialEq)]
pub enum RSkipError {
    /// Outlining the value slice failed.
    Outline(OutlineError),
    /// The candidate's shape was not as detection promised.
    BadPattern(String),
}

impl std::fmt::Display for RSkipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RSkipError::Outline(e) => write!(f, "outline failed: {e}"),
            RSkipError::BadPattern(s) => write!(f, "bad candidate pattern: {s}"),
        }
    }
}

impl std::error::Error for RSkipError {}

impl From<OutlineError> for RSkipError {
    fn from(e: OutlineError) -> Self {
        RSkipError::Outline(e)
    }
}

/// Where the PP body function comes from.
#[derive(Clone, Debug)]
pub enum BodySource {
    /// An outlined slice (Fig. 4b pattern) produced by
    /// [`outline_body`](crate::outline_body) on the *pristine* function.
    Outlined(OutlinedBody),
    /// The Fig. 4a pattern: clone this called function (the original stays
    /// protected for the CP version).
    Callee {
        /// Name of the original callee.
        original: String,
    },
}

/// Applies the transform for one candidate. Returns the body-function
/// name and parameter types (the runtime needs them to replay arguments).
pub fn apply_rskip(
    module: &mut Module,
    cand: &CandidateLoop,
    region: RegionId,
    body: BodySource,
) -> Result<(String, Vec<Ty>), RSkipError> {
    let body_name = format!("{}__rskip_body_{}", cand.function, region.0);

    // --- 1. Materialize the body function. ---
    let (param_tys, shell_args): (Vec<Ty>, Option<Vec<Operand>>) = match &body {
        BodySource::Outlined(ob) => {
            let mut func = ob.func.clone();
            func.name = body_name.clone();
            module.add_function(func);
            (
                ob.param_tys.clone(),
                Some(ob.param_regs.iter().map(|&r| Operand::Reg(r)).collect()),
            )
        }
        BodySource::Callee { original } => {
            let mut clone = module
                .function(original)
                .ok_or_else(|| RSkipError::BadPattern(format!("no callee @{original}")))?
                .clone();
            clone.name = body_name.clone();
            clone.attrs.outlined = true;
            clone.attrs.protect = false;
            let tys = clone.params.clone();
            module.add_function(clone);
            (tys, None) // arguments come from the existing call site
        }
    };

    let f = module
        .function_mut(&cand.function)
        .expect("candidate function exists");

    // --- 2. Clone the loop into the PP version. ---
    let pp_map = clone_loop_blocks(f, &cand.target.blocks, &format!(".pp{}", region.0));
    let mut pp_set: BTreeSet<BlockId> = pp_map.values().copied().collect();

    let pp_store_block = pp_map[&cand.store_block];

    // Gather the store's operands before editing.
    let (store_addr, value_reg) = match &f.block(cand.store_block).insts[cand.store_idx] {
        Inst::Store {
            addr,
            value: Operand::Reg(v),
            ..
        } => (*addr, *v),
        other => {
            return Err(RSkipError::BadPattern(format!(
                "expected f64 store of a register, found {other:?}"
            )))
        }
    };

    // --- 3. Rewrite the PP store block. ---
    // The call result goes through a fresh register: the stored value
    // register may coincide with a body argument (lud's in-place `sum`),
    // and `observe` must record the *pre-call* argument values so rechecks
    // replay the body with identical inputs.
    let v_new = f.new_reg(Ty::F64);
    let mut store_idx = cand.store_idx;
    let call_args: Vec<Operand> = match (&body, shell_args) {
        (BodySource::Outlined(ob), Some(args)) => {
            // The PP shell bypasses the slice's subloops entirely: rewire
            // every clone edge into a subloop header to the subloop's exit
            // block. The subloop clones become unreachable dead blocks.
            let sub_blocks: BTreeSet<BlockId> =
                ob.subloops.iter().flat_map(|s| s.iter().copied()).collect();
            for sub in &ob.subloops {
                // The subloop's unique exit target inside the target loop
                // (original block-id space).
                let mut exit_target = None;
                for &sb in sub {
                    for succ in f.block(sb).term.successors() {
                        if !sub.contains(&succ) {
                            exit_target = Some(succ);
                        }
                    }
                }
                let Some(exit_target) = exit_target else {
                    return Err(RSkipError::BadPattern(
                        "slice subloop has no exit edge".into(),
                    ));
                };
                // Shell edges were already remapped to clone space by
                // clone_loop_blocks: redirect edges into the subloop's
                // *clones* straight to the exit's clone.
                let exit_clone = pp_map.get(&exit_target).copied().unwrap_or(exit_target);
                let clones_of_sub: BTreeSet<BlockId> =
                    sub.iter().filter_map(|b| pp_map.get(b).copied()).collect();
                for (&orig, &clone) in &pp_map {
                    if sub_blocks.contains(&orig) {
                        continue;
                    }
                    f.block_mut(clone).term.map_successors(|t| {
                        if clones_of_sub.contains(&t) {
                            exit_clone
                        } else {
                            t
                        }
                    });
                }
            }

            // Remove the slice instructions from the PP shell blocks; they
            // are replaced by the body call. Exception: a slice
            // instruction whose result the *shell* still reads (e.g. an
            // index like lud's `jrow` feeding both the reduction and the
            // store address) stays — it is rematerialized in both places.
            let slice_set: BTreeSet<(BlockId, usize)> = cand.slice.insts.iter().copied().collect();
            let mut shell_reads: BTreeSet<Reg> = BTreeSet::new();
            for &b in &cand.target.blocks {
                if sub_blocks.contains(&b) {
                    continue; // bypassed: not part of the PP shell
                }
                for (idx, inst) in f.block(b).insts.iter().enumerate() {
                    if slice_set.contains(&(b, idx)) {
                        continue;
                    }
                    if b == cand.store_block && idx == cand.store_idx {
                        // The protected store is rewritten to read the
                        // body-call result; only its address keeps the
                        // original operand.
                        if let Operand::Reg(r) = store_addr {
                            shell_reads.insert(r);
                        }
                        continue;
                    }
                    for r in inst.used_regs() {
                        shell_reads.insert(r);
                    }
                }
                if let Some(Operand::Reg(r)) = f.block(b).term.used_operand() {
                    shell_reads.insert(r);
                }
            }
            let mut keep: BTreeSet<(BlockId, usize)> = BTreeSet::new();
            let mut changed = true;
            while changed {
                changed = false;
                for &(b, idx) in &cand.slice.insts {
                    if keep.contains(&(b, idx)) {
                        continue;
                    }
                    let inst = &f.block(b).insts[idx];
                    if inst.dst().is_some_and(|d| shell_reads.contains(&d)) {
                        keep.insert((b, idx));
                        for r in inst.used_regs() {
                            shell_reads.insert(r);
                        }
                        changed = true;
                    }
                }
            }

            let mut by_block: std::collections::BTreeMap<BlockId, Vec<usize>> =
                std::collections::BTreeMap::new();
            for &(b, idx) in &cand.slice.insts {
                if !keep.contains(&(b, idx)) {
                    by_block.entry(b).or_default().push(idx);
                }
            }
            for (b, mut idxs) in by_block {
                idxs.sort_unstable_by(|a, b| b.cmp(a));
                let clone = pp_map[&b];
                for idx in idxs {
                    f.block_mut(clone).insts.remove(idx);
                    if b == cand.store_block && idx < store_idx {
                        store_idx -= 1;
                    }
                }
            }
            // Insert the body call right before the store.
            f.block_mut(pp_store_block).insts.insert(
                store_idx,
                Inst::Call {
                    dst: Some(v_new),
                    callee: body_name.clone(),
                    args: args.clone(),
                },
            );
            store_idx += 1;
            // The store reads the fresh result.
            if let Inst::Store { value, .. } = &mut f.block_mut(pp_store_block).insts[store_idx] {
                *value = Operand::Reg(v_new);
            }
            args
        }
        (BodySource::Callee { .. }, _) => {
            // Find the call in the PP clone and retarget it to the body
            // clone; its result must be the stored value.
            let mut found: Option<Vec<Operand>> = None;
            'outer: for (&orig, &clone) in &pp_map {
                let _ = orig;
                for inst in f.block_mut(clone).insts.iter_mut() {
                    if let Inst::Call { dst, callee, args } = inst {
                        if *dst == Some(value_reg) {
                            if args.iter().any(|a| a.as_reg() == Some(value_reg)) {
                                return Err(RSkipError::BadPattern(
                                    "call result register is also an argument".into(),
                                ));
                            }
                            *callee = body_name.clone();
                            *dst = Some(v_new);
                            found = Some(args.clone());
                            break 'outer;
                        }
                    }
                }
            }
            let args = found.ok_or_else(|| {
                RSkipError::BadPattern("call defining the stored value not found".into())
            })?;
            // Point the store at the fresh result.
            if let Inst::Store { value, .. } = &mut f.block_mut(pp_store_block).insts[store_idx] {
                *value = Operand::Reg(v_new);
            }
            args
        }
        (BodySource::Outlined(_), None) => unreachable!("outlined bodies carry shell args"),
    };

    // observe(region, iter, addr, value, args...).
    let mut observe_args = vec![
        Operand::imm_i(region.0 as i64),
        Operand::Reg(cand.iv.reg),
        store_addr,
        Operand::Reg(v_new),
    ];
    observe_args.extend(call_args.iter().copied());
    f.block_mut(pp_store_block).insts.insert(
        store_idx + 1,
        Inst::IntrinsicCall {
            dst: None,
            intr: Intrinsic::Observe,
            args: observe_args,
        },
    );
    // Restore the original value register for any later shell readers
    // (matches the original program's state after the computation).
    f.block_mut(pp_store_block).insts.insert(
        store_idx + 2,
        Inst::Mov {
            ty: Ty::F64,
            dst: value_reg,
            src: Operand::Reg(v_new),
        },
    );

    // Split after the restore: the iteration tail (IV update, compare,
    // back edge) runs after the recheck loop drains.
    let tail_insts: Vec<Inst> = f.block_mut(pp_store_block).insts.split_off(store_idx + 3);
    let tail_term = f.block(pp_store_block).term.clone();
    let cont = f.add_block(format!("region{}_pp_cont", region.0));
    f.block_mut(cont).insts = tail_insts;
    f.block_mut(cont).term = tail_term;
    pp_set.insert(cont);

    let recheck_head = emit_recheck(f, region, &body_name, &param_tys, cont, &mut pp_set);
    f.block_mut(pp_store_block).term = Terminator::Br(recheck_head);

    // --- 4. PP exit stubs: region_exit + final (flush) recheck. ---
    let pp_blocks: Vec<BlockId> = pp_set.iter().copied().collect();
    for b in pp_blocks {
        let exits: Vec<BlockId> = f
            .block(b)
            .term
            .successors()
            .into_iter()
            .filter(|s| !pp_set.contains(s))
            .collect();
        for target in exits {
            if cand.target.blocks.contains(&target) {
                continue; // back edge into the original loop cannot happen
            }
            let stub = f.add_block(format!("region{}_pp_exit", region.0));
            pp_set.insert(stub);
            f.block_mut(stub).insts.push(Inst::IntrinsicCall {
                dst: None,
                intr: Intrinsic::RegionExit,
                args: vec![Operand::imm_i(region.0 as i64)],
            });
            let flush_head = emit_recheck(f, region, &body_name, &param_tys, target, &mut pp_set);
            f.block_mut(stub).term = Terminator::Br(flush_head);
            f.block_mut(b)
                .term
                .map_successors(|t| if t == target { stub } else { t });
        }
    }

    // --- 5. Dispatch block. ---
    let dispatch = f.add_block(format!("region{}_dispatch", region.0));
    f.block_mut(dispatch).insts.push(Inst::IntrinsicCall {
        dst: None,
        intr: Intrinsic::RegionEnter,
        args: vec![Operand::imm_i(region.0 as i64)],
    });
    let up = f.new_reg(Ty::I64);
    f.block_mut(dispatch).insts.push(Inst::IntrinsicCall {
        dst: Some(up),
        intr: Intrinsic::SelectVersion,
        args: vec![Operand::imm_i(region.0 as i64)],
    });
    f.block_mut(dispatch).term = Terminator::CondBr(
        Operand::Reg(up),
        pp_map[&cand.target.header],
        cand.target.header,
    );
    redirect_entries(f, &cand.target.blocks, cand.target.header, dispatch);
    // The PP blocks never branch to the original header; the dispatch
    // itself was excluded by redirect_entries.

    // --- 6. CP exit stubs. ---
    let loop_blocks: Vec<BlockId> = cand.target.blocks.iter().copied().collect();
    for b in loop_blocks {
        let exits: Vec<BlockId> = f
            .block(b)
            .term
            .successors()
            .into_iter()
            .filter(|s| !cand.target.blocks.contains(s))
            .collect();
        for target in exits {
            let stub = f.add_block(format!("region{}_cp_exit", region.0));
            f.block_mut(stub).insts.push(Inst::IntrinsicCall {
                dst: None,
                intr: Intrinsic::RegionExit,
                args: vec![Operand::imm_i(region.0 as i64)],
            });
            f.block_mut(stub).term = Terminator::Br(target);
            f.block_mut(b)
                .term
                .map_successors(|t| if t == target { stub } else { t });
        }
    }

    Ok((body_name, param_tys))
}

/// Emits the recheck loop: drain `next_pending`, re-execute the body with
/// recorded arguments, exact-compare against memory, majority-vote repair
/// on mismatch. Returns the head block.
fn emit_recheck(
    f: &mut Function,
    region: RegionId,
    body_name: &str,
    param_tys: &[Ty],
    exit_to: BlockId,
    pp_set: &mut BTreeSet<BlockId>,
) -> BlockId {
    let r = Operand::imm_i(region.0 as i64);
    let head = f.add_block(format!("region{}_recheck_head", region.0));
    let body_bb = f.add_block(format!("region{}_recheck_body", region.0));
    let ok_bb = f.add_block(format!("region{}_recheck_ok", region.0));
    let fault_bb = f.add_block(format!("region{}_recheck_fault", region.0));
    for b in [head, body_bb, ok_bb, fault_bb] {
        pp_set.insert(b);
    }

    // head:
    let idx = f.new_reg(Ty::I64);
    let cnd = f.new_reg(Ty::I64);
    {
        let insts = &mut f.block_mut(head).insts;
        insts.push(Inst::IntrinsicCall {
            dst: Some(idx),
            intr: Intrinsic::NextPending,
            args: vec![r],
        });
        insts.push(Inst::Cmp {
            ty: Ty::I64,
            op: CmpOp::Lt,
            dst: cnd,
            lhs: Operand::Reg(idx),
            rhs: Operand::imm_i(0),
        });
    }
    f.block_mut(head).term = Terminator::CondBr(Operand::Reg(cnd), exit_to, body_bb);

    // body_bb:
    let a2 = f.new_reg(Ty::I64);
    let mut arg_regs: Vec<Reg> = Vec::with_capacity(param_tys.len());
    for &ty in param_tys {
        arg_regs.push(f.new_reg(ty));
    }
    let v1 = f.new_reg(Ty::F64);
    let vorig = f.new_reg(Ty::F64);
    let eq = f.new_reg(Ty::I64);
    {
        let mut insts = vec![Inst::IntrinsicCall {
            dst: Some(a2),
            intr: Intrinsic::PendingAddr,
            args: vec![r],
        }];
        for (j, (&ty, &reg)) in param_tys.iter().zip(&arg_regs).enumerate() {
            insts.push(Inst::IntrinsicCall {
                dst: Some(reg),
                intr: if ty == Ty::I64 {
                    Intrinsic::PendingArgI
                } else {
                    Intrinsic::PendingArgF
                },
                args: vec![r, Operand::imm_i(j as i64)],
            });
        }
        insts.push(Inst::Call {
            dst: Some(v1),
            callee: body_name.to_string(),
            args: arg_regs.iter().map(|&a| Operand::Reg(a)).collect(),
        });
        insts.push(Inst::Load {
            ty: Ty::F64,
            dst: vorig,
            addr: Operand::Reg(a2),
        });
        insts.push(Inst::Cmp {
            ty: Ty::F64,
            op: CmpOp::Eq,
            dst: eq,
            lhs: Operand::Reg(v1),
            rhs: Operand::Reg(vorig),
        });
        f.block_mut(body_bb).insts = insts;
    }
    f.block_mut(body_bb).term = Terminator::CondBr(Operand::Reg(eq), ok_bb, fault_bb);

    // ok_bb: the re-computation agreed — misprediction only.
    f.block_mut(ok_bb).insts.push(Inst::IntrinsicCall {
        dst: None,
        intr: Intrinsic::ResolveOk,
        args: vec![r],
    });
    f.block_mut(ok_bb).term = Terminator::Br(head);

    // fault_bb: true mismatch — third execution + majority vote.
    let v2 = f.new_reg(Ty::F64);
    let eq2 = f.new_reg(Ty::I64);
    let maj = f.new_reg(Ty::F64);
    {
        let mut insts = vec![Inst::Call {
            dst: Some(v2),
            callee: body_name.to_string(),
            args: arg_regs.iter().map(|&a| Operand::Reg(a)).collect(),
        }];
        insts.push(Inst::Cmp {
            ty: Ty::F64,
            op: CmpOp::Eq,
            dst: eq2,
            lhs: Operand::Reg(v1),
            rhs: Operand::Reg(v2),
        });
        insts.push(Inst::Select {
            ty: Ty::F64,
            dst: maj,
            cond: Operand::Reg(eq2),
            on_true: Operand::Reg(v1),
            on_false: Operand::Reg(vorig),
        });
        insts.push(Inst::Store {
            ty: Ty::F64,
            addr: Operand::Reg(a2),
            value: Operand::Reg(maj),
        });
        insts.push(Inst::IntrinsicCall {
            dst: None,
            intr: Intrinsic::ResolveFault,
            args: vec![r],
        });
        f.block_mut(fault_bb).insts = insts;
    }
    f.block_mut(fault_bb).term = Terminator::Br(head);

    head
}
