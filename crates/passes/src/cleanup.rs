//! Post-transform cleanup: unreachable-block elimination.
//!
//! The RSkip transform leaves the PP clone's bypassed subloop skeletons
//! behind as unreachable blocks (and the SWIFT pass can strand empty
//! continuations). This pass drops every block not reachable from the
//! entry and compacts block ids, remapping terminators and loop hints.
//! Running it after the scheme driver shrinks modules and keeps printed
//! IR readable; it never changes semantics.

use rskip_ir::{BlockId, Function, Module, Terminator};

/// Removes unreachable blocks from every function of `module`. Returns
/// the total number of blocks removed.
pub fn remove_unreachable_blocks(module: &mut Module) -> usize {
    let mut removed = 0;
    for f in &mut module.functions {
        removed += clean_function(f);
    }
    removed
}

fn clean_function(f: &mut Function) -> usize {
    let n = f.blocks.len();
    // Reachability from the entry.
    let mut reachable = vec![false; n];
    let mut stack = vec![BlockId(0)];
    reachable[0] = true;
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.successors() {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                stack.push(s);
            }
        }
    }
    let dead = reachable.iter().filter(|&&r| !r).count();
    if dead == 0 {
        return 0;
    }

    // Compacting remap.
    let mut remap: Vec<Option<BlockId>> = Vec::with_capacity(n);
    let mut next = 0u32;
    for &r in &reachable {
        if r {
            remap.push(Some(BlockId(next)));
            next += 1;
        } else {
            remap.push(None);
        }
    }

    let old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut block) in old_blocks.into_iter().enumerate() {
        if remap[i].is_none() {
            continue;
        }
        block.term.map_successors(|t| {
            remap[t.index()].expect("successor of a reachable block is reachable")
        });
        // Keep placeholder terminators sane even if the block had none.
        if let Terminator::CondBr(_, a, b) = block.term {
            debug_assert!(a.index() < n && b.index() < n);
        }
        f.blocks.push(block);
    }

    // Hints on dead headers are dropped; live ones are remapped.
    f.loop_hints.retain_mut(|h| match remap[h.header.index()] {
        Some(new) => {
            h.header = new;
            true
        }
        None => false,
    });
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_exec::{run_simple, Termination};
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Operand, Ty, Value, Verifier};

    #[test]
    fn drops_dead_blocks_and_preserves_semantics() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let live = f.new_block("live");
        let dead1 = f.new_block("dead1");
        let dead2 = f.new_block("dead2");
        f.br(live);
        f.switch_to(live);
        let x = f.bin(BinOp::Add, Ty::I64, Operand::imm_i(40), Operand::imm_i(2));
        f.ret(Some(Operand::reg(x)));
        f.switch_to(dead1);
        f.br(dead2);
        f.switch_to(dead2);
        f.br(dead1);
        f.finish();
        let mut m = mb.finish();

        let removed = remove_unreachable_blocks(&mut m);
        assert_eq!(removed, 2);
        assert_eq!(m.functions[0].blocks.len(), 2);
        Verifier::new(&m).verify().unwrap();
        let out = run_simple(&m, "main", &[]);
        assert_eq!(out.termination, Termination::Returned(Some(Value::I(42))));
    }

    #[test]
    fn remaps_hints_and_drops_dead_ones() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], None);
        let dead = f.new_block("dead");
        let live = f.new_block("live");
        f.br(live);
        f.switch_to(dead);
        f.ret(None);
        f.switch_to(live);
        f.ret(None);
        f.hint(live, true, Some(0.5));
        f.hint(dead, false, None);
        f.finish();
        let mut m = mb.finish();
        remove_unreachable_blocks(&mut m);
        let f = &m.functions[0];
        assert_eq!(f.loop_hints.len(), 1);
        assert!(f.loop_hints[0].no_alias);
        assert_eq!(f.loop_hints[0].header, BlockId(1)); // live compacted 2 -> 1
    }

    #[test]
    fn no_op_on_fully_reachable_functions() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], None);
        let b = f.new_block("b");
        let c = f.new_block("c");
        let cond = f.cmp(CmpOp::Gt, Ty::I64, Operand::imm_i(1), Operand::imm_i(0));
        f.cond_br(Operand::reg(cond), b, c);
        f.switch_to(b);
        f.ret(None);
        f.switch_to(c);
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        let before = m.clone();
        assert_eq!(remove_unreachable_blocks(&mut m), 0);
        assert_eq!(m, before);
    }

    #[test]
    fn cleans_rskip_transformed_workload() {
        // The PP clone's bypassed subloop skeletons are the motivating
        // dead code: after cleanup the module still verifies, runs, and
        // produces bit-identical outputs.
        use rskip_analysis::{find_candidates, DetectConfig};
        use rskip_exec::{Machine, NoopHooks};
        let m = rskip_workloads_stub();
        // Apply the transform by hand (the driver already runs cleanup).
        let cands = find_candidates(&m, &DetectConfig::default());
        assert_eq!(cands.len(), 1);
        let ob = crate::outline_body(&m, &cands[0], "tmp").unwrap();
        let mut transformed = m.clone();
        let region = transformed.new_region();
        crate::apply_rskip(
            &mut transformed,
            &cands[0],
            region,
            crate::BodySource::Outlined(ob),
        )
        .unwrap();
        crate::apply_swift_r(&mut transformed);

        let mut cleaned = transformed.clone();
        let removed = remove_unreachable_blocks(&mut cleaned);
        assert!(removed > 0, "expected dead subloop skeletons");
        Verifier::new(&cleaned).verify().unwrap();

        let run = |m: &rskip_ir::Module| {
            let mut machine = Machine::new(m, NoopHooks);
            let out = machine.run("main", &[]);
            assert!(out.returned());
            machine.read_global("out").to_vec()
        };
        let a = run(&transformed);
        let b = run(&cleaned);
        assert!(a.iter().zip(&b).all(|(x, y)| x.bit_eq(*y)));

        // The driver's output is already clean.
        let p = crate::protect(&m, crate::Scheme::RSkip);
        let mut again = p.module.clone();
        assert_eq!(remove_unreachable_blocks(&mut again), 0);
    }

    /// A small reduction workload (self-contained to avoid a dev-dependency
    /// cycle with rskip-workloads).
    fn rskip_workloads_stub() -> rskip_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_init("g", Ty::F64, (0..48).map(|k| Value::F(k as f64)).collect());
        let out = mb.global_zeroed("out", Ty::F64, 32);
        let mut f = mb.function("main", vec![], None);
        let entry = f.entry_block();
        let oh = f.new_block("oh");
        let pre = f.new_block("pre");
        let ih = f.new_block("ih");
        let ib = f.new_block("ib");
        let fin = f.new_block("fin");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let k = f.def_reg(Ty::I64, "k");
        let acc = f.def_reg(Ty::F64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(oh);
        f.switch_to(oh);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(32));
        f.cond_br(Operand::reg(c), pre, exit);
        f.switch_to(pre);
        f.mov(acc, Operand::imm_f(0.0));
        f.mov(k, Operand::imm_i(0));
        f.br(ih);
        f.switch_to(ih);
        let c2 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(k), Operand::imm_i(16));
        f.cond_br(Operand::reg(c2), ib, fin);
        f.switch_to(ib);
        let gi = f.bin(BinOp::Add, Ty::I64, Operand::reg(i), Operand::reg(k));
        let ga = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::reg(gi));
        let gv = f.load(Ty::F64, Operand::reg(ga));
        f.bin_into(
            acc,
            BinOp::Add,
            Ty::F64,
            Operand::reg(acc),
            Operand::reg(gv),
        );
        f.bin_into(k, BinOp::Add, Ty::I64, Operand::reg(k), Operand::imm_i(1));
        f.br(ih);
        f.switch_to(fin);
        let oa = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
        f.store(Ty::F64, Operand::reg(oa), Operand::reg(acc));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(oh);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish()
    }
}
