//! Shared CFG-surgery helpers: edge redirection, loop cloning, region
//! markers.

use std::collections::{BTreeMap, BTreeSet};

use rskip_ir::{BlockId, Function, Intrinsic, Module, Operand, RegionId, Terminator};

/// Redirects every edge `pred -> old` where `pred` is outside `loop_blocks`
/// to `new` (used to funnel loop entries through a dispatch/marker block).
pub(crate) fn redirect_entries(
    f: &mut Function,
    loop_blocks: &BTreeSet<BlockId>,
    old: BlockId,
    new: BlockId,
) {
    let ids: Vec<BlockId> = f.iter_blocks().map(|(id, _)| id).collect();
    for id in ids {
        if loop_blocks.contains(&id) || id == new {
            continue;
        }
        f.block_mut(id)
            .term
            .map_successors(|t| if t == old { new } else { t });
    }
}

/// Clones the blocks of a loop inside the same function. Register space is
/// shared (only one version executes per region entry); block targets
/// internal to the loop are remapped to the clones, exit edges are left
/// pointing at the original targets for the caller to fix up.
///
/// Returns the mapping original block → clone.
pub fn clone_loop_blocks(
    f: &mut Function,
    loop_blocks: &BTreeSet<BlockId>,
    name_suffix: &str,
) -> BTreeMap<BlockId, BlockId> {
    let mut map = BTreeMap::new();
    for &b in loop_blocks {
        let name = format!("{}{}", f.block(b).name, name_suffix);
        let nb = f.add_block(name);
        map.insert(b, nb);
    }
    for (&orig, &clone) in &map {
        let mut block = f.block(orig).clone();
        block.name = f.block(clone).name.clone();
        block
            .term
            .map_successors(|t| map.get(&t).copied().unwrap_or(t));
        *f.block_mut(clone) = block;
    }
    map
}

/// Wraps a loop with `region_enter` / `region_exit` markers without
/// changing its body: entries are funneled through a marker block, every
/// exit edge through a per-target exit stub.
///
/// This is what `Unsafe` and `SwiftR` builds use so that fault injection
/// covers the same dynamic code ranges as the RSkip build (§7.2).
pub fn add_region_markers(
    module: &mut Module,
    func: &str,
    loop_blocks: &BTreeSet<BlockId>,
    header: BlockId,
    region: RegionId,
) {
    let f = module
        .function_mut(func)
        .unwrap_or_else(|| panic!("no function @{func}"));

    // Entry marker.
    let enter = f.add_block(format!("region{}_enter", region.0));
    f.block_mut(enter)
        .insts
        .push(rskip_ir::Inst::IntrinsicCall {
            dst: None,
            intr: Intrinsic::RegionEnter,
            args: vec![Operand::imm_i(region.0 as i64)],
        });
    f.block_mut(enter).term = Terminator::Br(header);
    redirect_entries(f, loop_blocks, header, enter);

    // Exit stubs, one per (exiting block, outside target).
    let exits: Vec<(BlockId, BlockId)> = loop_blocks
        .iter()
        .flat_map(|&b| {
            f.block(b)
                .term
                .successors()
                .into_iter()
                .filter(|s| !loop_blocks.contains(s))
                .map(move |s| (b, s))
        })
        .collect();
    for (from, target) in exits {
        let stub = f.add_block(format!("region{}_exit", region.0));
        f.block_mut(stub).insts.push(rskip_ir::Inst::IntrinsicCall {
            dst: None,
            intr: Intrinsic::RegionExit,
            args: vec![Operand::imm_i(region.0 as i64)],
        });
        f.block_mut(stub).term = Terminator::Br(target);
        f.block_mut(from)
            .term
            .map_successors(|t| if t == target { stub } else { t });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_analysis::{Cfg, DomTree, LoopForest};
    use rskip_exec::{run_simple, Termination};
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Ty, Value, Verifier};

    fn counted_loop_module() -> rskip_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_zeroed("out", Ty::I64, 1);
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let acc = f.def_reg(Ty::I64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.mov(acc, Operand::imm_i(0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(10));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        f.bin_into(acc, BinOp::Add, Ty::I64, Operand::reg(acc), Operand::reg(i));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(header);
        f.switch_to(exit);
        f.store(Ty::I64, Operand::global(g), Operand::reg(acc));
        f.ret(Some(Operand::reg(acc)));
        f.finish();
        mb.finish()
    }

    fn loop_blocks(m: &rskip_ir::Module) -> BTreeSet<BlockId> {
        let f = m.function("main").unwrap();
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        forest.loops()[0].blocks.clone()
    }

    #[test]
    fn region_markers_preserve_semantics() {
        let mut m = counted_loop_module();
        let blocks = loop_blocks(&m);
        let region = m.new_region();
        add_region_markers(&mut m, "main", &blocks, BlockId(1), region);
        Verifier::new(&m).verify().unwrap();
        let out = run_simple(&m, "main", &[]);
        assert_eq!(out.termination, Termination::Returned(Some(Value::I(45))));
        // Region counters actually engaged.
        assert!(out.counters.region_retired > 0);
        assert!(out.counters.region_retired < out.counters.retired);
    }

    #[test]
    fn clone_remaps_internal_edges_only() {
        let mut m = counted_loop_module();
        let blocks = loop_blocks(&m);
        let f = m.function_mut("main").unwrap();
        let n_before = f.blocks.len();
        let map = clone_loop_blocks(f, &blocks, ".pp");
        assert_eq!(f.blocks.len(), n_before + blocks.len());
        // The clone of the header branches to the clone of the body and to
        // the ORIGINAL exit.
        let header_clone = map[&BlockId(1)];
        let succs = f.block(header_clone).term.successors();
        assert_eq!(succs[0], map[&BlockId(2)]);
        assert_eq!(succs[1], BlockId(3));
        // Original blocks untouched.
        assert_eq!(
            f.block(BlockId(1)).term.successors(),
            vec![BlockId(2), BlockId(3)]
        );
    }

    #[test]
    fn cloned_loop_is_unreachable_until_dispatched() {
        let mut m = counted_loop_module();
        let blocks = loop_blocks(&m);
        let f = m.function_mut("main").unwrap();
        clone_loop_blocks(f, &blocks, ".pp");
        Verifier::new(&m).verify().unwrap();
        let out = run_simple(&m, "main", &[]);
        assert_eq!(out.termination, Termination::Returned(Some(Value::I(45))));
    }
}
