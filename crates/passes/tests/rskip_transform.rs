//! End-to-end tests of the RSkip transform with mock prediction runtimes.
//!
//! Two extreme mock runtimes bracket the real one:
//! * `PendAll` — every observed element immediately fails validation, so
//!   the recheck loop re-executes the body for every iteration (skip rate
//!   0). Exercises argument recording/replay and the exact-compare path.
//! * `SkipAll` — every element is accepted (skip rate 1): the recheck loop
//!   never runs. The output must still be correct because the PP loop
//!   stores the originally computed value; predictions only validate.

use std::collections::VecDeque;

use rskip_exec::{ExecConfig, IntrinsicAction, Machine, NoopHooks, RuntimeHooks};
use rskip_ir::{BinOp, CmpOp, Intrinsic, ModuleBuilder, Operand, Ty, UnOp, Value, Verifier};
use rskip_passes::{protect, Scheme};

/// Mock runtime that marks every observation pending.
#[derive(Default)]
struct PendAll {
    queue: VecDeque<(i64, i64, Vec<Value>)>,
    current: Option<(i64, i64, Vec<Value>)>,
    resolve_ok: u64,
    resolve_fault: u64,
    observed: u64,
}

impl RuntimeHooks for PendAll {
    fn intrinsic(&mut self, intr: Intrinsic, args: &[Value]) -> IntrinsicAction {
        match intr {
            Intrinsic::SelectVersion => IntrinsicAction::value(Value::I(1), 1),
            Intrinsic::Observe => {
                self.observed += 1;
                let iter = args[1].as_i();
                let addr = args[2].as_i();
                let rest = args[4..].to_vec();
                self.queue.push_back((iter, addr, rest));
                IntrinsicAction::void(2)
            }
            Intrinsic::NextPending => match self.queue.pop_front() {
                Some(e) => {
                    let iter = e.0;
                    self.current = Some(e);
                    IntrinsicAction::value(Value::I(iter), 1)
                }
                None => IntrinsicAction::value(Value::I(-1), 1),
            },
            Intrinsic::PendingAddr => {
                let a = self.current.as_ref().expect("current pending").1;
                IntrinsicAction::value(Value::I(a), 1)
            }
            Intrinsic::PendingArgI | Intrinsic::PendingArgF => {
                let k = args[1].as_i() as usize;
                let v = self.current.as_ref().expect("current pending").2[k];
                IntrinsicAction::value(v, 1)
            }
            Intrinsic::ResolveOk => {
                self.resolve_ok += 1;
                IntrinsicAction::void(1)
            }
            Intrinsic::ResolveFault => {
                self.resolve_fault += 1;
                IntrinsicAction::void(1)
            }
            _ => IntrinsicAction::void(1),
        }
    }
}

/// Mock runtime that accepts everything (pure skip).
#[derive(Default)]
struct SkipAll {
    observed: u64,
}

impl RuntimeHooks for SkipAll {
    fn intrinsic(&mut self, intr: Intrinsic, _args: &[Value]) -> IntrinsicAction {
        match intr {
            Intrinsic::SelectVersion => IntrinsicAction::value(Value::I(1), 1),
            Intrinsic::Observe => {
                self.observed += 1;
                IntrinsicAction::void(2)
            }
            Intrinsic::NextPending => IntrinsicAction::value(Value::I(-1), 1),
            Intrinsic::PendingAddr | Intrinsic::PendingArgI => {
                IntrinsicAction::value(Value::I(0), 1)
            }
            Intrinsic::PendingArgF => IntrinsicAction::value(Value::F(0.0), 1),
            _ => IntrinsicAction::void(1),
        }
    }
}

/// conv1d-like module: out[i] = Σ_k g[i+k] * w[k], i in 0..N.
fn reduction_module(n: i64, k: i64) -> rskip_ir::Module {
    let mut mb = ModuleBuilder::new("conv");
    let g = mb.global_init(
        "g",
        Ty::F64,
        (0..(n + k))
            .map(|v| Value::F((v as f64 * 0.37).sin() + 2.0))
            .collect(),
    );
    let w = mb.global_init(
        "w",
        Ty::F64,
        (0..k).map(|v| Value::F(0.5 + v as f64 * 0.1)).collect(),
    );
    let out = mb.global_zeroed("out", Ty::F64, n as usize);
    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    let oh = f.new_block("oh");
    let pre = f.new_block("pre");
    let ih = f.new_block("ih");
    let ib = f.new_block("ib");
    let fin = f.new_block("fin");
    let exit = f.new_block("exit");
    let i = f.def_reg(Ty::I64, "i");
    let kk = f.def_reg(Ty::I64, "k");
    let acc = f.def_reg(Ty::F64, "acc");
    f.switch_to(entry);
    f.mov(i, Operand::imm_i(0));
    f.br(oh);
    f.switch_to(oh);
    let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(n));
    f.cond_br(Operand::reg(c), pre, exit);
    f.switch_to(pre);
    f.mov(acc, Operand::imm_f(0.0));
    f.mov(kk, Operand::imm_i(0));
    f.br(ih);
    f.switch_to(ih);
    let c2 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(kk), Operand::imm_i(k));
    f.cond_br(Operand::reg(c2), ib, fin);
    f.switch_to(ib);
    let gi = f.bin(BinOp::Add, Ty::I64, Operand::reg(i), Operand::reg(kk));
    let ga = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::reg(gi));
    let gv = f.load(Ty::F64, Operand::reg(ga));
    let wa = f.bin(BinOp::Add, Ty::I64, Operand::global(w), Operand::reg(kk));
    let wv = f.load(Ty::F64, Operand::reg(wa));
    let prod = f.bin(BinOp::Mul, Ty::F64, Operand::reg(gv), Operand::reg(wv));
    f.bin_into(
        acc,
        BinOp::Add,
        Ty::F64,
        Operand::reg(acc),
        Operand::reg(prod),
    );
    f.bin_into(kk, BinOp::Add, Ty::I64, Operand::reg(kk), Operand::imm_i(1));
    f.br(ih);
    f.switch_to(fin);
    let oa = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
    f.store(Ty::F64, Operand::reg(oa), Operand::reg(acc));
    f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
    f.br(oh);
    f.switch_to(exit);
    f.ret(None);
    f.finish();
    mb.finish()
}

/// blackscholes-like module: out[i] = price(s[i], t[i]) with an expensive
/// pure callee.
fn call_module(n: i64) -> rskip_ir::Module {
    let mut mb = ModuleBuilder::new("bs");
    let s = mb.global_init(
        "s",
        Ty::F64,
        (0..n).map(|v| Value::F(20.0 + (v % 16) as f64)).collect(),
    );
    let t = mb.global_init(
        "t",
        Ty::F64,
        (0..n)
            .map(|v| Value::F(0.5 + (v % 4) as f64 * 0.25))
            .collect(),
    );
    let out = mb.global_zeroed("out", Ty::F64, n as usize);

    let mut price = mb.function("price", vec![Ty::F64, Ty::F64], Some(Ty::F64));
    let sp = price.param(0);
    let tp = price.param(1);
    let l = price.un(UnOp::Log, Ty::F64, Operand::reg(sp));
    let sq = price.un(UnOp::Sqrt, Ty::F64, Operand::reg(tp));
    let d1 = price.bin(BinOp::Div, Ty::F64, Operand::reg(l), Operand::reg(sq));
    let e = price.un(UnOp::Exp, Ty::F64, Operand::reg(d1));
    let r = price.bin(BinOp::Div, Ty::F64, Operand::reg(e), Operand::imm_f(7.0));
    let fin = price.bin(BinOp::Add, Ty::F64, Operand::reg(r), Operand::reg(sp));
    price.ret(Some(Operand::reg(fin)));
    price.finish();

    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    let lh = f.new_block("lh");
    let lb = f.new_block("lb");
    let exit = f.new_block("exit");
    let i = f.def_reg(Ty::I64, "i");
    f.switch_to(entry);
    f.mov(i, Operand::imm_i(0));
    f.br(lh);
    f.switch_to(lh);
    let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(n));
    f.cond_br(Operand::reg(c), lb, exit);
    f.switch_to(lb);
    let sa = f.bin(BinOp::Add, Ty::I64, Operand::global(s), Operand::reg(i));
    let sv = f.load(Ty::F64, Operand::reg(sa));
    let ta = f.bin(BinOp::Add, Ty::I64, Operand::global(t), Operand::reg(i));
    let tv = f.load(Ty::F64, Operand::reg(ta));
    let p = f
        .call(
            "price",
            vec![Operand::reg(sv), Operand::reg(tv)],
            Some(Ty::F64),
        )
        .unwrap();
    let oa = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
    f.store(Ty::F64, Operand::reg(oa), Operand::reg(p));
    f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
    f.br(lh);
    f.switch_to(exit);
    f.ret(None);
    f.finish();
    mb.finish()
}

fn golden(m: &rskip_ir::Module) -> Vec<Value> {
    let mut machine = Machine::new(m, NoopHooks);
    let out = machine.run("main", &[]);
    assert!(out.returned(), "golden run failed: {:?}", out.termination);
    machine.read_global("out").to_vec()
}

#[test]
fn rskip_detects_and_transforms_the_reduction_loop() {
    let m = reduction_module(32, 16);
    let p = protect(&m, Scheme::RSkip);
    Verifier::new(&p.module).verify().unwrap();
    assert_eq!(p.regions.len(), 1);
    let spec = &p.regions[0];
    assert!(spec.body_fn.is_some());
    assert!(!spec.memoizable);
    // The body function exists and is unprotected.
    let body = p.module.function(spec.body_fn.as_deref().unwrap()).unwrap();
    assert!(body.attrs.outlined);
    assert!(!body.attrs.protect);
}

#[test]
fn pp_with_full_recompute_matches_golden() {
    let m = reduction_module(32, 16);
    let expect = golden(&m);
    let p = protect(&m, Scheme::RSkip);

    let mut machine = Machine::new(&p.module, PendAll::default());
    let out = machine.run("main", &[]);
    assert!(out.returned(), "{:?}", out.termination);
    let got = machine.read_global("out").to_vec();
    assert_eq!(got.len(), expect.len());
    for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
        assert!(a.bit_eq(*b), "out[{i}]: pp={a:?} golden={b:?}");
    }
    // Every element went through the recheck path and re-computed cleanly.
    let hooks = machine.hooks();
    assert_eq!(hooks.observed, 32);
    assert_eq!(hooks.resolve_ok, 32);
    assert_eq!(hooks.resolve_fault, 0);
}

#[test]
fn pp_with_full_skip_matches_golden() {
    let m = reduction_module(32, 16);
    let expect = golden(&m);
    let p = protect(&m, Scheme::RSkip);

    let mut machine = Machine::new(&p.module, SkipAll::default());
    let out = machine.run("main", &[]);
    assert!(out.returned(), "{:?}", out.termination);
    for (i, (a, b)) in machine.read_global("out").iter().zip(&expect).enumerate() {
        assert!(a.bit_eq(*b), "out[{i}]: pp={a:?} golden={b:?}");
    }
    assert_eq!(machine.hooks().observed, 32);
}

#[test]
fn skip_path_is_cheaper_than_recompute_path() {
    let m = reduction_module(32, 16);
    let p = protect(&m, Scheme::RSkip);

    let mut skip = Machine::new(&p.module, SkipAll::default());
    let skip_out = skip.run("main", &[]);
    let mut pend = Machine::new(&p.module, PendAll::default());
    let pend_out = pend.run("main", &[]);
    assert!(
        (skip_out.counters.retired as f64) < 0.8 * pend_out.counters.retired as f64,
        "skip {} vs recompute {}",
        skip_out.counters.retired,
        pend_out.counters.retired
    );
}

#[test]
fn cp_version_still_works() {
    // NoopHooks select the CP version: the SWIFT-R protected original loop.
    let m = reduction_module(32, 16);
    let expect = golden(&m);
    let p = protect(&m, Scheme::RSkip);
    let mut machine = Machine::new(&p.module, NoopHooks);
    let out = machine.run("main", &[]);
    assert!(out.returned());
    for (a, b) in machine.read_global("out").iter().zip(&expect) {
        assert!(a.bit_eq(*b));
    }
}

#[test]
fn call_pattern_transforms_and_matches_golden() {
    let m = call_module(64);
    let expect = golden(&m);
    let p = protect(&m, Scheme::RSkip);
    Verifier::new(&p.module).verify().unwrap();
    assert_eq!(p.regions.len(), 1);
    assert!(p.regions[0].memoizable, "pure 2-arg callee is memoizable");
    assert_eq!(p.regions[0].param_tys, vec![Ty::F64, Ty::F64]);

    for hooks_kind in 0..2 {
        if hooks_kind == 0 {
            let mut machine = Machine::new(&p.module, PendAll::default());
            machine.run("main", &[]);
            assert_eq!(machine.hooks().resolve_fault, 0);
            for (a, b) in machine.read_global("out").iter().zip(&expect) {
                assert!(a.bit_eq(*b));
            }
        } else {
            let mut machine = Machine::new(&p.module, SkipAll::default());
            machine.run("main", &[]);
            for (a, b) in machine.read_global("out").iter().zip(&expect) {
                assert!(a.bit_eq(*b));
            }
        }
    }
    // The original callee is still present and protected (CP path uses
    // it); the body clone is unprotected.
    let orig = p.module.function("price").unwrap();
    assert!(orig.attrs.protect);
    let body = p
        .module
        .function(p.regions[0].body_fn.as_deref().unwrap())
        .unwrap();
    assert!(!body.attrs.protect);
}

#[test]
fn unsafe_and_swift_r_schemes_preserve_semantics() {
    let m = reduction_module(24, 8);
    let expect = golden(&m);
    for scheme in [Scheme::Unsafe, Scheme::Swift, Scheme::SwiftR] {
        let p = protect(&m, scheme);
        Verifier::new(&p.module).verify().unwrap();
        assert_eq!(p.regions.len(), 1, "{scheme}: regions");
        let mut machine = Machine::new(&p.module, NoopHooks);
        let out = machine.run("main", &[]);
        assert!(out.returned(), "{scheme}: {:?}", out.termination);
        for (a, b) in machine.read_global("out").iter().zip(&expect) {
            assert!(a.bit_eq(*b), "{scheme}: output mismatch");
        }
        // Region markers fire under every scheme.
        assert!(out.counters.region_retired > 0, "{scheme}");
    }
}

#[test]
fn swift_r_scheme_costs_more_instructions_than_unsafe() {
    let m = reduction_module(24, 8);
    let run = |scheme| {
        let p = protect(&m, scheme);
        let mut machine = Machine::new(&p.module, NoopHooks);
        machine.run("main", &[]).counters.retired
    };
    let unsafe_n = run(Scheme::Unsafe);
    let swift_n = run(Scheme::Swift);
    let swift_r_n = run(Scheme::SwiftR);
    assert!(swift_n as f64 > 1.7 * unsafe_n as f64);
    assert!(swift_r_n as f64 > 2.5 * unsafe_n as f64);
    assert!(swift_r_n > swift_n);
}

#[test]
fn pp_with_timing_is_faster_than_swift_r_when_skipping() {
    let m = reduction_module(64, 24);
    let config = ExecConfig {
        timing: Some(rskip_exec::PipelineConfig::default()),
        ..ExecConfig::default()
    };

    let p_swift_r = protect(&m, Scheme::SwiftR);
    let mut sr = Machine::with_config(&p_swift_r.module, NoopHooks, config.clone());
    let sr_cycles = sr.run("main", &[]).counters.cycles;

    let p_rskip = protect(&m, Scheme::RSkip);
    let mut pp = Machine::with_config(&p_rskip.module, SkipAll::default(), config.clone());
    let pp_cycles = pp.run("main", &[]).counters.cycles;

    let mut unprot = Machine::with_config(&m, NoopHooks, config);
    let base_cycles = unprot.run("main", &[]).counters.cycles;

    let sr_slow = sr_cycles as f64 / base_cycles as f64;
    let pp_slow = pp_cycles as f64 / base_cycles as f64;
    assert!(
        pp_slow < sr_slow,
        "PP (skip-all) {pp_slow:.2}x vs SWIFT-R {sr_slow:.2}x"
    );
}
