//! Every workload × protected scheme must lint clean: the protection
//! passes promise full sync-point validation, and `rskip-lint` is the
//! static check of that promise. A diagnostic here means a pass bug (or a
//! linter bug), not a workload bug.

use rskip_analysis::{lint_module, ValidationModel};
use rskip_passes::{protect, Scheme};
use rskip_workloads::{all_benchmarks, SizeProfile};

fn model_for(scheme: Scheme) -> ValidationModel {
    match scheme {
        Scheme::Swift => ValidationModel::Detect,
        Scheme::SwiftR | Scheme::RSkip => ValidationModel::Vote,
        Scheme::Unsafe => unreachable!("unsafe code is never linted"),
    }
}

#[test]
fn all_workloads_lint_clean_under_all_schemes() {
    for bench in all_benchmarks() {
        let module = bench.build(SizeProfile::Tiny);
        for scheme in [Scheme::Swift, Scheme::SwiftR, Scheme::RSkip] {
            let protected = protect(&module, scheme);
            let report = lint_module(&protected.module, model_for(scheme));
            assert!(
                report.is_clean(),
                "{} under {scheme}: {} unprotected windows\n{}",
                bench.meta().name,
                report.diags.len(),
                report
                    .diags
                    .iter()
                    .take(12)
                    .map(|d| format!("  {d}\n"))
                    .collect::<String>()
            );
            assert!(
                report.map.claims() > 0,
                "{} under {scheme}: empty coverage map",
                bench.meta().name
            );
        }
    }
}

#[test]
fn unprotected_module_floods_diagnostics() {
    let module = all_benchmarks()[0].build(SizeProfile::Tiny);
    let report = lint_module(&module, ValidationModel::Detect);
    assert!(
        !report.is_clean(),
        "untransformed code must not pass the lint"
    );
}
