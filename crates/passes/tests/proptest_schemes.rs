//! Property tests: on randomly generated programs, every protection
//! scheme must preserve semantics exactly — same outputs, same
//! termination — and SWIFT-R must keep its ~3x instruction envelope.

use proptest::prelude::*;
use rskip_exec::{run_simple, Machine, NoopHooks, Termination};
use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Operand, Ty, UnOp, Value, Verifier};
use rskip_passes::{apply_swift, apply_swift_r};

/// A recipe for one loop-body instruction.
#[derive(Debug, Clone)]
enum Step {
    AddI(i64),
    MulF,
    AddF,
    Sqrt,
    LoadSig,
    StoreOut,
    CmpSel,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-4i64..5).prop_map(Step::AddI),
        Just(Step::MulF),
        Just(Step::AddF),
        Just(Step::Sqrt),
        Just(Step::LoadSig),
        Just(Step::StoreOut),
        Just(Step::CmpSel),
    ]
}

/// Builds a random-but-verifiable program: a counted loop over `n`
/// iterations whose body applies the generated steps to rolling i64/f64
/// state, loading from a signal array and storing to an output array.
fn build_program(steps: &[Step], n: i64) -> rskip_ir::Module {
    let mut mb = ModuleBuilder::new("prop");
    let sig = mb.global_init(
        "sig",
        Ty::F64,
        (0..64).map(|k| Value::F(1.0 + k as f64 * 0.25)).collect(),
    );
    let out = mb.global_zeroed("out", Ty::F64, 64);
    let mut f = mb.function("main", vec![], Some(Ty::F64));
    let entry = f.entry_block();
    let header = f.new_block("header");
    let body = f.new_block("body");
    let exit = f.new_block("exit");
    let i = f.def_reg(Ty::I64, "i");
    let ival = f.def_reg(Ty::I64, "ival");
    let fval = f.def_reg(Ty::F64, "fval");

    f.switch_to(entry);
    f.mov(i, Operand::imm_i(0));
    f.mov(ival, Operand::imm_i(1));
    f.mov(fval, Operand::imm_f(1.0));
    f.br(header);

    f.switch_to(header);
    let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(n));
    f.cond_br(Operand::reg(c), body, exit);

    f.switch_to(body);
    for step in steps {
        match step {
            Step::AddI(k) => {
                f.bin_into(
                    ival,
                    BinOp::Add,
                    Ty::I64,
                    Operand::reg(ival),
                    Operand::imm_i(*k),
                );
            }
            Step::MulF => {
                f.bin_into(
                    fval,
                    BinOp::Mul,
                    Ty::F64,
                    Operand::reg(fval),
                    Operand::imm_f(1.0625),
                );
            }
            Step::AddF => {
                f.bin_into(
                    fval,
                    BinOp::Add,
                    Ty::F64,
                    Operand::reg(fval),
                    Operand::imm_f(0.5),
                );
            }
            Step::Sqrt => {
                let a = f.un(UnOp::Abs, Ty::F64, Operand::reg(fval));
                f.un_into(fval, UnOp::Sqrt, Ty::F64, Operand::reg(a));
                f.bin_into(
                    fval,
                    BinOp::Add,
                    Ty::F64,
                    Operand::reg(fval),
                    Operand::imm_f(1.0),
                );
            }
            Step::LoadSig => {
                let m = f.bin(BinOp::Rem, Ty::I64, Operand::reg(ival), Operand::imm_i(64));
                let idx = f.un(UnOp::Abs, Ty::I64, Operand::reg(m));
                let a = f.bin(BinOp::Add, Ty::I64, Operand::global(sig), Operand::reg(idx));
                let v = f.load(Ty::F64, Operand::reg(a));
                f.bin_into(
                    fval,
                    BinOp::Add,
                    Ty::F64,
                    Operand::reg(fval),
                    Operand::reg(v),
                );
            }
            Step::StoreOut => {
                let m = f.bin(BinOp::Rem, Ty::I64, Operand::reg(i), Operand::imm_i(64));
                let a = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(m));
                f.store(Ty::F64, Operand::reg(a), Operand::reg(fval));
            }
            Step::CmpSel => {
                let c = f.cmp(
                    CmpOp::Gt,
                    Ty::F64,
                    Operand::reg(fval),
                    Operand::imm_f(100.0),
                );
                let sel = f.select(
                    Ty::F64,
                    Operand::reg(c),
                    Operand::imm_f(1.0),
                    Operand::reg(fval),
                );
                f.mov(fval, Operand::reg(sel));
            }
        }
    }
    f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
    f.br(header);

    f.switch_to(exit);
    f.ret(Some(Operand::reg(fval)));
    f.finish();
    mb.finish()
}

fn outputs(m: &rskip_ir::Module) -> (Termination, Vec<Value>, u64) {
    let mut machine = Machine::new(m, NoopHooks);
    let out = machine.run("main", &[]);
    (
        out.termination,
        machine.read_global("out").to_vec(),
        out.counters.retired,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn swift_r_preserves_random_programs(
        steps in prop::collection::vec(step_strategy(), 1..14),
        n in 1i64..40,
    ) {
        let m = build_program(&steps, n);
        Verifier::new(&m).verify().expect("generated program verifies");
        let (t0, o0, retired0) = outputs(&m);

        let mut protected = m.clone();
        apply_swift_r(&mut protected);
        Verifier::new(&protected).verify().expect("SWIFT-R output verifies");
        let (t1, o1, retired1) = outputs(&protected);

        prop_assert_eq!(&t0, &t1);
        if let (Termination::Returned(Some(a)), Termination::Returned(Some(b))) = (&t0, &t1) {
            prop_assert!(a.bit_eq(*b), "return value differs: {a:?} vs {b:?}");
        }
        for (i, (a, b)) in o0.iter().zip(&o1).enumerate() {
            prop_assert!(a.bit_eq(*b), "out[{i}] differs");
        }
        // Instruction envelope: triplication plus voting, bounded.
        prop_assert!(retired1 >= retired0, "protection cannot shrink work");
        prop_assert!(
            retired1 <= retired0 * 5,
            "SWIFT-R blew past the envelope: {retired0} -> {retired1}"
        );
    }

    #[test]
    fn swift_detection_preserves_random_programs(
        steps in prop::collection::vec(step_strategy(), 1..14),
        n in 1i64..40,
    ) {
        let m = build_program(&steps, n);
        let (t0, o0, _) = outputs(&m);
        let mut protected = m.clone();
        apply_swift(&mut protected);
        Verifier::new(&protected).verify().expect("SWIFT output verifies");
        let (t1, o1, _) = outputs(&protected);
        prop_assert_eq!(&t0, &t1);
        for (a, b) in o0.iter().zip(&o1) {
            prop_assert!(a.bit_eq(*b));
        }
    }

    #[test]
    fn swift_r_shadow_faults_are_always_harmless(
        steps in prop::collection::vec(step_strategy(), 2..10),
        trigger in 0u64..2000,
        seed in 0u64..1000,
    ) {
        // Build, mark the loop as a region, protect, inject one SEU.
        //
        // The precise TMR property: a single bit flip confined to a
        // *shadow* register can never affect the program — the majority
        // vote always has two clean copies, and shadow registers never
        // feed loads or stores directly (ECC load handling). Shadows are
        // allocated contiguously right after the original registers, so
        // they are exactly the range [n_orig, 3*n_orig).
        let m = build_program(&steps, 24);
        let f = m.function("main").unwrap();
        let cfg = rskip_analysis::Cfg::new(f);
        let dom = rskip_analysis::DomTree::new(f, &cfg);
        let forest = rskip_analysis::LoopForest::new(f, &cfg, &dom);
        prop_assume!(!forest.loops().is_empty());
        let blocks = forest.loops()[0].blocks.clone();
        let header = forest.loops()[0].header;
        let mut marked = m.clone();
        let region = marked.new_region();
        rskip_passes::add_region_markers(&mut marked, "main", &blocks, header, region);
        let n_orig = marked.function("main").unwrap().regs.len() as u32;
        apply_swift_r(&mut marked);

        let golden = {
            let mut machine = Machine::new(&marked, NoopHooks);
            let out = machine.run("main", &[]);
            prop_assert!(out.returned());
            (machine.read_global("out").to_vec(), out.termination)
        };
        let mut machine = Machine::with_config(
            &marked,
            NoopHooks,
            rskip_exec::ExecConfig { step_limit: 5_000_000, ..Default::default() },
        );
        machine.set_injection(rskip_exec::InjectionPlan {
            trigger,
            seed,
            anywhere: false,
            model: rskip_exec::FaultModel::SingleBitSeu,
        });
        let out = machine.run("main", &[]);
        if let Some(rec) = &out.injection {
            let reg = rec.effect.reg().map_or(u32::MAX, |r| r.0);
            if rec.function == "main" && reg >= n_orig && reg < 3 * n_orig {
                prop_assert_eq!(&out.termination, &golden.1, "shadow fault changed termination");
                for (i, (a, b)) in machine.read_global("out").iter().zip(&golden.0).enumerate() {
                    prop_assert!(a.bit_eq(*b), "shadow fault corrupted out[{i}]");
                }
            }
        }
        let _ = run_simple(&marked, "main", &[]); // smoke: determinism
    }
}
