//! Property test: any module generated through the builder prints to text
//! that parses back to an identical module, and verifies.

use proptest::prelude::*;
use rskip_ir::{BinOp, CmpOp, Intrinsic, ModuleBuilder, Operand, Reg, Ty, UnOp, Value, Verifier};

#[derive(Debug, Clone)]
enum GenInst {
    MovI(i64),
    MovF(f64),
    Bin(u8, bool), // op selector, int/float
    Un(u8),
    Cmp(u8, bool),
    Select,
    LoadStore(bool), // load or store
    Intr(u8),
}

fn gen_inst() -> impl Strategy<Value = GenInst> {
    prop_oneof![
        any::<i64>().prop_map(GenInst::MovI),
        // Finite floats only: NaN breaks PartialEq-based round-trip
        // comparison (bit-level equality still holds, tested separately).
        prop::num::f64::NORMAL.prop_map(GenInst::MovF),
        (0u8..12, any::<bool>()).prop_map(|(o, i)| GenInst::Bin(o, i)),
        (0u8..9).prop_map(GenInst::Un),
        (0u8..6, any::<bool>()).prop_map(|(o, i)| GenInst::Cmp(o, i)),
        Just(GenInst::Select),
        any::<bool>().prop_map(GenInst::LoadStore),
        (0u8..3).prop_map(GenInst::Intr),
    ]
}

/// Builds a verifiable single-function module from a generated instruction
/// recipe. Keeps one i64 and one f64 "seed" register live so every
/// generated instruction has well-typed operands available.
fn build_module(insts: &[GenInst]) -> rskip_ir::Module {
    let mut mb = ModuleBuilder::new("prop");
    let g = mb.global_zeroed("mem", Ty::F64, 8);
    let gi = mb.global_init("ints", Ty::I64, vec![Value::I(5), Value::I(9)]);
    let mut f = mb.function("main", vec![Ty::I64, Ty::F64], Some(Ty::I64));
    let mut ival: Reg = f.param(0);
    let mut fval: Reg = f.param(1);

    for gi_inst in insts {
        match gi_inst {
            GenInst::MovI(v) => ival = f.mov_new(Ty::I64, Operand::imm_i(*v)),
            GenInst::MovF(v) => fval = f.mov_new(Ty::F64, Operand::imm_f(*v)),
            GenInst::Bin(op, is_int) => {
                let op = BinOp::ALL[*op as usize % BinOp::ALL.len()];
                if *is_int || op.int_only() {
                    ival = f.bin(op, Ty::I64, Operand::reg(ival), Operand::imm_i(3));
                } else {
                    fval = f.bin(op, Ty::F64, Operand::reg(fval), Operand::imm_f(2.0));
                }
            }
            GenInst::Un(op) => {
                let op = UnOp::ALL[*op as usize % UnOp::ALL.len()];
                match op {
                    UnOp::Not => ival = f.un(op, Ty::I64, Operand::reg(ival)),
                    UnOp::IntToFloat => fval = f.un(op, Ty::F64, Operand::reg(ival)),
                    UnOp::FloatToInt => ival = f.un(op, Ty::I64, Operand::reg(fval)),
                    UnOp::Neg | UnOp::Abs => {
                        fval = f.un(op, Ty::F64, Operand::reg(fval));
                    }
                    _ => fval = f.un(op, Ty::F64, Operand::reg(fval)),
                }
            }
            GenInst::Cmp(op, is_int) => {
                let op = CmpOp::ALL[*op as usize % CmpOp::ALL.len()];
                ival = if *is_int {
                    f.cmp(op, Ty::I64, Operand::reg(ival), Operand::imm_i(0))
                } else {
                    f.cmp(op, Ty::F64, Operand::reg(fval), Operand::imm_f(0.0))
                };
            }
            GenInst::Select => {
                fval = f.select(
                    Ty::F64,
                    Operand::reg(ival),
                    Operand::reg(fval),
                    Operand::imm_f(1.0),
                );
            }
            GenInst::LoadStore(true) => {
                fval = f.load(Ty::F64, Operand::global(g));
            }
            GenInst::LoadStore(false) => {
                f.store(Ty::I64, Operand::global(gi), Operand::reg(ival));
            }
            GenInst::Intr(k) => match k % 3 {
                0 => {
                    f.intrinsic(Intrinsic::RegionEnter, vec![Operand::imm_i(0)]);
                }
                1 => {
                    ival = f
                        .intrinsic(Intrinsic::SelectVersion, vec![Operand::imm_i(0)])
                        .unwrap();
                }
                _ => {
                    f.intrinsic(Intrinsic::Print, vec![Operand::reg(fval)]);
                }
            },
        }
    }
    f.ret(Some(Operand::reg(ival)));
    f.finish();
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(insts in prop::collection::vec(gen_inst(), 0..60)) {
        let module = build_module(&insts);
        Verifier::new(&module).verify().expect("generated module must verify");
        let text = rskip_ir::print_module(&module);
        let parsed = rskip_ir::parse_module(&text)
            .unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        prop_assert_eq!(&parsed, &module);
        // Idempotence: printing the parsed module gives identical text.
        prop_assert_eq!(rskip_ir::print_module(&parsed), text);
    }

    #[test]
    fn value_bit_flip_involution(bits in any::<u64>(), bit in 0u32..64, is_float in any::<bool>()) {
        let ty = if is_float { Ty::F64 } else { Ty::I64 };
        let v = Value::from_bits(ty, bits);
        let flipped = v.with_bit_flipped(bit);
        prop_assert!(!flipped.bit_eq(v));
        prop_assert!(flipped.with_bit_flipped(bit).bit_eq(v));
        prop_assert_eq!(flipped.ty(), ty);
    }
}
