//! Source-located diagnostic spans.
//!
//! Analyses and verifiers report problems against concrete instruction
//! positions. [`InstLoc`] is the shared span type: function, block and
//! instruction index (or the block terminator), displayed in the same
//! `block[i]` shape the verifier's error strings use, so diagnostics from
//! different layers read uniformly.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::function::BlockId;

/// The location of one instruction (or terminator) inside a module.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InstLoc {
    /// Name of the containing function.
    pub function: String,
    /// The containing block.
    pub block: BlockId,
    /// The block's human-readable label.
    pub block_name: String,
    /// Instruction index within the block; `None` designates the
    /// terminator.
    pub index: Option<usize>,
}

impl InstLoc {
    /// A span for instruction `index` of `block`.
    pub fn inst(
        function: impl Into<String>,
        block: BlockId,
        block_name: impl Into<String>,
        index: usize,
    ) -> Self {
        InstLoc {
            function: function.into(),
            block,
            block_name: block_name.into(),
            index: Some(index),
        }
    }

    /// A span for the terminator of `block`.
    pub fn term(
        function: impl Into<String>,
        block: BlockId,
        block_name: impl Into<String>,
    ) -> Self {
        InstLoc {
            function: function.into(),
            block,
            block_name: block_name.into(),
            index: None,
        }
    }

    /// The `block[i]` / `block[term]` suffix (the verifier's location
    /// string format, without the function).
    pub fn position(&self) -> String {
        match self.index {
            Some(i) => format!("{}[{}]", self.block_name, i),
            None => format!("{}[term]", self.block_name),
        }
    }
}

impl fmt::Display for InstLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} at {}", self.function, self.position())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_like_verifier_locations() {
        let l = InstLoc::inst("main", BlockId(2), "body", 3);
        assert_eq!(l.position(), "body[3]");
        assert_eq!(l.to_string(), "@main at body[3]");
        let t = InstLoc::term("main", BlockId(2), "body");
        assert_eq!(t.position(), "body[term]");
        assert_ne!(l, t);
    }
}
