//! # rskip-ir — the RSkip compiler intermediate representation
//!
//! This crate defines the compiler IR used throughout the RSkip system, a
//! reproduction of *"Low-Cost Prediction-Based Fault Protection Strategy"*
//! (CGO 2020). The original system was built on LLVM; this crate provides the
//! subset of compiler infrastructure the RSkip transformations actually rely
//! on, re-implemented from scratch:
//!
//! * a typed, register-based IR with explicit basic blocks ([`Inst`],
//!   [`Terminator`], [`Function`], [`Module`]),
//! * a construction API ([`FunctionBuilder`], [`ModuleBuilder`]),
//! * a structural/type [`Verifier`],
//! * a pretty-printer and a parser for a stable textual format that
//!   round-trips ([`print_module`], [`parse_module`]).
//!
//! ## Design notes
//!
//! The IR deliberately keeps the properties the protection passes depend on:
//!
//! * **Unlimited virtual registers** — instruction duplication (SWIFT,
//!   SWIFT-R) allocates shadow registers freely.
//! * **Explicit loads and stores** — stores are the synchronization points of
//!   the protection schemes; memory is assumed ECC-protected (as in the
//!   paper), so only register state is ever a fault target.
//! * **Two value types**, [`Ty::I64`] and [`Ty::F64`]. Addresses are `i64`
//!   cell indices into the flat memory of the execution substrate.
//! * **Runtime intrinsics** ([`Intrinsic`]) — the hooks the RSkip transform
//!   inserts to drive the prediction runtime (observe / pending / resolve /
//!   version selection).
//!
//! ## Example
//!
//! ```
//! use rskip_ir::{ModuleBuilder, Ty, BinOp, CmpOp, UnOp, Operand};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let out = mb.global_zeroed("out", Ty::F64, 8);
//! let mut f = mb.function("fill", vec![], None);
//! let entry = f.entry_block();
//! let body = f.new_block("body");
//! let exit = f.new_block("exit");
//!
//! let i = f.def_reg(Ty::I64, "i");
//! f.switch_to(entry);
//! f.mov(i, Operand::imm_i(0));
//! f.br(body);
//!
//! f.switch_to(body);
//! let fi = f.un(UnOp::IntToFloat, Ty::F64, Operand::reg(i));
//! let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
//! f.store(Ty::F64, Operand::reg(addr), Operand::reg(fi));
//! f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
//! let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(8));
//! f.cond_br(Operand::reg(c), body, exit);
//!
//! f.switch_to(exit);
//! f.ret(None);
//! f.finish();
//!
//! let module = mb.finish();
//! rskip_ir::Verifier::new(&module).verify().unwrap();
//! ```

#![deny(missing_docs)]

mod builder;
mod error;
mod function;
mod inst;
mod module;
mod parser;
mod printer;
mod span;
mod types;
mod verifier;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use error::{ParseIrError, VerifyError};
pub use function::{Block, BlockId, FuncAttrs, Function, LoopHint, RegInfo};
pub use inst::{BinOp, CmpOp, Inst, Intrinsic, Terminator, UnOp};
pub use module::{Global, GlobalId, Module, RegionId};
pub use parser::parse_module;
pub use printer::{print_function, print_module};
pub use span::InstLoc;
pub use types::{Operand, Reg, Ty, Value};
pub use verifier::Verifier;
