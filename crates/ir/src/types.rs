//! Core value-level types: [`Ty`], [`Value`], [`Reg`] and [`Operand`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::module::GlobalId;

/// The type of a register, memory cell or immediate.
///
/// The RSkip IR is deliberately small: 64-bit integers (also used as memory
/// addresses, i.e. cell indices) and 64-bit IEEE-754 floats. This mirrors the
/// value classes the paper's prediction models operate on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer (also used for addresses and booleans 0/1).
    I64,
    /// 64-bit IEEE-754 floating point.
    F64,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "i64"),
            Ty::F64 => write!(f, "f64"),
        }
    }
}

/// A runtime value: one memory cell or register content.
///
/// `Value` is shared between the IR (global initializers) and the execution
/// substrate (register files, memory cells, fault injection). A Single Event
/// Upset flips one bit of the 64-bit representation returned by
/// [`Value::bits`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    I(i64),
    /// A floating-point value.
    F(f64),
}

impl Value {
    /// Returns the type of this value.
    pub fn ty(self) -> Ty {
        match self {
            Value::I(_) => Ty::I64,
            Value::F(_) => Ty::F64,
        }
    }

    /// Returns the zero value of the given type.
    pub fn zero(ty: Ty) -> Self {
        match ty {
            Ty::I64 => Value::I(0),
            Ty::F64 => Value::F(0.0),
        }
    }

    /// Interprets the value as an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float; the verifier guarantees well-typed
    /// programs never hit this.
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => panic!("expected i64 value, found f64 {v}"),
        }
    }

    /// Interprets the value as a float.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(v) => panic!("expected f64 value, found i64 {v}"),
        }
    }

    /// The raw 64-bit representation (two's complement / IEEE-754 bits).
    pub fn bits(self) -> u64 {
        match self {
            Value::I(v) => v as u64,
            Value::F(v) => v.to_bits(),
        }
    }

    /// Rebuilds a value of type `ty` from a raw 64-bit representation.
    pub fn from_bits(ty: Ty, bits: u64) -> Self {
        match ty {
            Ty::I64 => Value::I(bits as i64),
            Ty::F64 => Value::F(f64::from_bits(bits)),
        }
    }

    /// Returns a copy with bit `bit` (0..64) of the representation flipped.
    ///
    /// This is the Single Event Upset primitive of the fault model.
    pub fn with_bit_flipped(self, bit: u32) -> Self {
        debug_assert!(bit < 64, "bit index out of range: {bit}");
        Value::from_bits(self.ty(), self.bits() ^ (1u64 << bit))
    }

    /// Returns a copy with every bit set in `mask` flipped in the
    /// representation.
    ///
    /// This is the multi-bit generalization of [`Value::with_bit_flipped`]
    /// used by burst fault models (a contiguous mask models a
    /// charge-sharing multi-bit upset, but any mask is accepted).
    pub fn with_bits_flipped(self, mask: u64) -> Self {
        Value::from_bits(self.ty(), self.bits() ^ mask)
    }

    /// Bit-exact equality (distinguishes `-0.0` from `0.0`, and compares
    /// NaNs by representation). Used for output comparison, where the paper
    /// counts *any* deviation as corrupted output.
    pub fn bit_eq(self, other: Self) -> bool {
        self.ty() == other.ty() && self.bits() == other.bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::F(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}

/// A virtual register, local to a [`Function`](crate::Function).
///
/// Registers are typed; the register table lives on the function
/// ([`Function::regs`](crate::Function::regs)). The IR is *not* SSA: loop
/// induction variables are updated in place with [`Inst::Mov`](crate::Inst)
/// or `*_into` builder forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u32);

impl Reg {
    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// An instruction operand: a register, an immediate, or a global's base
/// address.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Reg),
    /// An `i64` immediate.
    ImmI(i64),
    /// An `f64` immediate.
    ImmF(f64),
    /// The base address (cell index) of a global array, resolved at module
    /// load time by the execution substrate. Typed `i64`.
    Global(GlobalId),
}

impl Operand {
    /// Shorthand for `Operand::Reg(r)`.
    pub fn reg(r: Reg) -> Self {
        Operand::Reg(r)
    }

    /// Shorthand for `Operand::ImmI(v)`.
    pub fn imm_i(v: i64) -> Self {
        Operand::ImmI(v)
    }

    /// Shorthand for `Operand::ImmF(v)`.
    pub fn imm_f(v: f64) -> Self {
        Operand::ImmF(v)
    }

    /// Shorthand for `Operand::Global(g)`.
    pub fn global(g: GlobalId) -> Self {
        Operand::Global(g)
    }

    /// Returns the register if this operand reads one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// True if this operand does not read any register (immediate or global
    /// base address, both of which are fault-immune constants).
    pub fn is_const(self) -> bool {
        !matches!(self, Operand::Reg(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bits_roundtrip_int() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42] {
            let val = Value::I(v);
            assert_eq!(Value::from_bits(Ty::I64, val.bits()), val);
        }
    }

    #[test]
    fn value_bits_roundtrip_float() {
        for v in [0.0f64, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -3.25e100] {
            let val = Value::F(v);
            assert!(Value::from_bits(Ty::F64, val.bits()).bit_eq(val));
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let v = Value::I(0x1234_5678_9abc_def0);
        for bit in 0..64 {
            let flipped = v.with_bit_flipped(bit);
            assert_eq!((flipped.bits() ^ v.bits()).count_ones(), 1);
            assert!(flipped.with_bit_flipped(bit).bit_eq(v));
        }
    }

    #[test]
    fn mask_flip_flips_exactly_the_mask() {
        let v = Value::I(0x1234_5678_9abc_def0);
        for mask in [0u64, 1, 0b1111 << 3, !0, 0xFF << 56] {
            let flipped = v.with_bits_flipped(mask);
            assert_eq!(flipped.bits() ^ v.bits(), mask);
            assert!(flipped.with_bits_flipped(mask).bit_eq(v));
        }
        assert_eq!(Value::F(1.5).with_bits_flipped(0xF0).ty(), Ty::F64);
    }

    #[test]
    fn bit_flip_preserves_type() {
        assert_eq!(Value::F(1.0).with_bit_flipped(63).ty(), Ty::F64);
        assert_eq!(Value::I(1).with_bit_flipped(0).ty(), Ty::I64);
    }

    #[test]
    fn bit_eq_distinguishes_negative_zero() {
        assert!(!Value::F(0.0).bit_eq(Value::F(-0.0)));
        assert!(Value::F(0.0) == Value::F(-0.0)); // but PartialEq follows f64
    }

    #[test]
    fn bit_eq_compares_nan_by_representation() {
        let nan = Value::F(f64::NAN);
        assert!(nan.bit_eq(nan));
        assert!(nan != nan); // PartialEq follows IEEE
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(Ty::I64), Value::I(0));
        assert!(Value::zero(Ty::F64).bit_eq(Value::F(0.0)));
    }

    #[test]
    fn operand_constness() {
        assert!(Operand::imm_i(3).is_const());
        assert!(Operand::imm_f(3.0).is_const());
        assert!(Operand::global(GlobalId(0)).is_const());
        assert!(!Operand::reg(Reg(0)).is_const());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::I64.to_string(), "i64");
        assert_eq!(Ty::F64.to_string(), "f64");
        assert_eq!(Reg(7).to_string(), "%7");
        assert_eq!(Value::I(-3).to_string(), "-3");
        assert_eq!(Value::F(2.0).to_string(), "2.0");
    }
}
