//! Construction API: [`ModuleBuilder`] and [`FunctionBuilder`].

use crate::function::{BlockId, Function, LoopHint};
use crate::inst::{BinOp, CmpOp, Inst, Intrinsic, Terminator, UnOp};
use crate::module::{Global, GlobalId, Module, RegionId};
use crate::types::{Operand, Reg, Ty, Value};

/// Builds a [`Module`] incrementally.
///
/// # Example
///
/// ```
/// use rskip_ir::{ModuleBuilder, Ty, Operand};
///
/// let mut mb = ModuleBuilder::new("m");
/// let g = mb.global_zeroed("buf", Ty::F64, 4);
/// let mut f = mb.function("main", vec![], Some(Ty::I64));
/// let entry = f.entry_block();
/// f.switch_to(entry);
/// f.store(Ty::F64, Operand::global(g), Operand::imm_f(1.5));
/// f.ret(Some(Operand::imm_i(0)));
/// f.finish();
/// let module = mb.finish();
/// assert_eq!(module.globals.len(), 1);
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates a builder for an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Adds a zero-initialized global array.
    pub fn global_zeroed(&mut self, name: impl Into<String>, ty: Ty, len: usize) -> GlobalId {
        self.module.add_global(Global::zeroed(name, ty, len))
    }

    /// Adds a global array with an explicit initializer.
    ///
    /// # Panics
    ///
    /// Panics if any initializer value has a different type than `ty`.
    pub fn global_init(&mut self, name: impl Into<String>, ty: Ty, init: Vec<Value>) -> GlobalId {
        assert!(
            init.iter().all(|v| v.ty() == ty),
            "global initializer type mismatch"
        );
        let len = init.len();
        self.module.add_global(Global {
            name: name.into(),
            ty,
            len,
            init: Some(init),
        })
    }

    /// Starts building a function. The returned builder borrows this module
    /// builder; call [`FunctionBuilder::finish`] to commit the function.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: Vec<Ty>,
        ret: Option<Ty>,
    ) -> FunctionBuilder<'_> {
        FunctionBuilder::new(self, Function::new(name, params, ret))
    }

    /// Allocates a protection-region id (used by tests; the RSkip transform
    /// normally allocates regions itself).
    pub fn new_region(&mut self) -> RegionId {
        self.module.new_region()
    }

    /// Direct access to the module under construction.
    pub fn module_mut(&mut self) -> &mut Module {
        &mut self.module
    }

    /// Finishes and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Builds one [`Function`] inside a [`ModuleBuilder`].
///
/// The builder keeps a *current block*; instruction-emitting methods append
/// to it. Every block must receive exactly one terminator before
/// [`finish`](Self::finish) is called.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    mb: &'a mut ModuleBuilder,
    func: Function,
    cur: BlockId,
    terminated: Vec<bool>,
}

impl<'a> FunctionBuilder<'a> {
    fn new(mb: &'a mut ModuleBuilder, func: Function) -> Self {
        FunctionBuilder {
            mb,
            func,
            cur: BlockId(0),
            terminated: vec![false],
        }
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        self.func.entry()
    }

    /// Appends a new empty block.
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        self.terminated.push(false);
        self.func.add_block(name)
    }

    /// Makes `block` the current block for subsequent instructions.
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(block.index() < self.func.blocks.len(), "no such block");
        self.cur = block;
    }

    /// The current block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// The register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.func.params.len(), "parameter index out of range");
        Reg(i as u32)
    }

    /// Allocates a fresh named register (not yet defined by any
    /// instruction).
    pub fn def_reg(&mut self, ty: Ty, name: impl Into<String>) -> Reg {
        self.func.new_named_reg(ty, name)
    }

    /// The type of a register.
    pub fn reg_ty(&self, r: Reg) -> Ty {
        self.func.reg_ty(r)
    }

    fn push(&mut self, inst: Inst) {
        assert!(
            !self.terminated[self.cur.index()],
            "appending to terminated block {}",
            self.func.block(self.cur).name
        );
        self.func.block_mut(self.cur).insts.push(inst);
    }

    fn set_term(&mut self, term: Terminator) {
        assert!(
            !self.terminated[self.cur.index()],
            "block {} already terminated",
            self.func.block(self.cur).name
        );
        self.func.block_mut(self.cur).term = term;
        self.terminated[self.cur.index()] = true;
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Operand) {
        let ty = self.func.reg_ty(dst);
        self.push(Inst::Mov { ty, dst, src });
    }

    /// Materializes `src` into a fresh register of type `ty`.
    pub fn mov_new(&mut self, ty: Ty, src: Operand) -> Reg {
        let dst = self.func.new_reg(ty);
        self.push(Inst::Mov { ty, dst, src });
        dst
    }

    /// `fresh = op(lhs, rhs)`; returns the fresh destination.
    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.func.new_reg(ty);
        self.push(Inst::Bin {
            ty,
            op,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// `dst = op(lhs, rhs)` into an existing register (loop updates).
    pub fn bin_into(&mut self, dst: Reg, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) {
        self.push(Inst::Bin {
            ty,
            op,
            dst,
            lhs,
            rhs,
        });
    }

    /// `fresh = op(src)`.
    pub fn un(&mut self, op: UnOp, ty: Ty, src: Operand) -> Reg {
        let dst = self.func.new_reg(ty);
        self.push(Inst::Un { ty, op, dst, src });
        dst
    }

    /// `dst = op(src)` into an existing register.
    pub fn un_into(&mut self, dst: Reg, op: UnOp, ty: Ty, src: Operand) {
        self.push(Inst::Un { ty, op, dst, src });
    }

    /// `fresh = (lhs op rhs)`; destination is `i64`.
    pub fn cmp(&mut self, op: CmpOp, ty: Ty, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.func.new_reg(Ty::I64);
        self.push(Inst::Cmp {
            ty,
            op,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// `fresh = cond ? on_true : on_false`.
    pub fn select(&mut self, ty: Ty, cond: Operand, on_true: Operand, on_false: Operand) -> Reg {
        let dst = self.func.new_reg(ty);
        self.push(Inst::Select {
            ty,
            dst,
            cond,
            on_true,
            on_false,
        });
        dst
    }

    /// `fresh = memory[addr]`.
    pub fn load(&mut self, ty: Ty, addr: Operand) -> Reg {
        let dst = self.func.new_reg(ty);
        self.push(Inst::Load { ty, dst, addr });
        dst
    }

    /// `dst = memory[addr]` into an existing register.
    pub fn load_into(&mut self, dst: Reg, ty: Ty, addr: Operand) {
        self.push(Inst::Load { ty, dst, addr });
    }

    /// `memory[addr] = value`.
    pub fn store(&mut self, ty: Ty, addr: Operand, value: Operand) {
        self.push(Inst::Store { ty, addr, value });
    }

    /// Calls `callee(args...)`; when `ret_ty` is given a fresh destination
    /// register is allocated and returned. The verifier checks the call
    /// against the callee's actual signature once the module is complete.
    pub fn call(
        &mut self,
        callee: impl Into<String>,
        args: Vec<Operand>,
        ret_ty: Option<Ty>,
    ) -> Option<Reg> {
        let dst = ret_ty.map(|ty| self.func.new_reg(ty));
        self.push(Inst::Call {
            dst,
            callee: callee.into(),
            args,
        });
        dst
    }

    /// Emits an intrinsic call; value-producing intrinsics get a fresh
    /// destination register.
    pub fn intrinsic(&mut self, intr: Intrinsic, args: Vec<Operand>) -> Option<Reg> {
        let dst = intr.result_ty().map(|ty| self.func.new_reg(ty));
        self.push(Inst::IntrinsicCall { dst, intr, args });
        dst
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.set_term(Terminator::Br(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Operand, on_true: BlockId, on_false: BlockId) {
        self.set_term(Terminator::CondBr(cond, on_true, on_false));
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.set_term(Terminator::Ret(value));
    }

    /// Attaches a loop hint (the paper's pragma mechanism) to a header
    /// block.
    pub fn hint(&mut self, header: BlockId, no_alias: bool, acceptable_range: Option<f64>) {
        self.func.loop_hints.push(LoopHint {
            header,
            no_alias,
            acceptable_range,
        });
    }

    /// Marks the function as exempt from the protection passes.
    pub fn set_unprotected(&mut self) {
        self.func.attrs.protect = false;
    }

    /// Commits the function to the module.
    ///
    /// # Panics
    ///
    /// Panics if any block was never terminated — that is a builder usage
    /// bug, not a recoverable condition.
    pub fn finish(self) -> usize {
        for (i, done) in self.terminated.iter().enumerate() {
            assert!(
                done,
                "block {} of function {} lacks a terminator",
                self.func.blocks[i].name, self.func.name
            );
        }
        self.mb.module.add_function(self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_counted_loop() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_zeroed("out", Ty::I64, 10);
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let entry = f.entry_block();
        let body = f.new_block("body");
        let exit = f.new_block("exit");

        let i = f.def_reg(Ty::I64, "i");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(body);

        f.switch_to(body);
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::reg(i));
        f.store(Ty::I64, Operand::reg(addr), Operand::reg(i));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(10));
        f.cond_br(Operand::reg(c), body, exit);

        f.switch_to(exit);
        f.ret(Some(Operand::imm_i(0)));
        f.finish();

        let m = mb.finish();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].blocks.len(), 3);
        crate::Verifier::new(&m).verify().unwrap();
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics_on_finish() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.function("f", vec![], None);
        f.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_termination_panics() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        f.ret(None);
        f.ret(None);
    }

    #[test]
    #[should_panic(expected = "global initializer type mismatch")]
    fn global_init_type_mismatch_panics() {
        let mut mb = ModuleBuilder::new("m");
        mb.global_init("g", Ty::F64, vec![Value::I(1)]);
    }

    #[test]
    fn call_and_intrinsic_results() {
        let mut mb = ModuleBuilder::new("m");
        let mut callee = mb.function("callee", vec![Ty::I64], Some(Ty::I64));
        let p = callee.param(0);
        callee.ret(Some(Operand::reg(p)));
        callee.finish();

        let mut f = mb.function("main", vec![], None);
        let r = f.call("callee", vec![Operand::imm_i(1)], Some(Ty::I64));
        assert!(r.is_some());
        let v = f.intrinsic(Intrinsic::SelectVersion, vec![Operand::imm_i(0)]);
        assert!(v.is_some());
        let none = f.intrinsic(Intrinsic::RegionEnter, vec![Operand::imm_i(0)]);
        assert!(none.is_none());
        f.ret(None);
        f.finish();
    }
}
