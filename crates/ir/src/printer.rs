//! Pretty-printer for the textual IR format.
//!
//! The format round-trips through [`parse_module`](crate::parse_module);
//! the property test in the parser module checks `parse(print(m)) == m` up
//! to cosmetic details.

use std::fmt::Write;

use crate::function::Function;
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use crate::types::{Operand, Ty, Value};

fn fmt_float(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        // `{:?}` keeps enough digits for exact f64 round-trips and always
        // includes a `.` or exponent, which the parser uses to recognize
        // float literals.
        format!("{v:?}")
    }
}

fn fmt_operand(m: &Module, op: Operand) -> String {
    match op {
        Operand::Reg(r) => format!("%{}", r.0),
        Operand::ImmI(v) => format!("{v}"),
        Operand::ImmF(v) => fmt_float(v),
        Operand::Global(g) => format!("@{}", m.global(g).name),
    }
}

fn fmt_ty(ty: Ty) -> &'static str {
    match ty {
        Ty::I64 => "i64",
        Ty::F64 => "f64",
    }
}

fn fmt_args(m: &Module, args: &[Operand]) -> String {
    args.iter()
        .map(|a| fmt_operand(m, *a))
        .collect::<Vec<_>>()
        .join(", ")
}

fn write_inst(out: &mut String, m: &Module, inst: &Inst) {
    let line = match inst {
        Inst::Mov { ty, dst, src } => {
            format!("%{} = mov.{} {}", dst.0, fmt_ty(*ty), fmt_operand(m, *src))
        }
        Inst::Bin {
            ty,
            op,
            dst,
            lhs,
            rhs,
        } => format!(
            "%{} = {}.{} {}, {}",
            dst.0,
            op.mnemonic(),
            fmt_ty(*ty),
            fmt_operand(m, *lhs),
            fmt_operand(m, *rhs)
        ),
        Inst::Un { ty, op, dst, src } => format!(
            "%{} = {}.{} {}",
            dst.0,
            op.mnemonic(),
            fmt_ty(*ty),
            fmt_operand(m, *src)
        ),
        Inst::Cmp {
            ty,
            op,
            dst,
            lhs,
            rhs,
        } => format!(
            "%{} = cmp.{}.{} {}, {}",
            dst.0,
            op.mnemonic(),
            fmt_ty(*ty),
            fmt_operand(m, *lhs),
            fmt_operand(m, *rhs)
        ),
        Inst::Select {
            ty,
            dst,
            cond,
            on_true,
            on_false,
        } => format!(
            "%{} = select.{} {}, {}, {}",
            dst.0,
            fmt_ty(*ty),
            fmt_operand(m, *cond),
            fmt_operand(m, *on_true),
            fmt_operand(m, *on_false)
        ),
        Inst::Load { ty, dst, addr } => format!(
            "%{} = load.{} {}",
            dst.0,
            fmt_ty(*ty),
            fmt_operand(m, *addr)
        ),
        Inst::Store { ty, addr, value } => format!(
            "store.{} {}, {}",
            fmt_ty(*ty),
            fmt_operand(m, *addr),
            fmt_operand(m, *value)
        ),
        Inst::Call { dst, callee, args } => match dst {
            Some(d) => format!("%{} = call @{}({})", d.0, callee, fmt_args(m, args)),
            None => format!("call @{}({})", callee, fmt_args(m, args)),
        },
        Inst::IntrinsicCall { dst, intr, args } => match dst {
            Some(d) => format!("%{} = rskip.{}({})", d.0, intr.name(), fmt_args(m, args)),
            None => format!("rskip.{}({})", intr.name(), fmt_args(m, args)),
        },
    };
    let _ = writeln!(out, "  {line}");
}

fn write_term(out: &mut String, m: &Module, f: &Function, term: &Terminator) {
    let line = match term {
        Terminator::Br(b) => format!("br {}", block_label(f, *b)),
        Terminator::CondBr(c, t, fl) => format!(
            "condbr {}, {}, {}",
            fmt_operand(m, *c),
            block_label(f, *t),
            block_label(f, *fl)
        ),
        Terminator::Ret(Some(v)) => format!("ret {}", fmt_operand(m, *v)),
        Terminator::Ret(None) => "ret".to_string(),
    };
    let _ = writeln!(out, "  {line}");
}

fn block_label(f: &Function, b: crate::BlockId) -> String {
    let _ = f;
    format!("bb{}", b.0)
}

/// Prints one function in the textual format.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params = f
        .params
        .iter()
        .enumerate()
        .map(|(i, ty)| {
            // Print non-default parameter names so they round-trip.
            match &f.regs[i].name {
                Some(n) if n != &format!("arg{i}") => {
                    format!("%{}: {} \"{}\"", i, fmt_ty(*ty), n)
                }
                Some(_) => format!("%{}: {}", i, fmt_ty(*ty)),
                None => format!("%{}: {} \"\"", i, fmt_ty(*ty)),
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    let ret = match f.ret {
        Some(ty) => fmt_ty(ty).to_string(),
        None => "void".to_string(),
    };
    let _ = writeln!(out, "func @{}({}) -> {} {{", f.name, params, ret);

    if f.attrs.outlined || !f.attrs.protect {
        let mut attrs = Vec::new();
        if f.attrs.outlined {
            attrs.push("outlined");
        }
        if !f.attrs.protect {
            attrs.push("noprotect");
        }
        let _ = writeln!(out, "  attrs {}", attrs.join(" "));
    }

    // Non-parameter registers.
    if f.regs.len() > f.params.len() {
        let decls = f.regs[f.params.len()..]
            .iter()
            .enumerate()
            .map(|(i, info)| {
                let idx = i + f.params.len();
                match &info.name {
                    Some(n) => format!("%{}: {} \"{}\"", idx, fmt_ty(info.ty), n),
                    None => format!("%{}: {}", idx, fmt_ty(info.ty)),
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  regs {decls}");
    }

    for hint in &f.loop_hints {
        let mut line = format!("  hint bb{}", hint.header.0);
        if hint.no_alias {
            line.push_str(" no_alias");
        }
        if let Some(ar) = hint.acceptable_range {
            let _ = write!(line, " ar={}", fmt_float(ar));
        }
        let _ = writeln!(out, "{line}");
    }

    for (id, block) in f.iter_blocks() {
        let _ = writeln!(out, "bb{} \"{}\":", id.0, block.name);
        for inst in &block.insts {
            write_inst(&mut out, m, inst);
        }
        write_term(&mut out, m, f, &block.term);
    }
    out.push_str("}\n");
    out
}

/// Prints the whole module in the textual format.
///
/// # Example
///
/// ```
/// use rskip_ir::{ModuleBuilder, Ty, Operand};
/// let mut mb = ModuleBuilder::new("m");
/// mb.global_zeroed("buf", Ty::F64, 2);
/// let mut f = mb.function("main", vec![], None);
/// f.ret(None);
/// f.finish();
/// let text = rskip_ir::print_module(&mb.finish());
/// assert!(text.contains("global @buf : f64[2]"));
/// ```
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\" regions {}", m.name, m.num_regions);
    out.push('\n');
    for g in &m.globals {
        match &g.init {
            None => {
                let _ = writeln!(out, "global @{} : {}[{}]", g.name, fmt_ty(g.ty), g.len);
            }
            Some(values) => {
                let vals = values
                    .iter()
                    .map(|v| match v {
                        Value::I(i) => format!("{i}"),
                        Value::F(x) => fmt_float(*x),
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "global @{} : {}[{}] = [{}]",
                    g.name,
                    fmt_ty(g.ty),
                    g.len,
                    vals
                );
            }
        }
    }
    for f in &m.functions {
        out.push('\n');
        out.push_str(&print_function(m, f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, CmpOp, Intrinsic};
    use crate::types::Operand;

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("sample");
        let g = mb.global_zeroed("data", Ty::F64, 4);
        mb.global_init("ones", Ty::I64, vec![Value::I(1), Value::I(2)]);
        let mut f = mb.function("main", vec![Ty::I64], Some(Ty::I64));
        let entry = f.entry_block();
        let exit = f.new_block("exit");
        f.switch_to(entry);
        let p = f.param(0);
        let x = f.bin(BinOp::Add, Ty::I64, Operand::reg(p), Operand::imm_i(1));
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(x), Operand::imm_i(10));
        f.intrinsic(Intrinsic::RegionEnter, vec![Operand::imm_i(0)]);
        f.store(Ty::F64, Operand::global(g), Operand::imm_f(1.5));
        f.cond_br(Operand::reg(c), exit, exit);
        f.switch_to(exit);
        f.ret(Some(Operand::reg(x)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn prints_module_header_and_globals() {
        let text = print_module(&sample_module());
        assert!(text.starts_with("module \"sample\" regions 0"));
        assert!(text.contains("global @data : f64[4]"));
        assert!(text.contains("global @ones : i64[2] = [1, 2]"));
    }

    #[test]
    fn prints_instructions() {
        let text = print_module(&sample_module());
        assert!(text.contains("= add.i64 %0, 1"), "{text}");
        assert!(text.contains("= cmp.lt.i64"), "{text}");
        assert!(text.contains("rskip.region_enter(0)"), "{text}");
        assert!(text.contains("store.f64 @data, 1.5"), "{text}");
        assert!(text.contains("condbr"), "{text}");
        assert!(text.contains("ret %1"), "{text}");
    }

    #[test]
    fn float_formatting_round_trips_special_values() {
        assert_eq!(fmt_float(f64::NAN), "nan");
        assert_eq!(fmt_float(f64::INFINITY), "inf");
        assert_eq!(fmt_float(f64::NEG_INFINITY), "-inf");
        assert_eq!(fmt_float(1.0), "1.0");
        let tricky = 0.1 + 0.2;
        let printed = fmt_float(tricky);
        assert_eq!(printed.parse::<f64>().unwrap(), tricky);
    }
}
