//! Functions, basic blocks and function-level metadata.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::inst::{Inst, Terminator};
use crate::types::{Reg, Ty};

/// Identifies a basic block within a [`Function`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: a label, straight-line instructions and one terminator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Human-readable label (unique within the function).
    pub name: String,
    /// The block body.
    pub insts: Vec<Inst>,
    /// The terminator. Blocks under construction hold a placeholder
    /// `Ret(None)`; the builder's `finish` and the verifier check that every
    /// block was explicitly terminated.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block with the given label and a placeholder
    /// terminator.
    pub fn new(name: impl Into<String>) -> Self {
        Block {
            name: name.into(),
            insts: Vec::new(),
            term: Terminator::Ret(None),
        }
    }
}

/// Per-register metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegInfo {
    /// The register's type.
    pub ty: Ty,
    /// Optional name used by the printer (`%name` instead of `%N`).
    pub name: Option<String>,
}

/// Function-level attributes controlling the protection passes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncAttrs {
    /// Set on functions produced by the RSkip loop-body outliner. Outlined
    /// bodies execute as the single *original copy*; the protection passes
    /// must not duplicate them (their results are protected by prediction
    /// and selective re-computation instead).
    pub outlined: bool,
    /// When false, the SWIFT / SWIFT-R passes leave the function untouched.
    /// The RSkip transform clears this on outlined bodies.
    pub protect: bool,
}

/// A per-loop hint attached by the frontend (the paper's `pragma`
/// mechanism, §3 footnote 5 and §4.1.2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoopHint {
    /// The loop header block this hint applies to.
    pub header: BlockId,
    /// Asserts that loads inside the candidate value slice never read a
    /// cell written by a *different* iteration's store (the only permitted
    /// overlap is the same-cell in-place update, which the transform
    /// handles with saved-value forwarding). Required for loops like `lud`
    /// that read and update the same array.
    pub no_alias: bool,
    /// Overrides the acceptable range for this loop (the paper's pragma:
    /// `0.0` requests exact validation).
    pub acceptable_range: Option<f64>,
}

/// A function: typed parameters, a register table and a CFG of blocks.
///
/// Parameters occupy registers `0..params.len()` on entry. Block 0 is the
/// entry block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (unique within the module; call resolution is by name).
    pub name: String,
    /// Parameter types; parameter `k` arrives in register `k`.
    pub params: Vec<Ty>,
    /// Return type, or `None` for `void`.
    pub ret: Option<Ty>,
    /// The register table; `Reg(i)` has metadata `regs[i]`.
    pub regs: Vec<RegInfo>,
    /// Basic blocks; `BlockId(i)` is `blocks[i]`, block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Pass-control attributes.
    pub attrs: FuncAttrs,
    /// Frontend hints for candidate loops.
    pub loop_hints: Vec<LoopHint>,
}

impl Function {
    /// Creates an empty function with an entry block and one register per
    /// parameter. Most users should go through
    /// [`ModuleBuilder::function`](crate::ModuleBuilder::function).
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Self {
        let regs = params
            .iter()
            .enumerate()
            .map(|(i, &ty)| RegInfo {
                ty,
                name: Some(format!("arg{i}")),
            })
            .collect();
        Function {
            name: name.into(),
            params,
            ret,
            regs,
            blocks: vec![Block::new("entry")],
            attrs: FuncAttrs {
                outlined: false,
                protect: true,
            },
            loop_hints: Vec::new(),
        }
    }

    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a fresh register of type `ty`.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        self.regs.push(RegInfo { ty, name: None });
        Reg((self.regs.len() - 1) as u32)
    }

    /// Allocates a fresh named register.
    pub fn new_named_reg(&mut self, ty: Ty, name: impl Into<String>) -> Reg {
        self.regs.push(RegInfo {
            ty,
            name: Some(name.into()),
        });
        Reg((self.regs.len() - 1) as u32)
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.blocks.push(Block::new(name));
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// The type of a register.
    ///
    /// # Panics
    ///
    /// Panics if the register does not exist.
    pub fn reg_ty(&self, r: Reg) -> Ty {
        self.regs[r.index()].ty
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total number of instructions (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Looks up the hint covering a loop header, if any.
    pub fn hint_for(&self, header: BlockId) -> Option<&LoopHint> {
        self.loop_hints.iter().find(|h| h.header == header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Operand;

    #[test]
    fn new_function_has_entry_and_param_regs() {
        let f = Function::new("f", vec![Ty::I64, Ty::F64], Some(Ty::F64));
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.regs.len(), 2);
        assert_eq!(f.reg_ty(Reg(0)), Ty::I64);
        assert_eq!(f.reg_ty(Reg(1)), Ty::F64);
    }

    #[test]
    fn reg_allocation_is_sequential() {
        let mut f = Function::new("f", vec![], None);
        let a = f.new_reg(Ty::I64);
        let b = f.new_named_reg(Ty::F64, "x");
        assert_eq!(a, Reg(0));
        assert_eq!(b, Reg(1));
        assert_eq!(f.regs[1].name.as_deref(), Some("x"));
    }

    #[test]
    fn block_allocation_and_inst_count() {
        let mut f = Function::new("f", vec![], None);
        let b = f.add_block("body");
        assert_eq!(b, BlockId(1));
        let r = f.new_reg(Ty::I64);
        f.block_mut(b).insts.push(Inst::Mov {
            ty: Ty::I64,
            dst: r,
            src: Operand::imm_i(1),
        });
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn loop_hint_lookup() {
        let mut f = Function::new("f", vec![], None);
        f.loop_hints.push(LoopHint {
            header: BlockId(2),
            no_alias: true,
            acceptable_range: None,
        });
        assert!(f.hint_for(BlockId(2)).is_some());
        assert!(f.hint_for(BlockId(1)).is_none());
    }
}
