//! Modules, globals and protection-region identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::function::Function;
use crate::types::{Ty, Value};

/// Identifies a global array within a [`Module`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// The global index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@g{}", self.0)
    }
}

/// Identifies a protected loop region created by the RSkip transform.
///
/// Region ids index the runtime's per-region state (predictors, counters,
/// QoS adjustment) and scope fault injection to detected loops (§7.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The region index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// A module-level array.
///
/// All program memory is module-level: the workloads keep scalars in
/// registers and arrays in globals, so the execution substrate can lay out a
/// flat, exactly-sized memory whose bounds make wild accesses observable
/// (the *Segfault* outcome class).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Number of cells.
    pub len: usize,
    /// Optional initializer; must have exactly `len` values of type `ty`.
    /// Zero-initialized when absent.
    pub init: Option<Vec<Value>>,
}

impl Global {
    /// A zero-initialized global.
    pub fn zeroed(name: impl Into<String>, ty: Ty, len: usize) -> Self {
        Global {
            name: name.into(),
            ty,
            len,
            init: None,
        }
    }
}

/// A compilation unit: functions plus global arrays.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (used in diagnostics and printing).
    pub name: String,
    /// Global arrays, indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// Functions. Call resolution is by name; the verifier rejects duplicate
    /// names.
    pub functions: Vec<Function>,
    /// Number of protection regions allocated by the RSkip transform.
    /// The runtime sizes its per-region state from this.
    pub num_regions: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            globals: Vec::new(),
            functions: Vec::new(),
            num_regions: 0,
        }
    }

    /// Adds a global and returns its id.
    pub fn add_global(&mut self, global: Global) -> GlobalId {
        self.globals.push(global);
        GlobalId((self.globals.len() - 1) as u32)
    }

    /// Adds a function and returns its index.
    pub fn add_function(&mut self, f: Function) -> usize {
        self.functions.push(f);
        self.functions.len() - 1
    }

    /// Allocates a fresh protection-region id.
    pub fn new_region(&mut self) -> RegionId {
        let id = RegionId(self.num_regions);
        self.num_regions += 1;
        id
    }

    /// Looks a function up by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks a function up by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Index of a function by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Looks a global up by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Shared access to a global.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Total memory footprint in cells (the execution substrate's flat
    /// memory size).
    pub fn memory_cells(&self) -> usize {
        self.globals.iter().map(|g| g.len).sum()
    }

    /// Total static instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_global_and_function_lookup() {
        let mut m = Module::new("m");
        let g = m.add_global(Global::zeroed("data", Ty::F64, 16));
        assert_eq!(g, GlobalId(0));
        assert_eq!(m.global_by_name("data"), Some(g));
        assert_eq!(m.global_by_name("nope"), None);
        assert_eq!(m.memory_cells(), 16);

        m.add_function(Function::new("main", vec![], None));
        assert!(m.function("main").is_some());
        assert_eq!(m.function_index("main"), Some(0));
        assert!(m.function("other").is_none());
    }

    #[test]
    fn region_ids_are_sequential() {
        let mut m = Module::new("m");
        assert_eq!(m.new_region(), RegionId(0));
        assert_eq!(m.new_region(), RegionId(1));
        assert_eq!(m.num_regions, 2);
    }
}
