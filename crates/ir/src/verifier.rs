//! Structural and type verification.
//!
//! The verifier enforces the invariants the rest of the system relies on:
//! well-typed operands, valid register/block/global references, matching
//! call signatures, sane intrinsic arities, and definite assignment: every
//! register read must be dominated by a write on all paths from the entry
//! (parameters count as written on entry; unreachable blocks are exempt).
//! Passes are expected to leave modules verifiable; the test suites run the
//! verifier after every transformation.

use crate::error::VerifyError;
use crate::function::Function;
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use crate::types::{Operand, Reg, Ty};

/// Verifies a [`Module`]. See the module docs for the checked invariants.
#[derive(Debug)]
pub struct Verifier<'m> {
    module: &'m Module,
}

impl<'m> Verifier<'m> {
    /// Creates a verifier for `module`.
    pub fn new(module: &'m Module) -> Self {
        Verifier { module }
    }

    /// Runs all checks.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        self.check_globals()?;
        let mut names = std::collections::HashSet::new();
        for f in &self.module.functions {
            if !names.insert(f.name.as_str()) {
                return Err(VerifyError {
                    function: f.name.clone(),
                    location: "module".into(),
                    message: "duplicate function name".into(),
                });
            }
            self.check_function(f)?;
        }
        Ok(())
    }

    fn check_globals(&self) -> Result<(), VerifyError> {
        let mut names = std::collections::HashSet::new();
        for g in &self.module.globals {
            if !names.insert(g.name.as_str()) {
                return Err(VerifyError {
                    function: String::new(),
                    location: format!("global @{}", g.name),
                    message: "duplicate global name".into(),
                });
            }
            if let Some(init) = &g.init {
                if init.len() != g.len {
                    return Err(VerifyError {
                        function: String::new(),
                        location: format!("global @{}", g.name),
                        message: format!(
                            "initializer has {} values for length {}",
                            init.len(),
                            g.len
                        ),
                    });
                }
                if init.iter().any(|v| v.ty() != g.ty) {
                    return Err(VerifyError {
                        function: String::new(),
                        location: format!("global @{}", g.name),
                        message: "initializer value type mismatch".into(),
                    });
                }
            }
        }
        Ok(())
    }

    fn check_function(&self, f: &Function) -> Result<(), VerifyError> {
        let fail = |location: String, message: String| VerifyError {
            function: f.name.clone(),
            location,
            message,
        };

        if f.blocks.is_empty() {
            return Err(fail("function".into(), "no blocks".into()));
        }
        if f.params.len() > f.regs.len() {
            return Err(fail(
                "function".into(),
                "fewer registers than parameters".into(),
            ));
        }
        for (i, ty) in f.params.iter().enumerate() {
            if f.regs[i].ty != *ty {
                return Err(fail(
                    "function".into(),
                    format!("parameter {i} type mismatch with register table"),
                ));
            }
        }
        for hint in &f.loop_hints {
            if hint.header.index() >= f.blocks.len() {
                return Err(fail(
                    "hints".into(),
                    format!("hint references missing block bb{}", hint.header.0),
                ));
            }
        }

        for (bid, block) in f.iter_blocks() {
            let loc = |i: usize| format!("{}[{}]", block.name, i);
            for (i, inst) in block.insts.iter().enumerate() {
                self.check_inst(f, inst).map_err(|m| fail(loc(i), m))?;
            }
            match &block.term {
                Terminator::Br(t) => {
                    if t.index() >= f.blocks.len() {
                        return Err(fail(
                            format!("{}[term]", block.name),
                            format!("branch to missing block bb{}", t.0),
                        ));
                    }
                }
                Terminator::CondBr(c, t, fl) => {
                    self.check_operand(f, *c, Ty::I64)
                        .map_err(|m| fail(format!("{}[term]", block.name), m))?;
                    for target in [t, fl] {
                        if target.index() >= f.blocks.len() {
                            return Err(fail(
                                format!("{}[term]", block.name),
                                format!("branch to missing block bb{}", target.0),
                            ));
                        }
                    }
                }
                Terminator::Ret(v) => match (v, f.ret) {
                    (None, None) => {}
                    (Some(op), Some(ty)) => {
                        self.check_operand(f, *op, ty)
                            .map_err(|m| fail(format!("{}[term]", block.name), m))?;
                    }
                    (None, Some(_)) => {
                        return Err(fail(
                            format!("{}[term]", block.name),
                            "missing return value".into(),
                        ))
                    }
                    (Some(_), None) => {
                        return Err(fail(
                            format!("{}[term]", block.name),
                            "return value in void function".into(),
                        ))
                    }
                },
            }
            let _ = bid;
        }
        self.check_def_before_use(f)
    }

    /// Definite-assignment dataflow: a register read is only legal when a
    /// write dominates it on every path from the entry. Parameters are
    /// defined on entry; blocks unreachable from the entry are skipped
    /// (mid-pass modules may carry dead blocks until cleanup).
    fn check_def_before_use(&self, f: &Function) -> Result<(), VerifyError> {
        let fail = |location: String, message: String| VerifyError {
            function: f.name.clone(),
            location,
            message,
        };

        let n_blocks = f.blocks.len();
        let words = f.regs.len().div_ceil(64);
        let bit = |set: &[u64], r: Reg| (set[r.index() / 64] >> (r.index() % 64)) & 1 == 1;
        let set_bit = |set: &mut [u64], r: Reg| set[r.index() / 64] |= 1 << (r.index() % 64);

        // Reachability from the entry block.
        let mut reachable = vec![false; n_blocks];
        let mut stack = vec![f.entry()];
        reachable[f.entry().index()] = true;
        while let Some(b) = stack.pop() {
            for s in f.block(b).term.successors() {
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    stack.push(s);
                }
            }
        }

        // Per-block generated definitions.
        let mut defs: Vec<Vec<u64>> = vec![vec![0u64; words]; n_blocks];
        for (bid, block) in f.iter_blocks() {
            for inst in &block.insts {
                if let Some(d) = inst.dst() {
                    set_bit(&mut defs[bid.index()], d);
                }
            }
        }

        // Forward dataflow to a fixpoint: definitely-assigned-at-entry is
        // the intersection over predecessors (top = all-ones so the meet
        // over not-yet-seen edges is neutral); the entry starts with only
        // the parameters.
        let mut at_entry: Vec<Vec<u64>> = vec![vec![u64::MAX; words]; n_blocks];
        let entry_set = &mut at_entry[f.entry().index()];
        entry_set.iter_mut().for_each(|w| *w = 0);
        for p in 0..f.params.len() {
            set_bit(entry_set, Reg(p as u32));
        }
        let mut worklist: Vec<usize> = vec![f.entry().index()];
        while let Some(b) = worklist.pop() {
            let mut out = at_entry[b].clone();
            for (w, d) in out.iter_mut().zip(&defs[b]) {
                *w |= d;
            }
            for s in f.blocks[b].term.successors() {
                let succ = &mut at_entry[s.index()];
                let mut changed = false;
                for (w, o) in succ.iter_mut().zip(&out) {
                    let next = *w & o;
                    changed |= next != *w;
                    *w = next;
                }
                if changed {
                    worklist.push(s.index());
                }
            }
        }

        // Linear scan flagging the first use that is not definitely
        // assigned.
        for (bid, block) in f.iter_blocks() {
            if !reachable[bid.index()] {
                continue;
            }
            let mut defined = at_entry[bid.index()].clone();
            let check_use = |defined: &[u64], op: Operand, loc: String| match op {
                Operand::Reg(r) if !bit(defined, r) => Err(fail(
                    loc,
                    format!("use of register %{} before definition", r.0),
                )),
                _ => Ok(()),
            };
            for (i, inst) in block.insts.iter().enumerate() {
                let mut bad = None;
                inst.for_each_use(|op| {
                    if bad.is_none() {
                        bad = check_use(&defined, op, format!("{}[{}]", block.name, i)).err();
                    }
                });
                if let Some(e) = bad {
                    return Err(e);
                }
                if let Some(d) = inst.dst() {
                    set_bit(&mut defined, d);
                }
            }
            if let Some(op) = block.term.used_operand() {
                check_use(&defined, op, format!("{}[term]", block.name))?;
            }
        }
        Ok(())
    }

    fn reg_ty(&self, f: &Function, r: Reg) -> Result<Ty, String> {
        f.regs
            .get(r.index())
            .map(|info| info.ty)
            .ok_or_else(|| format!("reference to missing register %{}", r.0))
    }

    fn operand_ty(&self, f: &Function, op: Operand) -> Result<Ty, String> {
        match op {
            Operand::Reg(r) => self.reg_ty(f, r),
            Operand::ImmI(_) => Ok(Ty::I64),
            Operand::ImmF(_) => Ok(Ty::F64),
            Operand::Global(g) => {
                if g.index() >= self.module.globals.len() {
                    Err(format!("reference to missing global {g}"))
                } else {
                    Ok(Ty::I64) // base address
                }
            }
        }
    }

    fn check_operand(&self, f: &Function, op: Operand, expect: Ty) -> Result<(), String> {
        let ty = self.operand_ty(f, op)?;
        if ty != expect {
            return Err(format!("operand {op:?} has type {ty}, expected {expect}"));
        }
        Ok(())
    }

    fn check_dst(&self, f: &Function, dst: Reg, expect: Ty) -> Result<(), String> {
        let ty = self.reg_ty(f, dst)?;
        if ty != expect {
            return Err(format!(
                "destination %{} has type {ty}, expected {expect}",
                dst.0
            ));
        }
        Ok(())
    }

    fn check_inst(&self, f: &Function, inst: &Inst) -> Result<(), String> {
        match inst {
            Inst::Mov { ty, dst, src } => {
                self.check_dst(f, *dst, *ty)?;
                self.check_operand(f, *src, *ty)
            }
            Inst::Bin {
                ty,
                op,
                dst,
                lhs,
                rhs,
            } => {
                if op.int_only() && *ty == Ty::F64 {
                    return Err(format!("operator `{op}` is not defined on f64"));
                }
                self.check_dst(f, *dst, *ty)?;
                self.check_operand(f, *lhs, *ty)?;
                self.check_operand(f, *rhs, *ty)
            }
            Inst::Un { ty, op, dst, src } => {
                match op {
                    crate::UnOp::Not if *ty == Ty::F64 => {
                        return Err("`not` is not defined on f64".into())
                    }
                    crate::UnOp::Sqrt
                    | crate::UnOp::Exp
                    | crate::UnOp::Log
                    | crate::UnOp::Floor
                        if *ty == Ty::I64 =>
                    {
                        return Err(format!("`{op}` is not defined on i64"))
                    }
                    crate::UnOp::IntToFloat if *ty == Ty::I64 => {
                        return Err("i2f result must be f64".into())
                    }
                    crate::UnOp::FloatToInt if *ty == Ty::F64 => {
                        return Err("f2i result must be i64".into())
                    }
                    _ => {}
                }
                self.check_dst(f, *dst, *ty)?;
                self.check_operand(f, *src, op.operand_ty(*ty))
            }
            Inst::Cmp {
                ty,
                op: _,
                dst,
                lhs,
                rhs,
            } => {
                self.check_dst(f, *dst, Ty::I64)?;
                self.check_operand(f, *lhs, *ty)?;
                self.check_operand(f, *rhs, *ty)
            }
            Inst::Select {
                ty,
                dst,
                cond,
                on_true,
                on_false,
            } => {
                self.check_dst(f, *dst, *ty)?;
                self.check_operand(f, *cond, Ty::I64)?;
                self.check_operand(f, *on_true, *ty)?;
                self.check_operand(f, *on_false, *ty)
            }
            Inst::Load { ty, dst, addr } => {
                self.check_dst(f, *dst, *ty)?;
                self.check_operand(f, *addr, Ty::I64)
            }
            Inst::Store { ty, addr, value } => {
                self.check_operand(f, *addr, Ty::I64)?;
                self.check_operand(f, *value, *ty)
            }
            Inst::Call { dst, callee, args } => {
                let target = self
                    .module
                    .function(callee)
                    .ok_or_else(|| format!("call to unknown function @{callee}"))?;
                if target.params.len() != args.len() {
                    return Err(format!(
                        "call to @{callee} passes {} args, expected {}",
                        args.len(),
                        target.params.len()
                    ));
                }
                for (arg, ty) in args.iter().zip(&target.params) {
                    self.check_operand(f, *arg, *ty)?;
                }
                match (dst, target.ret) {
                    (None, _) => Ok(()),
                    (Some(d), Some(ty)) => self.check_dst(f, *d, ty),
                    (Some(_), None) => {
                        Err(format!("call to void function @{callee} has a destination"))
                    }
                }
            }
            Inst::IntrinsicCall { dst, intr, args } => {
                if args.len() < intr.min_args() {
                    return Err(format!(
                        "intrinsic {intr} needs at least {} args, found {}",
                        intr.min_args(),
                        args.len()
                    ));
                }
                // All intrinsic argument registers must exist; types are
                // checked loosely (observe mixes i64 bookkeeping and f64
                // payloads).
                for arg in args {
                    self.operand_ty(f, *arg)?;
                }
                match (dst, intr.result_ty()) {
                    (None, _) => Ok(()),
                    (Some(d), Some(ty)) => self.check_dst(f, *d, ty),
                    (Some(_), None) => Err(format!("intrinsic {intr} produces no result")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, UnOp};
    use crate::types::{Operand, Value};
    use crate::{Block, Global};

    fn verify(m: &Module) -> Result<(), VerifyError> {
        Verifier::new(m).verify()
    }

    #[test]
    fn accepts_well_formed_module() {
        let mut mb = ModuleBuilder::new("ok");
        let mut f = mb.function("main", vec![Ty::I64], Some(Ty::I64));
        let p = f.param(0);
        let x = f.bin(BinOp::Mul, Ty::I64, Operand::reg(p), Operand::imm_i(3));
        f.ret(Some(Operand::reg(x)));
        f.finish();
        verify(&mb.finish()).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut mb = ModuleBuilder::new("bad");
        let mut f = mb.function("main", vec![Ty::F64], None);
        let p = f.param(0);
        // i64 add of an f64 operand
        f.bin(BinOp::Add, Ty::I64, Operand::reg(p), Operand::imm_i(1));
        f.ret(None);
        f.finish();
        let e = verify(&mb.finish()).unwrap_err();
        assert!(e.message.contains("expected i64"), "{e}");
    }

    #[test]
    fn rejects_int_only_op_on_floats() {
        let mut mb = ModuleBuilder::new("bad");
        let mut f = mb.function("main", vec![], None);
        f.bin(
            BinOp::Xor,
            Ty::F64,
            Operand::imm_f(1.0),
            Operand::imm_f(2.0),
        );
        f.ret(None);
        f.finish();
        assert!(verify(&mb.finish()).is_err());
    }

    #[test]
    fn rejects_float_math_on_ints() {
        let mut mb = ModuleBuilder::new("bad");
        let mut f = mb.function("main", vec![], None);
        f.un(UnOp::Sqrt, Ty::I64, Operand::imm_i(4));
        f.ret(None);
        f.finish();
        assert!(verify(&mb.finish()).is_err());
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut mb = ModuleBuilder::new("bad");
        let mut callee = mb.function("callee", vec![Ty::I64, Ty::I64], None);
        callee.ret(None);
        callee.finish();
        let mut f = mb.function("main", vec![], None);
        f.call("callee", vec![Operand::imm_i(1)], None);
        f.ret(None);
        f.finish();
        let e = verify(&mb.finish()).unwrap_err();
        assert!(e.message.contains("passes 1 args"), "{e}");
    }

    #[test]
    fn rejects_unknown_callee() {
        let mut mb = ModuleBuilder::new("bad");
        let mut f = mb.function("main", vec![], None);
        f.call("ghost", vec![], None);
        f.ret(None);
        f.finish();
        assert!(verify(&mb.finish()).is_err());
    }

    #[test]
    fn rejects_branch_to_missing_block() {
        let mut mb = ModuleBuilder::new("bad");
        let mut f = mb.function("main", vec![], None);
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        m.functions[0].blocks[0].term = Terminator::Br(crate::BlockId(7));
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_missing_return_value() {
        let mut mb = ModuleBuilder::new("bad");
        let f = mb.function("main", vec![], Some(Ty::I64));
        // Builder would panic on missing terminator; bypass it.
        drop(f);
        let mut m = Module::new("bad");
        let mut func = Function::new("main", vec![], Some(Ty::I64));
        func.blocks[0].term = Terminator::Ret(None);
        m.add_function(func);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("missing return value"), "{e}");
    }

    #[test]
    fn rejects_duplicate_function_names() {
        let mut m = Module::new("bad");
        let mut f1 = Function::new("f", vec![], None);
        f1.blocks[0].term = Terminator::Ret(None);
        m.add_function(f1.clone());
        m.add_function(f1);
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_bad_global_initializer() {
        let mut m = Module::new("bad");
        m.add_global(Global {
            name: "g".into(),
            ty: Ty::I64,
            len: 2,
            init: Some(vec![Value::I(1)]),
        });
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_intrinsic_arity() {
        let mut mb = ModuleBuilder::new("bad");
        let mut f = mb.function("main", vec![], None);
        f.intrinsic(crate::Intrinsic::Observe, vec![Operand::imm_i(0)]);
        f.ret(None);
        f.finish();
        let e = verify(&mb.finish()).unwrap_err();
        assert!(e.message.contains("at least 4"), "{e}");
    }

    #[test]
    fn rejects_empty_function() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![], None);
        f.blocks.clear();
        m.add_function(f);
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_hint_on_missing_block() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![], None);
        f.blocks[0].term = Terminator::Ret(None);
        f.loop_hints.push(crate::LoopHint {
            header: crate::BlockId(3),
            no_alias: false,
            acceptable_range: None,
        });
        m.add_function(f);
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_instruction_reading_missing_register() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![], None);
        let dst = f.new_reg(Ty::I64);
        f.blocks[0].insts.push(Inst::Mov {
            ty: Ty::I64,
            dst,
            src: Operand::reg(Reg(99)),
        });
        f.blocks[0].term = Terminator::Ret(None);
        m.add_function(f);
        assert!(verify(&m).is_err());
    }

    #[test]
    fn empty_blocks_are_fine() {
        let mut m = Module::new("ok");
        let mut f = Function::new("f", vec![], None);
        let b = f.add_block("b");
        f.blocks[0].term = Terminator::Br(b);
        f.block_mut(b).term = Terminator::Ret(None);
        let _ = f.block(b);
        m.add_function(f);
        verify(&m).unwrap();
    }

    #[test]
    fn block_struct_helpers() {
        let b = Block::new("x");
        assert_eq!(b.name, "x");
        assert!(b.insts.is_empty());
    }

    #[test]
    fn rejects_use_before_def_in_straight_line() {
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        let x = f.new_reg(Ty::I64);
        let y = f.new_reg(Ty::I64);
        // %y = %x + 1 with %x never written.
        f.blocks[0].insts.push(Inst::Bin {
            ty: Ty::I64,
            op: BinOp::Add,
            dst: y,
            lhs: Operand::reg(x),
            rhs: Operand::imm_i(1),
        });
        f.blocks[0].term = Terminator::Ret(Some(Operand::reg(y)));
        m.add_function(f);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("before definition"), "{e}");
        assert_eq!(e.location, "entry[0]");
    }

    #[test]
    fn rejects_cross_block_use_preceding_its_def() {
        // entry -> use -> def -> use: the def does not dominate the first
        // use even though a textual def exists in the function.
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![], None);
        let x = f.new_reg(Ty::I64);
        let use_bb = f.add_block("use");
        let def_bb = f.add_block("def");
        f.blocks[0].term = Terminator::Br(use_bb);
        f.block_mut(use_bb).insts.push(Inst::Store {
            ty: Ty::I64,
            addr: Operand::imm_i(0),
            value: Operand::reg(x),
        });
        f.block_mut(use_bb).term = Terminator::Br(def_bb);
        f.block_mut(def_bb).insts.push(Inst::Mov {
            ty: Ty::I64,
            dst: x,
            src: Operand::imm_i(7),
        });
        f.block_mut(def_bb).term = Terminator::Ret(None);
        m.add_function(f);
        let e = verify(&m).unwrap_err();
        assert!(
            e.message.contains("use of register %0 before definition"),
            "{e}"
        );
        assert_eq!(e.location, "use[0]");
    }

    #[test]
    fn rejects_def_on_only_one_path_to_join() {
        // cond ? (def x) : (skip) ; join reads x — not definitely assigned.
        let mut m = Module::new("bad");
        let mut f = Function::new("f", vec![Ty::I64], Some(Ty::I64));
        let x = f.new_reg(Ty::I64);
        let then_bb = f.add_block("then");
        let else_bb = f.add_block("else");
        let join_bb = f.add_block("join");
        f.blocks[0].term = Terminator::CondBr(Operand::reg(Reg(0)), then_bb, else_bb);
        f.block_mut(then_bb).insts.push(Inst::Mov {
            ty: Ty::I64,
            dst: x,
            src: Operand::imm_i(1),
        });
        f.block_mut(then_bb).term = Terminator::Br(join_bb);
        f.block_mut(else_bb).term = Terminator::Br(join_bb);
        f.block_mut(join_bb).term = Terminator::Ret(Some(Operand::reg(x)));
        m.add_function(f);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("before definition"), "{e}");
        assert_eq!(e.location, "join[term]");
    }

    #[test]
    fn accepts_def_on_all_paths_to_join() {
        let mut m = Module::new("ok");
        let mut f = Function::new("f", vec![Ty::I64], Some(Ty::I64));
        let x = f.new_reg(Ty::I64);
        let then_bb = f.add_block("then");
        let else_bb = f.add_block("else");
        let join_bb = f.add_block("join");
        f.blocks[0].term = Terminator::CondBr(Operand::reg(Reg(0)), then_bb, else_bb);
        for (bb, v) in [(then_bb, 1), (else_bb, 2)] {
            f.block_mut(bb).insts.push(Inst::Mov {
                ty: Ty::I64,
                dst: x,
                src: Operand::imm_i(v),
            });
            f.block_mut(bb).term = Terminator::Br(join_bb);
        }
        f.block_mut(join_bb).term = Terminator::Ret(Some(Operand::reg(x)));
        m.add_function(f);
        verify(&m).unwrap();
    }

    #[test]
    fn accepts_loop_carried_def() {
        // i defined in the entry, read and redefined in the loop body: the
        // back edge must not poison the analysis.
        let mut mb = ModuleBuilder::new("ok");
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(body);
        f.switch_to(body);
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        let c = f.cmp(
            crate::CmpOp::Lt,
            Ty::I64,
            Operand::reg(i),
            Operand::imm_i(4),
        );
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        verify(&mb.finish()).unwrap();
    }

    #[test]
    fn unreachable_blocks_are_exempt_from_def_before_use() {
        let mut m = Module::new("ok");
        let mut f = Function::new("f", vec![], None);
        let x = f.new_reg(Ty::I64);
        let dead = f.add_block("dead");
        f.blocks[0].term = Terminator::Ret(None);
        f.block_mut(dead).insts.push(Inst::Store {
            ty: Ty::I64,
            addr: Operand::imm_i(0),
            value: Operand::reg(x),
        });
        f.block_mut(dead).term = Terminator::Ret(None);
        m.add_function(f);
        verify(&m).unwrap();
    }
}
