//! Parser for the textual IR format produced by
//! [`print_module`](crate::print_module).
//!
//! The format is line-oriented; `;` starts a comment (outside string
//! quotes). Globals must precede functions, blocks must appear in id order
//! (`bb0`, `bb1`, …) — exactly what the printer emits, so printed modules
//! always parse back.

use std::collections::HashMap;

use crate::error::ParseIrError;
use crate::function::{Block, BlockId, Function, LoopHint, RegInfo};
use crate::inst::{BinOp, CmpOp, Inst, Intrinsic, Terminator, UnOp};
use crate::module::{Global, Module};
use crate::types::{Operand, Reg, Ty, Value};

type PResult<T> = Result<T, ParseIrError>;

fn err<T>(line: usize, msg: impl Into<String>) -> PResult<T> {
    Err(ParseIrError::new(line, msg))
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_ty(s: &str, line: usize) -> PResult<Ty> {
    match s {
        "i64" => Ok(Ty::I64),
        "f64" => Ok(Ty::F64),
        other => err(line, format!("unknown type `{other}`")),
    }
}

fn parse_float(s: &str, line: usize) -> PResult<f64> {
    match s {
        "nan" => Ok(f64::NAN),
        "inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        _ => s
            .parse::<f64>()
            .map_err(|_| ParseIrError::new(line, format!("bad float literal `{s}`"))),
    }
}

fn looks_like_float(s: &str) -> bool {
    s == "nan" || s == "inf" || s == "-inf" || s.contains('.') || s.contains('e') || s.contains('E')
}

struct FnCtx {
    globals: HashMap<String, u32>,
}

impl FnCtx {
    fn parse_operand(&self, s: &str, line: usize) -> PResult<Operand> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix('%') {
            let idx: u32 = rest
                .parse()
                .map_err(|_| ParseIrError::new(line, format!("bad register `{s}`")))?;
            Ok(Operand::Reg(Reg(idx)))
        } else if let Some(name) = s.strip_prefix('@') {
            match self.globals.get(name) {
                Some(&id) => Ok(Operand::Global(crate::GlobalId(id))),
                None => err(line, format!("unknown global `@{name}`")),
            }
        } else if looks_like_float(s) {
            Ok(Operand::ImmF(parse_float(s, line)?))
        } else {
            s.parse::<i64>()
                .map(Operand::ImmI)
                .map_err(|_| ParseIrError::new(line, format!("bad operand `{s}`")))
        }
    }

    fn parse_operands(&self, s: &str, line: usize) -> PResult<Vec<Operand>> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Vec::new());
        }
        s.split(',')
            .map(|part| self.parse_operand(part, line))
            .collect()
    }
}

fn parse_block_ref(s: &str, line: usize) -> PResult<BlockId> {
    let s = s.trim();
    match s.strip_prefix("bb") {
        Some(num) => num
            .parse::<u32>()
            .map(BlockId)
            .map_err(|_| ParseIrError::new(line, format!("bad block reference `{s}`"))),
        None => err(line, format!("expected block reference, found `{s}`")),
    }
}

/// Splits `"callee(arg, arg)"` into callee and argument string.
fn split_call(s: &str, line: usize) -> PResult<(&str, &str)> {
    let open = s
        .find('(')
        .ok_or_else(|| ParseIrError::new(line, "expected `(`"))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| ParseIrError::new(line, "expected `)`"))?;
    if close < open {
        return err(line, "mismatched parentheses");
    }
    Ok((&s[..open], &s[open + 1..close]))
}

fn parse_inst(ctx: &FnCtx, text: &str, line: usize) -> PResult<Inst> {
    // Optional destination.
    let (dst, rhs) = match text.split_once('=') {
        Some((lhs, rhs)) if lhs.trim_start().starts_with('%') && !lhs.contains('(') => {
            let d = lhs.trim();
            let idx: u32 = d
                .strip_prefix('%')
                .and_then(|n| n.trim().parse().ok())
                .ok_or_else(|| ParseIrError::new(line, format!("bad destination `{d}`")))?;
            (Some(Reg(idx)), rhs.trim())
        }
        _ => (None, text.trim()),
    };

    // Calls and intrinsics.
    if rhs.starts_with("call ") || rhs.starts_with("call@") {
        let rest = rhs["call".len()..].trim();
        let (callee, args) = split_call(rest, line)?;
        let callee = callee
            .trim()
            .strip_prefix('@')
            .ok_or_else(|| ParseIrError::new(line, "call target must start with `@`"))?;
        return Ok(Inst::Call {
            dst,
            callee: callee.to_string(),
            args: ctx.parse_operands(args, line)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("rskip.") {
        let (name, args) = split_call(rest, line)?;
        let intr = Intrinsic::from_name(name.trim())
            .ok_or_else(|| ParseIrError::new(line, format!("unknown intrinsic `{name}`")))?;
        return Ok(Inst::IntrinsicCall {
            dst,
            intr,
            args: ctx.parse_operands(args, line)?,
        });
    }

    // Everything else is `mnemonic[.pred].ty operands`.
    let (head, operands) = match rhs.split_once(char::is_whitespace) {
        Some((h, rest)) => (h, rest),
        None => (rhs, ""),
    };
    let parts: Vec<&str> = head.split('.').collect();
    let ops = ctx.parse_operands(operands, line)?;
    let expect = |n: usize| -> PResult<()> {
        if ops.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("`{head}` expects {n} operands, found {}", ops.len()),
            )
        }
    };
    let need_dst = || -> PResult<Reg> {
        dst.ok_or_else(|| ParseIrError::new(line, format!("`{head}` requires a destination")))
    };

    match parts.as_slice() {
        ["mov", ty] => {
            expect(1)?;
            Ok(Inst::Mov {
                ty: parse_ty(ty, line)?,
                dst: need_dst()?,
                src: ops[0],
            })
        }
        ["cmp", pred, ty] => {
            expect(2)?;
            let op = CmpOp::ALL
                .iter()
                .copied()
                .find(|c| c.mnemonic() == *pred)
                .ok_or_else(|| ParseIrError::new(line, format!("unknown predicate `{pred}`")))?;
            Ok(Inst::Cmp {
                ty: parse_ty(ty, line)?,
                op,
                dst: need_dst()?,
                lhs: ops[0],
                rhs: ops[1],
            })
        }
        ["select", ty] => {
            expect(3)?;
            Ok(Inst::Select {
                ty: parse_ty(ty, line)?,
                dst: need_dst()?,
                cond: ops[0],
                on_true: ops[1],
                on_false: ops[2],
            })
        }
        ["load", ty] => {
            expect(1)?;
            Ok(Inst::Load {
                ty: parse_ty(ty, line)?,
                dst: need_dst()?,
                addr: ops[0],
            })
        }
        ["store", ty] => {
            expect(2)?;
            Ok(Inst::Store {
                ty: parse_ty(ty, line)?,
                addr: ops[0],
                value: ops[1],
            })
        }
        [mnemonic, ty] => {
            let ty = parse_ty(ty, line)?;
            if let Some(op) = BinOp::ALL
                .iter()
                .copied()
                .find(|b| b.mnemonic() == *mnemonic)
            {
                expect(2)?;
                Ok(Inst::Bin {
                    ty,
                    op,
                    dst: need_dst()?,
                    lhs: ops[0],
                    rhs: ops[1],
                })
            } else if let Some(op) = UnOp::ALL
                .iter()
                .copied()
                .find(|u| u.mnemonic() == *mnemonic)
            {
                expect(1)?;
                Ok(Inst::Un {
                    ty,
                    op,
                    dst: need_dst()?,
                    src: ops[0],
                })
            } else {
                err(line, format!("unknown mnemonic `{mnemonic}`"))
            }
        }
        _ => err(line, format!("cannot parse instruction `{rhs}`")),
    }
}

fn parse_terminator(ctx: &FnCtx, text: &str, line: usize) -> PResult<Terminator> {
    if let Some(rest) = text.strip_prefix("br ") {
        return Ok(Terminator::Br(parse_block_ref(rest, line)?));
    }
    if let Some(rest) = text.strip_prefix("condbr ") {
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != 3 {
            return err(line, "condbr expects `cond, bbT, bbF`");
        }
        return Ok(Terminator::CondBr(
            ctx.parse_operand(parts[0], line)?,
            parse_block_ref(parts[1], line)?,
            parse_block_ref(parts[2], line)?,
        ));
    }
    if text == "ret" {
        return Ok(Terminator::Ret(None));
    }
    if let Some(rest) = text.strip_prefix("ret ") {
        return Ok(Terminator::Ret(Some(ctx.parse_operand(rest, line)?)));
    }
    err(line, format!("unknown terminator `{text}`"))
}

/// Extracts a quoted string, returning (content, rest-after-quote).
fn take_quoted(s: &str, line: usize) -> PResult<(String, &str)> {
    let s = s.trim_start();
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| ParseIrError::new(line, "expected `\"`"))?;
    let end = rest
        .find('"')
        .ok_or_else(|| ParseIrError::new(line, "unterminated string"))?;
    Ok((rest[..end].to_string(), &rest[end + 1..]))
}

/// Parses a module from its textual representation.
///
/// # Errors
///
/// Returns a [`ParseIrError`] with the offending line number on any
/// syntactic problem. The result is *not* implicitly verified; run
/// [`Verifier`](crate::Verifier) on it for semantic checks.
///
/// # Example
///
/// ```
/// let text = r#"
/// module "t" regions 0
/// global @g : i64[1]
/// func @main() -> void {
/// bb0 "entry":
///   store.i64 @g, 7
///   ret
/// }
/// "#;
/// let m = rskip_ir::parse_module(text)?;
/// assert_eq!(m.functions.len(), 1);
/// # Ok::<(), rskip_ir::ParseIrError>(())
/// ```
pub fn parse_module(text: &str) -> PResult<Module> {
    let mut module = Module::new("unnamed");
    let mut globals: HashMap<String, u32> = HashMap::new();
    let mut cur_fn: Option<Function> = None;
    let mut cur_block: Option<BlockId> = None;
    let mut block_has_term = true;
    let mut saw_module_line = false;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("module ") {
            if saw_module_line {
                return err(lineno, "duplicate module line");
            }
            saw_module_line = true;
            let (name, rest) = take_quoted(rest, lineno)?;
            module.name = name;
            let rest = rest.trim();
            if let Some(n) = rest.strip_prefix("regions ") {
                module.num_regions = n
                    .trim()
                    .parse()
                    .map_err(|_| ParseIrError::new(lineno, "bad region count"))?;
            }
            continue;
        }

        if let Some(rest) = line.strip_prefix("global ") {
            if cur_fn.is_some() {
                return err(lineno, "global declaration inside function");
            }
            // @name : ty[len] [= [values]]
            let (name_part, rest) = rest
                .split_once(':')
                .ok_or_else(|| ParseIrError::new(lineno, "expected `:` in global"))?;
            let name = name_part
                .trim()
                .strip_prefix('@')
                .ok_or_else(|| ParseIrError::new(lineno, "global name must start with `@`"))?
                .to_string();
            let (decl, init_part) = match rest.split_once('=') {
                Some((d, init)) => (d.trim(), Some(init.trim())),
                None => (rest.trim(), None),
            };
            let open = decl
                .find('[')
                .ok_or_else(|| ParseIrError::new(lineno, "expected `[len]`"))?;
            let close = decl
                .rfind(']')
                .ok_or_else(|| ParseIrError::new(lineno, "expected `]`"))?;
            let ty = parse_ty(decl[..open].trim(), lineno)?;
            let len: usize = decl[open + 1..close]
                .trim()
                .parse()
                .map_err(|_| ParseIrError::new(lineno, "bad global length"))?;
            let init = match init_part {
                None => None,
                Some(s) => {
                    let inner = s
                        .strip_prefix('[')
                        .and_then(|s| s.strip_suffix(']'))
                        .ok_or_else(|| {
                            ParseIrError::new(lineno, "initializer must be `[v, ...]`")
                        })?;
                    let values: Vec<Value> = if inner.trim().is_empty() {
                        Vec::new()
                    } else {
                        inner
                            .split(',')
                            .map(|v| {
                                let v = v.trim();
                                Ok(match ty {
                                    Ty::I64 => Value::I(v.parse::<i64>().map_err(|_| {
                                        ParseIrError::new(lineno, format!("bad i64 `{v}`"))
                                    })?),
                                    Ty::F64 => Value::F(parse_float(v, lineno)?),
                                })
                            })
                            .collect::<PResult<_>>()?
                    };
                    if values.len() != len {
                        return err(lineno, "initializer length mismatch");
                    }
                    Some(values)
                }
            };
            globals.insert(name.clone(), module.globals.len() as u32);
            module.add_global(Global {
                name,
                ty,
                len,
                init,
            });
            continue;
        }

        if let Some(rest) = line.strip_prefix("func ") {
            if cur_fn.is_some() {
                return err(lineno, "nested function");
            }
            let rest = rest
                .trim()
                .strip_suffix('{')
                .ok_or_else(|| ParseIrError::new(lineno, "expected `{` at end of func line"))?
                .trim();
            let (sig, ret) = rest
                .rsplit_once("->")
                .ok_or_else(|| ParseIrError::new(lineno, "expected `->` in signature"))?;
            let ret = match ret.trim() {
                "void" => None,
                ty => Some(parse_ty(ty, lineno)?),
            };
            let (name_part, params_part) = split_call(sig.trim(), lineno)?;
            let name = name_part
                .trim()
                .strip_prefix('@')
                .ok_or_else(|| ParseIrError::new(lineno, "function name must start with `@`"))?;
            let mut param_names: Vec<Option<Option<String>>> = Vec::new();
            let params: Vec<Ty> = if params_part.trim().is_empty() {
                Vec::new()
            } else {
                params_part
                    .split(',')
                    .map(|p| {
                        let (_, rest) = p.split_once(':').ok_or_else(|| {
                            ParseIrError::new(lineno, "expected `%N: ty` parameter")
                        })?;
                        let rest = rest.trim();
                        // Optional quoted name; empty quotes mean unnamed.
                        let (ty_str, name) = match rest.split_once('"') {
                            Some((ty, name_rest)) => {
                                let end = name_rest.find('"').ok_or_else(|| {
                                    ParseIrError::new(lineno, "unterminated param name")
                                })?;
                                let n = &name_rest[..end];
                                (
                                    ty.trim(),
                                    Some(if n.is_empty() {
                                        None
                                    } else {
                                        Some(n.to_string())
                                    }),
                                )
                            }
                            None => (rest, None),
                        };
                        param_names.push(name.clone());
                        parse_ty(ty_str, lineno)
                    })
                    .collect::<PResult<_>>()?
            };
            let mut f = Function::new(name, params, ret);
            for (i, name) in param_names.into_iter().enumerate() {
                if let Some(explicit) = name {
                    f.regs[i].name = explicit;
                }
            }
            f.blocks.clear(); // blocks come from `bbN` labels
            cur_fn = Some(f);
            cur_block = None;
            block_has_term = true;
            continue;
        }

        if line == "}" {
            let f = match cur_fn.take() {
                Some(f) => f,
                None => return err(lineno, "`}` outside function"),
            };
            if !block_has_term {
                return err(lineno, "last block lacks a terminator");
            }
            if f.blocks.is_empty() {
                return err(lineno, "function has no blocks");
            }
            module.add_function(f);
            cur_block = None;
            continue;
        }

        let Some(f) = cur_fn.as_mut() else {
            return err(lineno, format!("unexpected top-level line `{line}`"));
        };

        if let Some(rest) = line.strip_prefix("attrs ") {
            for a in rest.split_whitespace() {
                match a {
                    "outlined" => f.attrs.outlined = true,
                    "noprotect" => f.attrs.protect = false,
                    other => return err(lineno, format!("unknown attribute `{other}`")),
                }
            }
            continue;
        }

        if let Some(rest) = line.strip_prefix("regs ") {
            for decl in rest.split(',') {
                let decl = decl.trim();
                let (reg_part, rest) = decl
                    .split_once(':')
                    .ok_or_else(|| ParseIrError::new(lineno, "expected `%N: ty` in regs"))?;
                let idx: usize = reg_part
                    .trim()
                    .strip_prefix('%')
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| ParseIrError::new(lineno, "bad register in regs"))?;
                if idx != f.regs.len() {
                    return err(
                        lineno,
                        format!(
                            "registers must be declared in order; expected %{}",
                            f.regs.len()
                        ),
                    );
                }
                let rest = rest.trim();
                let (ty_str, name) = match rest.split_once('"') {
                    Some((ty, name_rest)) => {
                        let end = name_rest
                            .find('"')
                            .ok_or_else(|| ParseIrError::new(lineno, "unterminated reg name"))?;
                        (ty.trim(), Some(name_rest[..end].to_string()))
                    }
                    None => (rest, None),
                };
                f.regs.push(RegInfo {
                    ty: parse_ty(ty_str, lineno)?,
                    name,
                });
            }
            continue;
        }

        if let Some(rest) = line.strip_prefix("hint ") {
            let mut parts = rest.split_whitespace();
            let header = parse_block_ref(
                parts
                    .next()
                    .ok_or_else(|| ParseIrError::new(lineno, "hint needs a block"))?,
                lineno,
            )?;
            let mut hint = LoopHint {
                header,
                no_alias: false,
                acceptable_range: None,
            };
            for p in parts {
                if p == "no_alias" {
                    hint.no_alias = true;
                } else if let Some(v) = p.strip_prefix("ar=") {
                    hint.acceptable_range = Some(parse_float(v, lineno)?);
                } else {
                    return err(lineno, format!("unknown hint flag `{p}`"));
                }
            }
            f.loop_hints.push(hint);
            continue;
        }

        // Block label: `bbN "name":`
        if line.starts_with("bb") && line.ends_with(':') {
            if !block_has_term {
                return err(lineno, "previous block lacks a terminator");
            }
            let body = &line[..line.len() - 1];
            let (id_part, name_part) = match body.split_once(char::is_whitespace) {
                Some((id, rest)) => (id, rest.trim()),
                None => (body, ""),
            };
            let id = parse_block_ref(id_part, lineno)?;
            if id.index() != f.blocks.len() {
                return err(
                    lineno,
                    format!("blocks must appear in order; expected bb{}", f.blocks.len()),
                );
            }
            let name = if name_part.is_empty() {
                format!("bb{}", id.0)
            } else {
                take_quoted(name_part, lineno)?.0
            };
            f.blocks.push(Block::new(name));
            cur_block = Some(id);
            block_has_term = false;
            continue;
        }

        // Instruction or terminator inside the current block.
        let Some(block) = cur_block else {
            return err(lineno, "instruction outside a block");
        };
        if block_has_term {
            return err(lineno, "instruction after terminator");
        }
        let ctx = FnCtx {
            globals: globals.clone(),
        };
        if line.starts_with("br ")
            || line.starts_with("condbr ")
            || line == "ret"
            || line.starts_with("ret ")
        {
            f.blocks[block.index()].term = parse_terminator(&ctx, line, lineno)?;
            block_has_term = true;
        } else {
            f.blocks[block.index()]
                .insts
                .push(parse_inst(&ctx, line, lineno)?);
        }
    }

    if cur_fn.is_some() {
        return err(text.lines().count(), "unterminated function");
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::printer::print_module;
    use crate::types::Operand;
    use crate::{BinOp, CmpOp, UnOp};

    fn roundtrip(m: &Module) {
        let text = print_module(m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n--\n{text}"));
        assert_eq!(&parsed, m, "round-trip mismatch for:\n{text}");
    }

    #[test]
    fn roundtrips_rich_module() {
        let mut mb = ModuleBuilder::new("rich");
        let g = mb.global_zeroed("data", Ty::F64, 4);
        mb.global_init("k", Ty::F64, vec![Value::F(0.5), Value::F(-1.25)]);
        mb.global_init("idx", Ty::I64, vec![Value::I(3)]);

        let mut f = mb.function("compute", vec![Ty::I64, Ty::F64], Some(Ty::F64));
        let entry = f.entry_block();
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let acc = f.def_reg(Ty::F64, "acc");
        f.switch_to(entry);
        f.mov(acc, Operand::imm_f(0.0));
        f.br(body);
        f.switch_to(body);
        let x = f.un(UnOp::IntToFloat, Ty::F64, Operand::reg(f.param(0)));
        let s = f.un(UnOp::Sqrt, Ty::F64, Operand::reg(x));
        f.bin_into(acc, BinOp::Add, Ty::F64, Operand::reg(acc), Operand::reg(s));
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::imm_i(1));
        f.store(Ty::F64, Operand::reg(addr), Operand::reg(acc));
        let c = f.cmp(
            CmpOp::Ge,
            Ty::F64,
            Operand::reg(acc),
            Operand::reg(f.param(1)),
        );
        f.cond_br(Operand::reg(c), exit, body);
        f.switch_to(exit);
        f.ret(Some(Operand::reg(acc)));
        f.hint(body, true, Some(0.2));
        f.finish();

        let mut main = mb.function("main", vec![], None);
        let r = main
            .call(
                "compute",
                vec![Operand::imm_i(5), Operand::imm_f(10.0)],
                Some(Ty::F64),
            )
            .unwrap();
        main.intrinsic(crate::Intrinsic::Print, vec![Operand::reg(r)]);
        main.ret(None);
        main.finish();

        roundtrip(&mb.finish());
    }

    #[test]
    fn roundtrips_attrs_and_intrinsics() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("body", vec![Ty::I64], Some(Ty::F64));
        f.set_unprotected();
        let v = f.un(UnOp::IntToFloat, Ty::F64, Operand::reg(f.param(0)));
        f.ret(Some(Operand::reg(v)));
        f.finish();
        let mut m = mb.finish();
        m.functions[0].attrs.outlined = true;
        m.num_regions = 2;
        roundtrip(&m);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = r#"
; leading comment
module "c" regions 0

global @g : i64[1] ; trailing comment

func @main() -> void {
bb0 "entry":
  ; a comment line
  store.i64 @g, 42
  ret
}
"#;
        let m = parse_module(text).unwrap();
        assert_eq!(m.name, "c");
        assert_eq!(m.functions[0].blocks[0].insts.len(), 1);
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let text =
            "module \"x\" regions 0\nfunc @f() -> void {\nbb0:\n  %0 = frob.i64 1\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("unknown"), "{e}");
    }

    #[test]
    fn rejects_out_of_order_blocks() {
        let text = "module \"x\" regions 0\nfunc @f() -> void {\nbb1:\n  ret\n}\n";
        assert!(parse_module(text).is_err());
    }

    #[test]
    fn rejects_missing_terminator() {
        let text = "module \"x\" regions 0\nfunc @f() -> void {\nbb0:\n  %0 = mov.i64 1\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_unknown_global() {
        let text =
            "module \"x\" regions 0\nfunc @f() -> void {\nbb0:\n  store.i64 @nope, 1\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("unknown global"), "{e}");
    }

    #[test]
    fn parses_special_floats() {
        let text = "module \"x\" regions 0\nglobal @g : f64[3] = [nan, inf, -inf]\n";
        let m = parse_module(text).unwrap();
        let init = m.globals[0].init.as_ref().unwrap();
        assert!(init[0].as_f().is_nan());
        assert_eq!(init[1].as_f(), f64::INFINITY);
        assert_eq!(init[2].as_f(), f64::NEG_INFINITY);
    }
}
