//! Error types for verification and parsing.

use std::error::Error;
use std::fmt;

/// A verification failure.
///
/// Produced by [`Verifier::verify`](crate::Verifier::verify); the message
/// pinpoints the function, block and instruction at fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem was found.
    pub function: String,
    /// Location description (block label, instruction index).
    pub location: String,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verification failed in @{} at {}: {}",
            self.function, self.location, self.message
        )
    }
}

impl Error for VerifyError {}

/// A parse failure for the textual IR format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseIrError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl ParseIrError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseIrError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseIrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseIrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = VerifyError {
            function: "main".into(),
            location: "bb1[3]".into(),
            message: "type mismatch".into(),
        };
        assert!(e.to_string().contains("@main"));
        assert!(e.to_string().contains("bb1[3]"));

        let p = ParseIrError::new(7, "bad operand");
        assert!(p.to_string().contains("line 7"));
    }
}
