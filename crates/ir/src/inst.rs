//! Instructions, operators, intrinsics and terminators.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::function::BlockId;
use crate::types::{Operand, Reg, Ty};

/// Binary operators. Integer and float forms share the opcode; the
/// instruction's [`Ty`] selects the semantics. The verifier rejects
/// bitwise/shift operators on `f64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition (wrapping for `i64`).
    Add,
    /// Subtraction (wrapping for `i64`).
    Sub,
    /// Multiplication (wrapping for `i64`).
    Mul,
    /// Division. Integer division by zero traps (classified *Core dump*);
    /// float division follows IEEE-754.
    Div,
    /// Remainder. Integer remainder by zero traps.
    Rem,
    /// Bitwise AND (`i64` only).
    And,
    /// Bitwise OR (`i64` only).
    Or,
    /// Bitwise XOR (`i64` only).
    Xor,
    /// Left shift, shift amount masked to 0..63 (`i64` only).
    Shl,
    /// Arithmetic right shift, shift amount masked (`i64` only).
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// All binary operators (used by property tests and the parser).
    pub const ALL: [BinOp; 12] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Min,
        BinOp::Max,
    ];

    /// The mnemonic used by the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// True if this operator is only defined on integers.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise NOT (`i64` only).
    Not,
    /// Square root (`f64` only). `sqrt` of a negative produces NaN, as on
    /// real hardware — it is not a trap.
    Sqrt,
    /// Natural exponential (`f64` only).
    Exp,
    /// Natural logarithm (`f64` only).
    Log,
    /// Absolute value.
    Abs,
    /// Floor (`f64` only).
    Floor,
    /// Convert `i64` to `f64`. The instruction type is the *result* type
    /// (`f64`); the operand is `i64`.
    IntToFloat,
    /// Convert `f64` to `i64` with truncation, saturating at the `i64`
    /// range. The instruction type is the result type (`i64`).
    FloatToInt,
}

impl UnOp {
    /// All unary operators.
    pub const ALL: [UnOp; 9] = [
        UnOp::Neg,
        UnOp::Not,
        UnOp::Sqrt,
        UnOp::Exp,
        UnOp::Log,
        UnOp::Abs,
        UnOp::Floor,
        UnOp::IntToFloat,
        UnOp::FloatToInt,
    ];

    /// The mnemonic used by the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Sqrt => "sqrt",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Abs => "abs",
            UnOp::Floor => "floor",
            UnOp::IntToFloat => "i2f",
            UnOp::FloatToInt => "f2i",
        }
    }

    /// The type of the operand, given the instruction (result) type.
    pub fn operand_ty(self, inst_ty: Ty) -> Ty {
        match self {
            UnOp::IntToFloat => Ty::I64,
            UnOp::FloatToInt => Ty::F64,
            _ => inst_ty,
        }
    }
}

/// Comparison predicates. The destination register is always `i64` (0 or 1);
/// the instruction's [`Ty`] is the type of the *compared operands*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// All predicates.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// The mnemonic used by the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// Runtime intrinsics — the interface between transformed code and the RSkip
/// prediction runtime (Sections 3–5 of the paper).
///
/// Intrinsic calls are never duplicated by the protection passes (the runtime
/// is trusted code living in ECC-protected memory). Their modeled cost is
/// charged by the execution substrate's intrinsic handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intrinsic {
    /// `region_enter(region)` — execution enters a detected loop region.
    /// Fault injection is restricted to code executing between
    /// `region_enter` and `region_exit` (paper §7.2).
    RegionEnter,
    /// `region_exit(region)` — leaves a region; the runtime cuts and
    /// validates the final open phase, so pending re-computations may be
    /// available afterwards.
    RegionExit,
    /// `select_version(region) -> i64` — run-time management decides between
    /// the prediction-protected version (returns 1) and the conventionally
    /// protected version (returns 0).
    SelectVersion,
    /// `observe(region, iter, addr, value, args...)` — report one loop
    /// output to the prediction runtime. `args...` are the arguments the
    /// shell passed to the outlined body for this iteration; the runtime
    /// records them so that failed validations can re-execute the body with
    /// identical inputs (this subsumes the paper's "temporary space to keep
    /// the original value" for in-place updates, §4.1.2, and provides the
    /// memoization inputs, §4.2).
    Observe,
    /// `next_pending(region) -> i64` — pops the next iteration index that
    /// failed fuzzy validation (or is a phase endpoint) and must be
    /// re-computed; returns −1 when none remain.
    NextPending,
    /// `pending_addr(region) -> i64` — the memory address recorded for the
    /// most recently popped pending element.
    PendingAddr,
    /// `pending_arg_i(region, k) -> i64` — the `k`-th recorded body argument
    /// of the most recently popped pending element (integer-typed).
    PendingArgI,
    /// `pending_arg_f(region, k) -> f64` — the `k`-th recorded body argument
    /// of the most recently popped pending element (float-typed).
    PendingArgF,
    /// `resolve_ok(region)` — the re-computation matched the original value:
    /// misprediction only, no fault (run-time overhead, not incorrect
    /// output).
    ResolveOk,
    /// `resolve_fault(region)` — re-computation mismatched: a fault was
    /// detected and recovered by majority vote (re-computation based
    /// recovery).
    ResolveFault,
    /// `detect()` — SWIFT (detection-only) mismatch handler: records a
    /// detected, unrecoverable fault and traps.
    Detect,
    /// `print(value)` — debugging aid; ignored by the timing model.
    Print,
}

impl Intrinsic {
    /// All intrinsics.
    pub const ALL: [Intrinsic; 12] = [
        Intrinsic::RegionEnter,
        Intrinsic::RegionExit,
        Intrinsic::SelectVersion,
        Intrinsic::Observe,
        Intrinsic::NextPending,
        Intrinsic::PendingAddr,
        Intrinsic::PendingArgI,
        Intrinsic::PendingArgF,
        Intrinsic::ResolveOk,
        Intrinsic::ResolveFault,
        Intrinsic::Detect,
        Intrinsic::Print,
    ];

    /// The name used in the textual format (after the `rskip.` prefix).
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::RegionEnter => "region_enter",
            Intrinsic::RegionExit => "region_exit",
            Intrinsic::SelectVersion => "select_version",
            Intrinsic::Observe => "observe",
            Intrinsic::NextPending => "next_pending",
            Intrinsic::PendingAddr => "pending_addr",
            Intrinsic::PendingArgI => "pending_arg_i",
            Intrinsic::PendingArgF => "pending_arg_f",
            Intrinsic::ResolveOk => "resolve_ok",
            Intrinsic::ResolveFault => "resolve_fault",
            Intrinsic::Detect => "detect",
            Intrinsic::Print => "print",
        }
    }

    /// Looks an intrinsic up by its textual name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|i| i.name() == name)
    }

    /// Minimum number of arguments the verifier requires.
    pub fn min_args(self) -> usize {
        match self {
            Intrinsic::Observe => 4,
            Intrinsic::Detect => 0,
            Intrinsic::Print => 1,
            Intrinsic::PendingArgI | Intrinsic::PendingArgF => 2,
            _ => 1,
        }
    }

    /// Whether the intrinsic produces a result, and of which type.
    pub fn result_ty(self) -> Option<Ty> {
        match self {
            Intrinsic::SelectVersion
            | Intrinsic::NextPending
            | Intrinsic::PendingAddr
            | Intrinsic::PendingArgI => Some(Ty::I64),
            Intrinsic::PendingArgF => Some(Ty::F64),
            _ => None,
        }
    }
}

/// A non-terminator instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = src` — register copy / immediate materialization.
    Mov {
        /// Value type.
        ty: Ty,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op(lhs, rhs)`.
    Bin {
        /// Value type of operands and result.
        ty: Ty,
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = op(src)`.
    Un {
        /// Result type (see [`UnOp::operand_ty`] for conversions).
        ty: Ty,
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        src: Operand,
    },
    /// `dst = (lhs op rhs) ? 1 : 0` — destination is always `i64`.
    Cmp {
        /// Type of the compared operands.
        ty: Ty,
        /// Predicate.
        op: CmpOp,
        /// Destination register (`i64`).
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cond != 0 ? on_true : on_false`.
    Select {
        /// Value type of the selected operands.
        ty: Ty,
        /// Destination register.
        dst: Reg,
        /// Condition (`i64`).
        cond: Operand,
        /// Value if `cond != 0`.
        on_true: Operand,
        /// Value if `cond == 0`.
        on_false: Operand,
    },
    /// `dst = memory[addr]`.
    Load {
        /// Type of the loaded cell.
        ty: Ty,
        /// Destination register.
        dst: Reg,
        /// Address operand (`i64` cell index).
        addr: Operand,
    },
    /// `memory[addr] = value` — a synchronization point for the protection
    /// schemes.
    Store {
        /// Type of the stored value.
        ty: Ty,
        /// Address operand (`i64` cell index).
        addr: Operand,
        /// Stored value.
        value: Operand,
    },
    /// `dst = callee(args...)` — direct call, resolved by name.
    Call {
        /// Destination register, if the callee returns a value.
        dst: Option<Reg>,
        /// Callee function name.
        callee: String,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// `dst = rskip.intr(args...)` — runtime intrinsic (see [`Intrinsic`]).
    IntrinsicCall {
        /// Destination register for value-producing intrinsics.
        dst: Option<Reg>,
        /// Which intrinsic.
        intr: Intrinsic,
        /// Argument operands.
        args: Vec<Operand>,
    },
}

impl Inst {
    /// The destination register this instruction writes, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } | Inst::IntrinsicCall { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }

    /// Visits every operand this instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Inst::Mov { src, .. } | Inst::Un { src, .. } => f(*src),
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(*cond);
                f(*on_true);
                f(*on_false);
            }
            Inst::Load { addr, .. } => f(*addr),
            Inst::Store { addr, value, .. } => {
                f(*addr);
                f(*value);
            }
            Inst::Call { args, .. } | Inst::IntrinsicCall { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
        }
    }

    /// Collects the registers this instruction reads.
    pub fn used_regs(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        self.for_each_use(|op| {
            if let Operand::Reg(r) = op {
                out.push(r);
            }
        });
        out
    }

    /// Rewrites every operand through `f` (used by cloning / duplication
    /// passes to redirect reads to shadow registers).
    pub fn map_uses(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Inst::Mov { src, .. } | Inst::Un { src, .. } => *src = f(*src),
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                *cond = f(*cond);
                *on_true = f(*on_true);
                *on_false = f(*on_false);
            }
            Inst::Load { addr, .. } => *addr = f(*addr),
            Inst::Store { addr, value, .. } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            Inst::Call { args, .. } | Inst::IntrinsicCall { args, .. } => {
                for a in args.iter_mut() {
                    *a = f(*a);
                }
            }
        }
    }

    /// Rewrites the destination register, if any.
    pub fn set_dst(&mut self, new: Reg) {
        match self {
            Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Load { dst, .. } => *dst = new,
            Inst::Call { dst, .. } | Inst::IntrinsicCall { dst, .. } => {
                if dst.is_some() {
                    *dst = Some(new);
                }
            }
            Inst::Store { .. } => {}
        }
    }

    /// True for instructions that have side effects beyond writing `dst`
    /// (memory writes, calls, intrinsics). Pure instructions are the ones
    /// the duplication passes clone.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::Call { .. } | Inst::IntrinsicCall { .. }
        )
    }
}

/// A block terminator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch: `cond != 0` → first target, else second.
    /// Branch conditions are synchronization points for the protection
    /// schemes.
    CondBr(Operand, BlockId, BlockId),
    /// Function return. A return value is a synchronization point.
    Ret(Option<Operand>),
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr(_, t, f) => vec![*t, *f],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Rewrites successor block ids through `f` (used when cloning regions).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br(b) => *b = f(*b),
            Terminator::CondBr(_, t, fl) => {
                *t = f(*t);
                *fl = f(*fl);
            }
            Terminator::Ret(_) => {}
        }
    }

    /// The operand the terminator reads, if any.
    pub fn used_operand(&self) -> Option<Operand> {
        match self {
            Terminator::CondBr(c, _, _) => Some(*c),
            Terminator::Ret(v) => *v,
            Terminator::Br(_) => None,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_names_roundtrip() {
        for intr in Intrinsic::ALL {
            assert_eq!(Intrinsic::from_name(intr.name()), Some(intr));
        }
        assert_eq!(Intrinsic::from_name("nope"), None);
    }

    #[test]
    fn unop_operand_types() {
        assert_eq!(UnOp::IntToFloat.operand_ty(Ty::F64), Ty::I64);
        assert_eq!(UnOp::FloatToInt.operand_ty(Ty::I64), Ty::F64);
        assert_eq!(UnOp::Neg.operand_ty(Ty::F64), Ty::F64);
        assert_eq!(UnOp::Sqrt.operand_ty(Ty::F64), Ty::F64);
    }

    #[test]
    fn int_only_ops() {
        assert!(BinOp::And.int_only());
        assert!(BinOp::Shl.int_only());
        assert!(!BinOp::Add.int_only());
        assert!(!BinOp::Min.int_only());
    }

    #[test]
    fn inst_dst_and_uses() {
        let inst = Inst::Bin {
            ty: Ty::I64,
            op: BinOp::Add,
            dst: Reg(2),
            lhs: Operand::reg(Reg(0)),
            rhs: Operand::imm_i(1),
        };
        assert_eq!(inst.dst(), Some(Reg(2)));
        assert_eq!(inst.used_regs(), vec![Reg(0)]);
        assert!(!inst.has_side_effects());

        let store = Inst::Store {
            ty: Ty::F64,
            addr: Operand::reg(Reg(1)),
            value: Operand::reg(Reg(3)),
        };
        assert_eq!(store.dst(), None);
        assert_eq!(store.used_regs(), vec![Reg(1), Reg(3)]);
        assert!(store.has_side_effects());
    }

    #[test]
    fn map_uses_rewrites_all_operands() {
        let mut inst = Inst::Select {
            ty: Ty::I64,
            dst: Reg(9),
            cond: Operand::reg(Reg(0)),
            on_true: Operand::reg(Reg(1)),
            on_false: Operand::reg(Reg(2)),
        };
        inst.map_uses(|op| match op {
            Operand::Reg(r) => Operand::reg(Reg(r.0 + 10)),
            other => other,
        });
        assert_eq!(inst.used_regs(), vec![Reg(10), Reg(11), Reg(12)]);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Br(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(
            Terminator::CondBr(Operand::reg(Reg(0)), BlockId(1), BlockId(2)).successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn observe_requires_four_args() {
        assert_eq!(Intrinsic::Observe.min_args(), 4);
        assert_eq!(Intrinsic::Detect.min_args(), 0);
    }
}
