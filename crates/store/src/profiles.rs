//! Per-section injection-profile cache — the persistence layer of
//! `rskip-vuln`'s incremental mode.
//!
//! A section's injection profile depends on nothing but the things its
//! [`CacheKey`] hashes: the benchmark build, the scheme, the fault
//! model, the campaign sizing/seed, the section's static content hash
//! and the dynamic site universe drawn from the census. When a program
//! is edited, unchanged sections hash to the same key and their
//! profiles load back without a single injection run; only sections
//! whose content (or site universe) changed miss and re-inject. That is
//! the FastFlip increment: the cache turns a whole-program campaign
//! into a handful of section-sized ones.
//!
//! Records are one JSON file per key (`<hex>.json`), written atomically
//! (temp file + rename) so a crashed run never leaves a half-written
//! profile a later run would trust. The key is embedded in the record
//! and checked on load, so a renamed or copied file can never satisfy
//! the wrong lookup; unreadable or mismatched records are treated as
//! misses, never as errors — the worst corruption can do is force a
//! re-injection.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use rskip_core::stats::CampaignStats;

use crate::key::CacheKey;

/// One cached per-section injection profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// The addressing key, embedded so a misfiled record is rejected.
    pub key: String,
    /// Benchmark name.
    pub bench: String,
    /// Scheme label (`UNSAFE`, `SWIFT-R`, `AR20`, ...).
    pub scheme: String,
    /// Fault-model label (`seu`, `skip`, `burst:N`).
    pub model: String,
    /// Section display name (`function#leader-block`).
    pub section: String,
    /// The section's static content hash, 16 hex digits.
    pub section_hash: String,
    /// Fault sites of the whole-program universe in this section.
    pub sites: u64,
    /// Trials the cached campaign ran.
    pub trials: u64,
    /// Base seed of the cached campaign.
    pub seed: u64,
    /// The campaign outcome statistics.
    pub stats: CampaignStats,
}

/// A directory of [`ProfileRecord`]s addressed by [`CacheKey`].
#[derive(Clone, Debug)]
pub struct ProfileCache {
    dir: PathBuf,
}

impl ProfileCache {
    /// Opens (without creating) a cache rooted at `dir`. The directory
    /// is created on first [`save`](Self::save).
    pub fn open(dir: impl Into<PathBuf>) -> ProfileCache {
        ProfileCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a key maps to.
    pub fn path_for(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Loads the record stored under `key`. Missing files, unreadable
    /// JSON and key mismatches are all misses (`None`) — corruption can
    /// only ever cost a re-injection, not poison a composition.
    pub fn load(&self, key: CacheKey) -> Option<ProfileRecord> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let rec: ProfileRecord = serde_json::from_str(&text).ok()?;
        if rec.key != key.hex() {
            return None;
        }
        Some(rec)
    }

    /// Saves `record` under `key` (stamping the key into the record),
    /// atomically: the JSON is written to a sibling temp file and
    /// renamed into place.
    pub fn save(&self, key: CacheKey, record: &ProfileRecord) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let mut rec = record.clone();
        rec.key = key.hex();
        let path = self.path_for(key);
        let tmp = self.dir.join(format!("{}.json.tmp", key.hex()));
        fs::write(&tmp, serde_json::to_string_pretty(&rec).unwrap_or_default())?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Number of records currently on disk.
    pub fn len(&self) -> usize {
        self.list().len()
    }

    /// True if the cache holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Paths of all records, sorted.
    pub fn list(&self) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ProfileRecord {
        ProfileRecord {
            key: String::new(),
            bench: "conv1d".into(),
            scheme: "AR20".into(),
            model: "seu".into(),
            section: "f#1".into(),
            section_hash: "00aa".into(),
            sites: 42,
            trials: 16,
            seed: 7,
            stats: CampaignStats::default(),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("rskip-profile-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip() {
        let cache = ProfileCache::open(temp_dir("roundtrip"));
        let key = CacheKey::builder().text("a").finish();
        assert!(cache.load(key).is_none());
        cache.save(key, &record()).unwrap();
        let back = cache.load(key).unwrap();
        assert_eq!(back.bench, "conv1d");
        assert_eq!(back.key, key.hex());
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_and_misfiled_records_are_misses() {
        let cache = ProfileCache::open(temp_dir("corrupt"));
        let key = CacheKey::builder().text("a").finish();
        let other = CacheKey::builder().text("b").finish();
        cache.save(key, &record()).unwrap();
        // Corruption → miss.
        fs::write(cache.path_for(key), b"{ not json").unwrap();
        assert!(cache.load(key).is_none());
        // A record copied to another key's filename → miss.
        cache.save(key, &record()).unwrap();
        fs::copy(cache.path_for(key), cache.path_for(other)).unwrap();
        assert!(cache.load(other).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }
}
