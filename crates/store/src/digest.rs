//! Checksums used by the store format.
//!
//! Two independent integrity layers: CRC-32 (IEEE 802.3 polynomial) per
//! section payload and over the header, and FNV-1a 64 as the whole-file
//! digest and the cache-key hash. The implementations live in
//! [`rskip_core::digest`] so lower layers (the executor's decoded-unit
//! cache) can share them; this module re-exports them under the store's
//! historical path.

pub use rskip_core::digest::{crc32, fnv1a64, Fnv1a64};
