//! Plain-data transfer objects — what actually goes on disk.
//!
//! The live training artifacts (`TrainedModel`, `Memoizer`, …) aggregate
//! predictor objects with private state and run-time statistics. The
//! store persists *plain data* instead: every DTO here is a struct of
//! public fields with no behaviour, serialized via the vendored serde.
//! Conversions are lossless for everything a deployment needs (run-time
//! statistics are deliberately reset on import), and the live-object
//! direction is **fallible**: data that passed its checksum but is
//! structurally inconsistent (schema drift, hand-edited files) is
//! rejected with a description instead of panicking deep inside a
//! predictor.
//!
//! Conversions to/from `rskip-runtime`'s `TrainedModel`/`RegionProfile`
//! live in that crate (`rskip_runtime::stored`) — the store sits below
//! the runtime in the dependency order.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rskip_core::{ProtectionPlan, RegionPlan, SupervisorPolicy};
use rskip_predict::{Memoizer, Quantizer};

/// One quantizer's sorted level boundaries.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StoredQuantizer {
    /// Sorted boundaries; level = number of boundaries below the input.
    pub boundaries: Vec<f64>,
}

/// A memoization lookup table in plain-data form (paper §4.2's
/// second-level predictor).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StoredMemoModel {
    /// Per-input quantizers.
    pub quantizers: Vec<StoredQuantizer>,
    /// Per-input address-bit allocation (bit tuning result).
    pub bits: Vec<u32>,
    /// The table: `None` cells were never populated during training.
    pub table: Vec<Option<f64>>,
}

/// A dynamic-interpolation model in plain-data form: the per-signature
/// TP selections of paper §6.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StoredDiModel {
    /// Signature → best tuning parameter (the QoS table).
    pub signature_tp: BTreeMap<String, f64>,
    /// TP used before the first signature match.
    pub default_tp: f64,
    /// Simulated skip rate at `default_tp` on the training data.
    pub trained_skip_rate: f64,
}

/// One region's trained models.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StoredRegionModel {
    /// First-level predictor model.
    pub di: StoredDiModel,
    /// Second-level predictor table, when one was deployed.
    pub memo: Option<StoredMemoModel>,
}

/// All regions' trained models — the payload of one `models/<AR>`
/// section, and the argument of `PredictionRuntime::warm_start`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StoredModels {
    /// Region id → model.
    pub regions: BTreeMap<u32, StoredRegionModel>,
}

/// One region's protection-plan entry in plain-data form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoredRegionPlan {
    /// Region id.
    pub region: u32,
    /// Whether a PP body exists.
    pub has_body: bool,
    /// Whether approximate memoization may be deployed.
    pub memoizable: bool,
    /// Per-loop acceptable-range override (pragma).
    pub acceptable_range: Option<f64>,
}

/// The persisted compile-time handoff (`rskip_core::ProtectionPlan`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StoredPlan {
    /// Per-region decisions.
    pub regions: Vec<StoredRegionPlan>,
}

/// The runtime-supervisor policy in plain-data form — the payload of the
/// optional `supervisor` section. Artifacts written before the section
/// existed simply lack it; the loader treats that as "no policy", so old
/// `.rsm` files keep loading unchanged (forward compatibility).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoredSupervisorPolicy {
    /// Resolved elements per health window.
    pub window: u32,
    /// Demote when a window's reject rate exceeds this.
    pub max_reject_rate: f64,
    /// Demote when a window's detected-fault rate exceeds this.
    pub max_fault_rate: f64,
    /// Demote after this many consecutive unknown-signature ticks.
    pub drift_windows: u32,
    /// Elements to hold a demoted region before probing.
    pub cooldown: u32,
    /// In Probing, feed every `probe_stride`-th element to the chain.
    pub probe_stride: u32,
    /// Probed elements per promotion decision.
    pub probe_window: u32,
    /// Minimum probe agreement to promote.
    pub min_probe_agreement: f64,
}

impl From<&SupervisorPolicy> for StoredSupervisorPolicy {
    fn from(p: &SupervisorPolicy) -> Self {
        StoredSupervisorPolicy {
            window: p.window,
            max_reject_rate: p.max_reject_rate,
            max_fault_rate: p.max_fault_rate,
            drift_windows: p.drift_windows,
            cooldown: p.cooldown,
            probe_stride: p.probe_stride,
            probe_window: p.probe_window,
            min_probe_agreement: p.min_probe_agreement,
        }
    }
}

impl From<&StoredSupervisorPolicy> for SupervisorPolicy {
    fn from(p: &StoredSupervisorPolicy) -> Self {
        SupervisorPolicy {
            window: p.window,
            max_reject_rate: p.max_reject_rate,
            max_fault_rate: p.max_fault_rate,
            drift_windows: p.drift_windows,
            cooldown: p.cooldown,
            probe_stride: p.probe_stride,
            probe_window: p.probe_window,
            min_probe_agreement: p.min_probe_agreement,
        }
    }
}

/// One region's raw training profile. Stored so a corrupted model
/// section can be *retrained* without re-profiling, and so figure 2
/// (which analyzes the sampled outputs) runs on the warm path.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StoredProfile {
    /// Output values in observation order.
    pub outputs: Vec<f64>,
    /// `(arguments, output)` pairs.
    pub samples: Vec<(Vec<f64>, f64)>,
}

// --- plan conversions (infallible both ways: RegionPlan is already plain
// data; the DTO exists because the dep-free `rskip-core` cannot derive
// serde) ---

impl From<&RegionPlan> for StoredRegionPlan {
    fn from(p: &RegionPlan) -> Self {
        StoredRegionPlan {
            region: p.region,
            has_body: p.has_body,
            memoizable: p.memoizable,
            acceptable_range: p.acceptable_range,
        }
    }
}

impl From<&StoredRegionPlan> for RegionPlan {
    fn from(p: &StoredRegionPlan) -> Self {
        RegionPlan {
            region: p.region,
            has_body: p.has_body,
            memoizable: p.memoizable,
            acceptable_range: p.acceptable_range,
        }
    }
}

impl From<&ProtectionPlan> for StoredPlan {
    fn from(p: &ProtectionPlan) -> Self {
        StoredPlan {
            regions: p.regions.iter().map(StoredRegionPlan::from).collect(),
        }
    }
}

impl From<&StoredPlan> for ProtectionPlan {
    fn from(p: &StoredPlan) -> Self {
        ProtectionPlan {
            regions: p.regions.iter().map(RegionPlan::from).collect(),
            // The supervisor policy travels in its own optional section;
            // the artifact loader reattaches it after decoding the plan.
            supervisor: None,
        }
    }
}

// --- memoizer conversions ---

impl From<&Quantizer> for StoredQuantizer {
    fn from(q: &Quantizer) -> Self {
        StoredQuantizer {
            boundaries: q.boundaries().to_vec(),
        }
    }
}

impl From<&Memoizer> for StoredMemoModel {
    fn from(m: &Memoizer) -> Self {
        StoredMemoModel {
            quantizers: m.quantizers().iter().map(StoredQuantizer::from).collect(),
            bits: m.bits().to_vec(),
            table: m.table().to_vec(),
        }
    }
}

impl TryFrom<&StoredMemoModel> for Memoizer {
    type Error = String;

    fn try_from(m: &StoredMemoModel) -> Result<Self, String> {
        let quantizers = m
            .quantizers
            .iter()
            .map(|q| Quantizer::from_boundaries(q.boundaries.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Memoizer::from_parts(quantizers, m.bits.clone(), m.table.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_predict::{MemoConfig, MemoTrainer};

    fn trained_memoizer() -> Memoizer {
        let mut t = MemoTrainer::new(2);
        for i in 0..2000 {
            let x = (i as f64 * 0.61803399).fract() * 10.0;
            let y = (i as f64 * 0.41421356).fract() * 4.0;
            t.add_sample(&[x, y], 3.0 * x + y);
        }
        t.build(&MemoConfig {
            table_bits: 10,
            hist_bins: 64,
        })
    }

    #[test]
    fn memoizer_round_trip_preserves_predictions() {
        let live = trained_memoizer();
        let dto = StoredMemoModel::from(&live);
        let back = Memoizer::try_from(&dto).expect("exported model must re-import");
        assert_eq!(back.bits(), live.bits());
        assert_eq!(back.table_len(), live.table_len());
        for i in 0..200 {
            let x = (i as f64 * 0.771).fract() * 10.0;
            let y = (i as f64 * 0.3317).fract() * 4.0;
            assert_eq!(back.predict_quiet(&[x, y]), live.predict_quiet(&[x, y]));
        }
        // Statistics start fresh after import.
        assert_eq!(back.stats().lookups, 0);
        // And the DTO direction is lossless.
        assert_eq!(StoredMemoModel::from(&back), dto);
    }

    #[test]
    fn inconsistent_memo_dto_is_rejected_not_panicking() {
        let live = trained_memoizer();
        let mut dto = StoredMemoModel::from(&live);
        dto.table.truncate(dto.table.len() / 2);
        assert!(Memoizer::try_from(&dto).is_err());

        let mut dto = StoredMemoModel::from(&live);
        dto.bits = vec![40, 40];
        assert!(Memoizer::try_from(&dto).is_err());

        let mut dto = StoredMemoModel::from(&live);
        dto.quantizers[0].boundaries = vec![3.0, 1.0, 2.0];
        assert!(Memoizer::try_from(&dto).is_err());

        let mut dto = StoredMemoModel::from(&live);
        dto.quantizers[0].boundaries[0] = f64::NAN;
        assert!(Memoizer::try_from(&dto).is_err());
    }

    #[test]
    fn plan_round_trip_is_lossless() {
        let plan = ProtectionPlan {
            regions: vec![
                RegionPlan {
                    region: 2,
                    has_body: true,
                    memoizable: true,
                    acceptable_range: Some(0.5),
                },
                RegionPlan::unprotected(0),
            ],
            supervisor: None,
        };
        let dto = StoredPlan::from(&plan);
        assert_eq!(ProtectionPlan::from(&dto), plan);
        let json = serde_json::to_string(&dto).unwrap();
        let parsed: StoredPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, dto);
    }

    #[test]
    fn supervisor_policy_round_trips_through_the_dto() {
        let live = SupervisorPolicy {
            window: 64,
            max_reject_rate: 0.4,
            max_fault_rate: 0.02,
            drift_windows: 3,
            cooldown: 256,
            probe_stride: 8,
            probe_window: 16,
            min_probe_agreement: 0.9,
        };
        let dto = StoredSupervisorPolicy::from(&live);
        assert_eq!(SupervisorPolicy::from(&dto), live);
        let json = serde_json::to_string(&dto).unwrap();
        let parsed: StoredSupervisorPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, dto);
    }

    #[test]
    fn models_serialize_round_trip() {
        let mut models = StoredModels::default();
        let mut sig = BTreeMap::new();
        sig.insert("312".to_string(), 0.8);
        models.regions.insert(
            0,
            StoredRegionModel {
                di: StoredDiModel {
                    signature_tp: sig,
                    default_tp: 0.5,
                    trained_skip_rate: 0.93,
                },
                memo: Some(StoredMemoModel::from(&trained_memoizer())),
            },
        );
        let json = serde_json::to_string(&models).unwrap();
        let parsed: StoredModels = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, models);
    }
}
