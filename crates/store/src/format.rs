//! The sectioned binary container (`.rsm` files).
//!
//! ```text
//! offset 0   magic          b"RSKM"
//!        4   version        u16 LE  (currently 1)
//!        6   section count  u16 LE
//!        8   per section:   name_len u16 LE, name bytes (UTF-8),
//!                           payload_len u64 LE, payload CRC-32 u32 LE
//!        …   header CRC-32  u32 LE  (over everything above)
//!        …   payloads       concatenated, in section-table order
//!  last 8    file digest    FNV-1a 64 LE (over everything above)
//! ```
//!
//! Integrity is layered so corruption is *located*, not just detected:
//! a flipped byte in a payload fails that section's CRC (reported with
//! the section name and file offset), a flipped byte in the section
//! table fails the header CRC, and a flipped trailer byte fails the
//! whole-file digest. [`decode`] stops at the first problem;
//! [`validate`] collects every problem for `rskip-eval verify`.

use std::path::PathBuf;

use crate::digest::{crc32, fnv1a64};

/// File magic: "RSKip Model".
pub const MAGIC: [u8; 4] = *b"RSKM";
/// Current container version.
pub const VERSION: u16 = 1;

/// One named section and its raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `"meta"`, `"models/AR20"`).
    pub name: String,
    /// Raw payload (JSON-encoded DTOs in the model store).
    pub payload: Vec<u8>,
}

/// Everything that can go wrong reading or writing a store file.
///
/// Every integrity variant carries enough detail to point at the broken
/// bytes: the section name and absolute file offset for payload
/// corruption, the expected/actual checksum everywhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem-level failure.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Stringified OS error.
        detail: String,
    },
    /// The file ends before a required field.
    Truncated {
        /// Offset at which more bytes were needed.
        offset: usize,
        /// Bytes required at that offset.
        needed: usize,
        /// Actual file length.
        len: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The container version is newer than this reader.
    UnsupportedVersion {
        /// Version found in the file.
        found: u16,
    },
    /// The section table failed its CRC — lengths and names are
    /// untrustworthy, nothing can be selectively recovered.
    HeaderChecksum {
        /// CRC recorded in the file.
        expected: u32,
        /// CRC recomputed over the header bytes.
        actual: u32,
    },
    /// The declared sizes do not add up to the file size.
    SizeMismatch {
        /// File length implied by the section table.
        expected: usize,
        /// Actual file length.
        actual: usize,
    },
    /// One section's payload failed its CRC.
    SectionChecksum {
        /// Section name.
        section: String,
        /// Absolute file offset of the payload.
        offset: usize,
        /// CRC recorded in the section table.
        expected: u32,
        /// CRC recomputed over the payload bytes.
        actual: u32,
    },
    /// The whole-file digest failed (trailer corruption, or corruption
    /// the finer checks somehow missed).
    FileDigest {
        /// Digest recorded in the trailer.
        expected: u64,
        /// Digest recomputed over the file body.
        actual: u64,
    },
    /// A required section is absent.
    MissingSection {
        /// Section name.
        section: String,
    },
    /// A section's payload passed its CRC but did not decode as the
    /// expected DTO (schema drift, or a hand-edited file).
    Decode {
        /// Section name.
        section: String,
        /// Parser/conversion error.
        detail: String,
    },
    /// The artifact's recorded cache key does not match the requested
    /// one (e.g. a renamed file) — the models belong to another binary.
    KeyMismatch {
        /// Key the caller asked for.
        expected: String,
        /// Key recorded in the artifact.
        found: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "{}: {detail}", path.display()),
            StoreError::Truncated {
                offset,
                needed,
                len,
            } => write!(
                f,
                "truncated: need {needed} bytes at offset {offset}, file is {len} bytes"
            ),
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {MAGIC:?})")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported container version {found} (reader supports {VERSION})")
            }
            StoreError::HeaderChecksum { expected, actual } => write!(
                f,
                "section table corrupt: header CRC {actual:08x} != recorded {expected:08x}"
            ),
            StoreError::SizeMismatch { expected, actual } => write!(
                f,
                "file size {actual} does not match the {expected} bytes the section table declares"
            ),
            StoreError::SectionChecksum {
                section,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "section `{section}` corrupt at offset {offset}: CRC {actual:08x} != recorded {expected:08x}"
            ),
            StoreError::FileDigest { expected, actual } => write!(
                f,
                "file digest {actual:016x} != recorded {expected:016x}"
            ),
            StoreError::MissingSection { section } => {
                write!(f, "required section `{section}` is missing")
            }
            StoreError::Decode { section, detail } => {
                write!(f, "section `{section}` failed to decode: {detail}")
            }
            StoreError::KeyMismatch { expected, found } => write!(
                f,
                "cache-key mismatch: artifact was trained for {found}, this binary needs {expected}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Serializes sections into the container format.
pub fn encode(sections: &[Section]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u16).to_le_bytes());
    for s in sections {
        out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
        out.extend_from_slice(s.name.as_bytes());
        out.extend_from_slice(&(s.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&s.payload).to_le_bytes());
    }
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    for s in sections {
        out.extend_from_slice(&s.payload);
    }
    let digest = fnv1a64(&out);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// A parsed section table entry plus where its payload lives.
struct Entry {
    name: String,
    len: usize,
    crc: u32,
    /// Absolute payload offset, filled in after the table is parsed.
    offset: usize,
}

/// Little-endian field reader with truncation reporting.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(StoreError::Truncated {
                offset: self.pos,
                needed: n,
                len: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Parses magic, version and the CRC-protected section table. On success
/// the entries carry absolute payload offsets.
fn parse_header(bytes: &[u8]) -> Result<Vec<Entry>, StoreError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic {
            found: magic.try_into().unwrap(),
        });
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let count = r.u16()? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = r.u16()? as usize;
        let name_bytes = r.take(name_len)?;
        let name = String::from_utf8(name_bytes.to_vec()).map_err(|e| StoreError::Decode {
            section: String::from("<header>"),
            detail: format!("non-UTF-8 section name: {e}"),
        })?;
        let len = r.u64()? as usize;
        let crc = r.u32()?;
        entries.push(Entry {
            name,
            len,
            crc,
            offset: 0,
        });
    }
    let header_end = r.pos;
    let recorded = r.u32()?;
    let actual = crc32(&bytes[..header_end]);
    if recorded != actual {
        return Err(StoreError::HeaderChecksum {
            expected: recorded,
            actual,
        });
    }
    let mut offset = r.pos;
    for e in &mut entries {
        e.offset = offset;
        offset += e.len;
    }
    let expected_len = offset + 8;
    if expected_len != bytes.len() {
        return Err(StoreError::SizeMismatch {
            expected: expected_len,
            actual: bytes.len(),
        });
    }
    Ok(entries)
}

fn section_error(bytes: &[u8], e: &Entry) -> Option<StoreError> {
    let actual = crc32(&bytes[e.offset..e.offset + e.len]);
    (actual != e.crc).then(|| StoreError::SectionChecksum {
        section: e.name.clone(),
        offset: e.offset,
        expected: e.crc,
        actual,
    })
}

fn digest_error(bytes: &[u8]) -> Option<StoreError> {
    let body = &bytes[..bytes.len() - 8];
    let recorded = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let actual = fnv1a64(body);
    (actual != recorded).then_some(StoreError::FileDigest {
        expected: recorded,
        actual,
    })
}

/// Strictly decodes a container: every check must pass.
///
/// Checks run from the most to the least specific, so the returned error
/// locates the corruption as precisely as possible: header first, then
/// each section's CRC (with name and offset), then the whole-file digest.
pub fn decode(bytes: &[u8]) -> Result<Vec<Section>, StoreError> {
    let entries = parse_header(bytes)?;
    for e in &entries {
        if let Some(err) = section_error(bytes, e) {
            return Err(err);
        }
    }
    if let Some(err) = digest_error(bytes) {
        return Err(err);
    }
    Ok(entries
        .into_iter()
        .map(|e| Section {
            payload: bytes[e.offset..e.offset + e.len].to_vec(),
            name: e.name,
        })
        .collect())
}

/// Collects *every* integrity problem in the container (for
/// `rskip-eval verify`). An empty vector means the file is intact.
pub fn validate(bytes: &[u8]) -> Vec<StoreError> {
    let entries = match parse_header(bytes) {
        Ok(e) => e,
        Err(e) => return vec![e],
    };
    let mut errors: Vec<StoreError> = entries
        .iter()
        .filter_map(|e| section_error(bytes, e))
        .collect();
    if let Some(err) = digest_error(bytes) {
        errors.push(err);
    }
    errors
}

/// Leniently decodes a container: sections whose CRC passes are
/// returned, everything broken is reported. Used for selective
/// retraining — an intact `profiles` section can warm-start training of
/// a corrupted `models/…` section. Returns `Err` only when the header
/// itself is unusable (then nothing is recoverable).
pub fn decode_lenient(bytes: &[u8]) -> Result<(Vec<Section>, Vec<StoreError>), StoreError> {
    let entries = parse_header(bytes)?;
    let mut sections = Vec::new();
    let mut errors = Vec::new();
    for e in &entries {
        match section_error(bytes, e) {
            Some(err) => errors.push(err),
            None => sections.push(Section {
                name: e.name.clone(),
                payload: bytes[e.offset..e.offset + e.len].to_vec(),
            }),
        }
    }
    if let Some(err) = digest_error(bytes) {
        // Only worth reporting when no finer check already explains it.
        if errors.is_empty() {
            errors.push(err);
        }
    }
    Ok((sections, errors))
}

/// A one-line-per-section human-readable description (for
/// `rskip-eval inspect`).
pub fn describe(bytes: &[u8]) -> Result<String, StoreError> {
    use std::fmt::Write as _;
    let entries = parse_header(bytes)?;
    let mut out = String::new();
    for e in &entries {
        let status = match section_error(bytes, e) {
            None => "ok",
            Some(_) => "CORRUPT",
        };
        let _ = writeln!(
            out,
            "  {:<14} {:>8} bytes  crc32 {:08x}  offset {:>8}  {status}",
            e.name, e.len, e.crc, e.offset
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Section> {
        vec![
            Section {
                name: "meta".into(),
                payload: br#"{"bench":"x"}"#.to_vec(),
            },
            Section {
                name: "models/AR20".into(),
                payload: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
            },
            Section {
                name: "empty".into(),
                payload: Vec::new(),
            },
        ]
    }

    #[test]
    fn round_trip() {
        let sections = sample();
        let bytes = encode(&sections);
        assert_eq!(decode(&bytes).unwrap(), sections);
        assert!(validate(&bytes).is_empty());
    }

    #[test]
    fn payload_flip_names_the_section_and_offset() {
        let sections = sample();
        let bytes = encode(&sections);
        // Find the "models/AR20" payload: it follows the meta payload.
        let meta_len = sections[0].payload.len();
        let payload_start = bytes.len() - 8 - 9 - meta_len + meta_len; // header…meta | models | digest
        let mut corrupt = bytes.clone();
        let idx = payload_start;
        corrupt[idx] ^= 0x01;
        match decode(&corrupt) {
            Err(StoreError::SectionChecksum {
                section, offset, ..
            }) => {
                assert_eq!(section, "models/AR20");
                assert_eq!(offset, idx);
            }
            other => panic!("expected SectionChecksum, got {other:?}"),
        }
    }

    #[test]
    fn header_flip_is_header_checksum() {
        let bytes = encode(&sample());
        let mut corrupt = bytes.clone();
        corrupt[10] ^= 0x40; // inside the first name length / name area
        assert!(matches!(
            decode(&corrupt),
            Err(StoreError::HeaderChecksum { .. }) | Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn magic_and_version_flips() {
        let bytes = encode(&sample());
        let mut m = bytes.clone();
        m[0] ^= 0xFF;
        assert!(matches!(decode(&m), Err(StoreError::BadMagic { .. })));
        let mut v = bytes.clone();
        v[5] ^= 0x01;
        assert!(matches!(
            decode(&v),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn trailer_flip_is_file_digest() {
        let bytes = encode(&sample());
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x80;
        assert!(matches!(
            decode(&corrupt),
            Err(StoreError::FileDigest { .. })
        ));
    }

    #[test]
    fn truncation_is_reported() {
        let bytes = encode(&sample());
        assert!(matches!(
            decode(&bytes[..6]),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&bytes[..bytes.len() - 3]),
            Err(StoreError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn lenient_recovers_intact_sections() {
        let sections = sample();
        let bytes = encode(&sections);
        // Corrupt the models payload; meta and empty must survive.
        let mut corrupt = bytes.clone();
        let meta_len = sections[0].payload.len();
        let models_start = bytes.len() - 8 - 9;
        let _ = meta_len;
        corrupt[models_start + 4] ^= 0x10;
        let (ok, errors) = decode_lenient(&corrupt).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0].name, "meta");
        assert_eq!(ok[1].name, "empty");
        assert_eq!(errors.len(), 1);
        assert!(
            matches!(&errors[0], StoreError::SectionChecksum { section, .. } if section == "models/AR20")
        );
    }

    #[test]
    fn validate_collects_all_problems() {
        let sections = sample();
        let mut bytes = encode(&sections);
        let models_start = bytes.len() - 8 - 9;
        let meta_start = models_start - sections[0].payload.len();
        bytes[meta_start] ^= 0x01;
        bytes[models_start] ^= 0x01;
        let errors = validate(&bytes);
        assert_eq!(
            errors
                .iter()
                .filter(|e| matches!(e, StoreError::SectionChecksum { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn describe_lists_sections() {
        let bytes = encode(&sample());
        let d = describe(&bytes).unwrap();
        assert!(d.contains("meta"));
        assert!(d.contains("models/AR20"));
        assert!(d.contains("ok"));
    }

    #[test]
    fn errors_render() {
        let e = StoreError::SectionChecksum {
            section: "plan".into(),
            offset: 77,
            expected: 1,
            actual: 2,
        };
        let s = e.to_string();
        assert!(s.contains("plan") && s.contains("77"));
    }
}
