//! The on-disk store: a directory of `.rsm` artifacts addressed by
//! `(benchmark, cache key)`.
//!
//! One artifact holds everything offline training produced for one
//! benchmark binary: the protection plan, the merged training profiles,
//! and one trained model per acceptable-range setting. Loading is
//! corruption-aware — [`Store::load`] distinguishes a clean [`Hit`], a
//! [`Partial`] artifact whose intact sections can still warm-start while
//! the corrupt ones are retrained, and a [`Rejected`] file that must not
//! be trusted at all (header damage or a cache-key mismatch).
//!
//! [`Hit`]: LoadOutcome::Hit
//! [`Partial`]: LoadOutcome::Partial
//! [`Rejected`]: LoadOutcome::Rejected

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::dto::{StoredModels, StoredPlan, StoredProfile, StoredSupervisorPolicy};
use crate::format::{self, Section, StoreError};
use crate::key::CacheKey;

/// Artifact file extension.
pub const ARTIFACT_EXT: &str = "rsm";

/// Section names with fixed meaning.
pub const SECTION_META: &str = "meta";
/// The persisted protection plan.
pub const SECTION_PLAN: &str = "plan";
/// The merged training profiles.
pub const SECTION_PROFILES: &str = "profiles";
/// Prefix of the per-AR model sections (`models/AR20`, …).
pub const SECTION_MODELS_PREFIX: &str = "models/";
/// The optional runtime-supervisor policy. Absent in artifacts written
/// before the supervisor existed; the loader treats absence as "no
/// policy" so old files still produce a full [`LoadOutcome::Hit`].
pub const SECTION_SUPERVISOR: &str = "supervisor";

/// Provenance of one artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Benchmark name.
    pub bench: String,
    /// The cache key the artifact was trained for, in hex. Cross-checked
    /// against the requested key on load so a renamed file cannot smuggle
    /// a stale model in.
    pub key: String,
    /// Workload size label (`tiny`/`small`/`full`).
    pub size: String,
    /// Training input seeds.
    pub train_seeds: Vec<u64>,
}

/// One benchmark's complete training output.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelArtifact {
    /// Provenance.
    pub meta: ArtifactMeta,
    /// The compile-time protection plan.
    pub plan: StoredPlan,
    /// Merged per-region training profiles.
    pub profiles: Vec<StoredProfile>,
    /// AR label (e.g. `"AR20"`) → trained models.
    pub models: BTreeMap<String, StoredModels>,
    /// Runtime-supervisor policy, when the plan ships one. `None` both
    /// for supervisor-less deployments and for artifacts predating the
    /// section.
    pub supervisor: Option<StoredSupervisorPolicy>,
}

/// What survived of a damaged artifact.
#[derive(Clone, Debug)]
pub struct PartialArtifact {
    /// Provenance (the meta section must be intact, or the whole file is
    /// rejected).
    pub meta: ArtifactMeta,
    /// The plan, if its section was intact.
    pub plan: Option<StoredPlan>,
    /// The profiles, if their section was intact — enough to retrain any
    /// corrupt model section without re-profiling.
    pub profiles: Option<Vec<StoredProfile>>,
    /// The model sections that were intact.
    pub models: BTreeMap<String, StoredModels>,
    /// The supervisor policy, if its section existed and was intact.
    pub supervisor: Option<StoredSupervisorPolicy>,
    /// Why the rest is missing.
    pub errors: Vec<StoreError>,
}

/// Result of a [`Store::load`].
#[derive(Clone, Debug)]
pub enum LoadOutcome {
    /// No artifact on disk for this `(bench, key)`.
    Miss,
    /// Fully intact artifact.
    Hit(Box<ModelArtifact>),
    /// Some sections corrupt; the intact ones are usable.
    Partial(Box<PartialArtifact>),
    /// Nothing in the file can be trusted (header corruption, unreadable
    /// meta, or a cache-key mismatch).
    Rejected(Vec<StoreError>),
}

/// Integrity report for one artifact file (from [`Store::verify`]).
#[derive(Clone, Debug)]
pub struct FileReport {
    /// The artifact path.
    pub path: PathBuf,
    /// Every problem found; empty means intact.
    pub errors: Vec<StoreError>,
}

/// A store directory.
#[derive(Clone, Debug)]
pub struct Store {
    dir: PathBuf,
}

fn json_decode_section<T: Deserialize>(s: &Section) -> Result<T, StoreError> {
    let text = std::str::from_utf8(&s.payload).map_err(|e| StoreError::Decode {
        section: s.name.clone(),
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| StoreError::Decode {
        section: s.name.clone(),
        detail: e.to_string(),
    })
}

fn json_section<T: Serialize>(name: &str, value: &T) -> Section {
    Section {
        name: name.to_string(),
        payload: serde_json::to_string(value)
            .expect("store DTOs serialize infallibly")
            .into_bytes(),
    }
}

impl ModelArtifact {
    /// The artifact as container sections, in canonical order.
    pub fn to_sections(&self) -> Vec<Section> {
        let mut sections = vec![
            json_section(SECTION_META, &self.meta),
            json_section(SECTION_PLAN, &self.plan),
            json_section(SECTION_PROFILES, &self.profiles),
        ];
        if let Some(sup) = &self.supervisor {
            sections.push(json_section(SECTION_SUPERVISOR, sup));
        }
        for (label, models) in &self.models {
            sections.push(json_section(
                &format!("{SECTION_MODELS_PREFIX}{label}"),
                models,
            ));
        }
        sections
    }
}

impl Store {
    /// Opens (lazily — the directory is created on first save) a store at
    /// `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Store { dir: dir.into() }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A namespaced sub-store rooted at `dir/<namespace>` — one isolated
    /// artifact root per tenant of the campaign service. Rejects (with
    /// `None`) any name that is empty, longer than 64 bytes, or contains
    /// characters outside `[a-z0-9_-]`, so a wire-supplied tenant string
    /// can never traverse outside the root or collide with another
    /// tenant's directory via case folding.
    #[must_use]
    pub fn namespace(&self, namespace: &str) -> Option<Store> {
        if namespace.is_empty()
            || namespace.len() > 64
            || !namespace
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
        {
            return None;
        }
        Some(Store {
            dir: self.dir.join(namespace),
        })
    }

    /// The path an artifact for `(bench, key)` lives at.
    pub fn path_for(&self, bench: &str, key: CacheKey) -> PathBuf {
        self.dir
            .join(format!("{bench}-{}.{ARTIFACT_EXT}", key.hex()))
    }

    /// Writes an artifact (atomically: temp file + rename).
    ///
    /// # Errors
    ///
    /// Any filesystem failure, as [`StoreError::Io`].
    pub fn save(&self, artifact: &ModelArtifact) -> Result<PathBuf, StoreError> {
        let key = CacheKey::parse(&artifact.meta.key).ok_or_else(|| StoreError::Decode {
            section: SECTION_META.to_string(),
            detail: format!("meta.key `{}` is not a cache key", artifact.meta.key),
        })?;
        let io = |path: &Path, e: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        fs::create_dir_all(&self.dir).map_err(|e| io(&self.dir, e))?;
        let bytes = format::encode(&artifact.to_sections());
        let path = self.path_for(&artifact.meta.bench, key);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &bytes).map_err(|e| io(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io(&path, e))?;
        Ok(path)
    }

    /// Loads the artifact for `(bench, key)`, classifying corruption.
    pub fn load(&self, bench: &str, key: CacheKey) -> LoadOutcome {
        let path = self.path_for(bench, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Miss,
            Err(e) => {
                return LoadOutcome::Rejected(vec![StoreError::Io {
                    path,
                    detail: e.to_string(),
                }])
            }
        };
        let (sections, mut errors) = match format::decode_lenient(&bytes) {
            Ok(r) => r,
            Err(e) => return LoadOutcome::Rejected(vec![e]),
        };

        let find = |name: &str| sections.iter().find(|s| s.name == name);

        // The meta section is the trust anchor: without it there is no
        // provenance, so nothing else is usable.
        let meta: ArtifactMeta = match find(SECTION_META) {
            None => {
                errors.push(StoreError::MissingSection {
                    section: SECTION_META.to_string(),
                });
                return LoadOutcome::Rejected(errors);
            }
            Some(s) => match json_decode_section(s) {
                Ok(m) => m,
                Err(e) => {
                    errors.push(e);
                    return LoadOutcome::Rejected(errors);
                }
            },
        };
        if meta.key != key.hex() {
            errors.push(StoreError::KeyMismatch {
                expected: key.hex(),
                found: meta.key.clone(),
            });
            return LoadOutcome::Rejected(errors);
        }

        // Remaining sections: a decode failure demotes the section to
        // "corrupt" (recorded, not fatal) exactly like a CRC failure.
        let mut plan: Option<StoredPlan> = None;
        let mut profiles: Option<Vec<StoredProfile>> = None;
        let mut models: BTreeMap<String, StoredModels> = BTreeMap::new();
        let mut supervisor: Option<StoredSupervisorPolicy> = None;
        for s in &sections {
            if s.name == SECTION_META {
                continue;
            } else if s.name == SECTION_PLAN {
                match json_decode_section(s) {
                    Ok(p) => plan = Some(p),
                    Err(e) => errors.push(e),
                }
            } else if s.name == SECTION_SUPERVISOR {
                match json_decode_section(s) {
                    Ok(p) => supervisor = Some(p),
                    Err(e) => errors.push(e),
                }
            } else if s.name == SECTION_PROFILES {
                match json_decode_section(s) {
                    Ok(p) => profiles = Some(p),
                    Err(e) => errors.push(e),
                }
            } else if let Some(label) = s.name.strip_prefix(SECTION_MODELS_PREFIX) {
                match json_decode_section(s) {
                    Ok(m) => {
                        models.insert(label.to_string(), m);
                    }
                    Err(e) => errors.push(e),
                }
            }
        }

        // The supervisor section is optional: its absence (old files) is
        // not an error and does not demote the outcome.
        match (plan, profiles, errors.is_empty()) {
            (Some(plan), Some(profiles), true) => LoadOutcome::Hit(Box::new(ModelArtifact {
                meta,
                plan,
                profiles,
                models,
                supervisor,
            })),
            (plan, profiles, _) => LoadOutcome::Partial(Box::new(PartialArtifact {
                meta,
                plan,
                profiles,
                models,
                supervisor,
                errors,
            })),
        }
    }

    /// Every artifact file in the store, sorted by path.
    pub fn list(&self) -> Vec<PathBuf> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == ARTIFACT_EXT))
            .collect();
        files.sort();
        files
    }

    /// Walks the store, recomputes every checksum, and additionally
    /// checks that each intact section decodes as its DTO. One report per
    /// artifact; a report with no errors means the file is fully intact.
    pub fn verify(&self) -> Vec<FileReport> {
        self.list()
            .into_iter()
            .map(|path| {
                let errors = match fs::read(&path) {
                    Err(e) => vec![StoreError::Io {
                        path: path.clone(),
                        detail: e.to_string(),
                    }],
                    Ok(bytes) => {
                        let mut errors = format::validate(&bytes);
                        if let Ok((sections, _)) = format::decode_lenient(&bytes) {
                            errors.extend(sections.iter().filter_map(decode_check));
                        }
                        errors
                    }
                };
                FileReport { path, errors }
            })
            .collect()
    }

    /// Human-readable description of every artifact (for
    /// `rskip-eval inspect`).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let files = self.list();
        if files.is_empty() {
            let _ = writeln!(out, "store {}: empty", self.dir.display());
            return out;
        }
        for path in files {
            let _ = writeln!(out, "{}", path.display());
            match fs::read(&path) {
                Err(e) => {
                    let _ = writeln!(out, "  unreadable: {e}");
                }
                Ok(bytes) => match format::describe(&bytes) {
                    Ok(d) => out.push_str(&d),
                    Err(e) => {
                        let _ = writeln!(out, "  corrupt header: {e}");
                    }
                },
            }
        }
        out
    }
}

/// Decodes one intact section as its expected DTO, reporting schema-level
/// damage that checksums cannot see.
fn decode_check(s: &Section) -> Option<StoreError> {
    let check = |r: Result<(), StoreError>| r.err();
    if s.name == SECTION_META {
        check(json_decode_section::<ArtifactMeta>(s).map(|_| ()))
    } else if s.name == SECTION_PLAN {
        check(json_decode_section::<StoredPlan>(s).map(|_| ()))
    } else if s.name == SECTION_PROFILES {
        check(json_decode_section::<Vec<StoredProfile>>(s).map(|_| ()))
    } else if s.name == SECTION_SUPERVISOR {
        check(json_decode_section::<StoredSupervisorPolicy>(s).map(|_| ()))
    } else if s.name.starts_with(SECTION_MODELS_PREFIX) {
        check(json_decode_section::<StoredModels>(s).map(|_| ()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dto::{StoredDiModel, StoredRegionModel, StoredRegionPlan};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_store() -> Store {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rskip-store-unit-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir)
    }

    fn sample_artifact(key: CacheKey) -> ModelArtifact {
        let mut models = BTreeMap::new();
        for label in ["AR20", "AR100"] {
            let mut m = StoredModels::default();
            m.regions.insert(
                0,
                StoredRegionModel {
                    di: StoredDiModel {
                        signature_tp: [("312".to_string(), 0.8)].into_iter().collect(),
                        default_tp: 0.5,
                        trained_skip_rate: 0.9,
                    },
                    memo: None,
                },
            );
            models.insert(label.to_string(), m);
        }
        ModelArtifact {
            meta: ArtifactMeta {
                bench: "conv1d".to_string(),
                key: key.hex(),
                size: "tiny".to_string(),
                train_seeds: vec![1000, 1001],
            },
            plan: StoredPlan {
                regions: vec![StoredRegionPlan {
                    region: 0,
                    has_body: true,
                    memoizable: false,
                    acceptable_range: None,
                }],
            },
            profiles: vec![StoredProfile {
                outputs: vec![1.0, 2.0, 3.0],
                samples: vec![(vec![1.0], 1.0)],
            }],
            models,
            supervisor: None,
        }
    }

    fn key() -> CacheKey {
        CacheKey::builder().text("test module").finish()
    }

    #[test]
    fn save_load_hit_round_trip() {
        let store = temp_store();
        let artifact = sample_artifact(key());
        assert!(matches!(store.load("conv1d", key()), LoadOutcome::Miss));
        let path = store.save(&artifact).unwrap();
        assert!(path.exists());
        match store.load("conv1d", key()) {
            LoadOutcome::Hit(loaded) => assert_eq!(*loaded, artifact),
            other => panic!("expected Hit, got {other:?}"),
        }
        let reports = store.verify();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].errors.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn supervisor_section_round_trips() {
        let store = temp_store();
        let mut artifact = sample_artifact(key());
        artifact.supervisor = Some(StoredSupervisorPolicy {
            window: 64,
            max_reject_rate: 0.4,
            max_fault_rate: 0.02,
            drift_windows: 3,
            cooldown: 256,
            probe_stride: 8,
            probe_window: 16,
            min_probe_agreement: 0.9,
        });
        store.save(&artifact).unwrap();
        match store.load("conv1d", key()) {
            LoadOutcome::Hit(loaded) => {
                assert_eq!(*loaded, artifact);
                assert_eq!(loaded.supervisor, artifact.supervisor);
            }
            other => panic!("expected Hit, got {other:?}"),
        }
        // verify sees the section and finds it intact.
        let reports = store.verify();
        assert!(reports[0].errors.is_empty());
        assert!(store.describe().contains(SECTION_SUPERVISOR));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn old_artifact_without_supervisor_section_still_hits() {
        // Forward compatibility: an artifact written by a pre-supervisor
        // build has no `supervisor` section. Rebuild such a file from the
        // raw sections and check the load outcome is an unchanged Hit.
        let store = temp_store();
        let artifact = sample_artifact(key());
        let path = store.save(&artifact).unwrap();
        let sections: Vec<Section> = format::decode(&fs::read(&path).unwrap())
            .unwrap()
            .into_iter()
            .filter(|s| s.name != SECTION_SUPERVISOR)
            .collect();
        assert!(sections.iter().all(|s| s.name != SECTION_SUPERVISOR));
        fs::write(&path, format::encode(&sections)).unwrap();
        match store.load("conv1d", key()) {
            LoadOutcome::Hit(loaded) => {
                assert!(loaded.supervisor.is_none());
                assert_eq!(*loaded, artifact);
            }
            other => panic!("expected Hit for legacy artifact, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_supervisor_section_demotes_to_partial() {
        let store = temp_store();
        let mut artifact = sample_artifact(key());
        artifact.supervisor = Some(StoredSupervisorPolicy {
            window: 64,
            max_reject_rate: 0.4,
            max_fault_rate: 0.02,
            drift_windows: 3,
            cooldown: 256,
            probe_stride: 8,
            probe_window: 16,
            min_probe_agreement: 0.9,
        });
        let path = store.save(&artifact).unwrap();
        // Schema damage behind a valid checksum: wrong JSON shape.
        let mut sections = format::decode(&fs::read(&path).unwrap()).unwrap();
        sections
            .iter_mut()
            .find(|s| s.name == SECTION_SUPERVISOR)
            .unwrap()
            .payload = b"[1,2,3]".to_vec();
        fs::write(&path, format::encode(&sections)).unwrap();
        match store.load("conv1d", key()) {
            LoadOutcome::Partial(p) => {
                assert!(p.supervisor.is_none());
                assert!(p.plan.is_some());
                assert!(p.errors.iter().any(
                    |e| matches!(e, StoreError::Decode { section, .. } if section == SECTION_SUPERVISOR),
                ));
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let store = temp_store();
        let artifact = sample_artifact(key());
        let path = store.save(&artifact).unwrap();
        // Simulate a renamed/stale file: same content, different requested key.
        let other = CacheKey::builder().text("different module").finish();
        fs::rename(&path, store.path_for("conv1d", other)).unwrap();
        match store.load("conv1d", other) {
            LoadOutcome::Rejected(errors) => {
                assert!(errors
                    .iter()
                    .any(|e| matches!(e, StoreError::KeyMismatch { .. })));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_model_section_loads_partially() {
        let store = temp_store();
        let artifact = sample_artifact(key());
        let path = store.save(&artifact).unwrap();
        // Flip a byte inside the AR100 models payload.
        let mut bytes = fs::read(&path).unwrap();
        let sections = format::decode(&bytes).unwrap();
        let target = sections
            .iter()
            .position(|s| s.name == "models/AR100")
            .unwrap();
        // Payload offsets: find the target payload in the file by scanning
        // for its bytes (payloads are concatenated after the header).
        let needle = &sections[target].payload;
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == &needle[..])
            .unwrap();
        bytes[pos] ^= 0x04;
        fs::write(&path, &bytes).unwrap();

        match store.load("conv1d", key()) {
            LoadOutcome::Partial(p) => {
                assert!(p.plan.is_some());
                assert!(p.profiles.is_some());
                assert!(p.models.contains_key("AR20"));
                assert!(!p.models.contains_key("AR100"));
                assert!(p
                    .errors
                    .iter()
                    .any(|e| matches!(e, StoreError::SectionChecksum { section, .. } if section == "models/AR100")));
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        // verify reports the same damage.
        let reports = store.verify();
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].errors.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn verify_catches_schema_damage_behind_valid_checksums() {
        let store = temp_store();
        let artifact = sample_artifact(key());
        let path = store.save(&artifact).unwrap();
        // Re-encode with a plan section that is valid JSON of the wrong
        // shape — checksums all pass, only decode_check can see it.
        let mut sections = format::decode(&fs::read(&path).unwrap()).unwrap();
        let plan = sections
            .iter_mut()
            .find(|s| s.name == SECTION_PLAN)
            .unwrap();
        plan.payload = b"[1,2,3]".to_vec();
        fs::write(&path, format::encode(&sections)).unwrap();
        let reports = store.verify();
        assert!(reports[0]
            .errors
            .iter()
            .any(|e| matches!(e, StoreError::Decode { section, .. } if section == SECTION_PLAN)));
        // And load degrades to Partial, not garbage.
        match store.load("conv1d", key()) {
            LoadOutcome::Partial(p) => assert!(p.plan.is_none()),
            other => panic!("expected Partial, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn namespace_isolates_and_sanitizes() {
        let store = temp_store();
        let alpha = store.namespace("tenant-a_1").unwrap();
        assert_eq!(alpha.dir(), store.dir().join("tenant-a_1"));
        // Two namespaces never share artifact paths.
        let beta = store.namespace("tenant-b").unwrap();
        assert_ne!(
            alpha.path_for("conv1d", key()),
            beta.path_for("conv1d", key())
        );
        // A namespaced save lands under the tenant root and loads back.
        alpha.save(&sample_artifact(key())).unwrap();
        assert!(matches!(alpha.load("conv1d", key()), LoadOutcome::Hit(_)));
        assert!(matches!(beta.load("conv1d", key()), LoadOutcome::Miss));
        // Hostile or malformed names are rejected outright.
        for bad in ["", "..", "a/b", "a\\b", "UPPER", "with space", "é"] {
            assert!(store.namespace(bad).is_none(), "accepted {bad:?}");
        }
        assert!(store.namespace(&"x".repeat(65)).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn describe_mentions_every_section() {
        let store = temp_store();
        store.save(&sample_artifact(key())).unwrap();
        let d = store.describe();
        for name in ["meta", "plan", "profiles", "models/AR20", "models/AR100"] {
            assert!(d.contains(name), "describe missing `{name}`:\n{d}");
        }
        let _ = fs::remove_dir_all(store.dir());
    }
}
