//! # rskip-store — persistent, integrity-checked model store
//!
//! The layer between RSkip's offline training phase and online
//! deployment: everything training produces — the per-signature TP
//! selections, memoization tables and QoS models of paper §6, plus the
//! compile-time `ProtectionPlan` handoff — is persisted as a versioned,
//! checksummed artifact that survives process restarts and can be
//! shipped to a fleet.
//!
//! Fittingly for a fault-protection system, the store assumes its own
//! bits can flip:
//!
//! * every section payload carries a CRC-32, the section table a CRC-32
//!   of its own, and the file a trailing FNV-1a-64 digest — a single
//!   flipped byte anywhere is detected and reported as a typed
//!   [`StoreError`] with section and offset detail, never deployed as a
//!   garbage predictor;
//! * a corrupted section is *selectively* recoverable: intact sections
//!   still warm-start, and the stored training profiles let a damaged
//!   model section be retrained without re-profiling;
//! * artifacts are addressed by a [`CacheKey`] — a content hash of the
//!   module IR and the training configuration — and the key is recorded
//!   inside the artifact, so a stale or renamed file can never be loaded
//!   against a mismatched binary.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "RSKM" | version u16 | section table | header CRC-32
//!              | payloads…   | file FNV-1a-64 digest
//! ```
//!
//! Payloads are serde-JSON-encoded plain-data DTOs ([`dto`]); the
//! conversions to live runtime objects are fallible, so even
//! checksum-valid-but-inconsistent data is rejected with a description
//! instead of misbehaving at prediction time.

#![deny(missing_docs)]

pub mod digest;
pub mod dto;
pub mod format;
pub mod journal;
mod key;
mod profiles;
mod store;

pub use dto::{
    StoredDiModel, StoredMemoModel, StoredModels, StoredPlan, StoredProfile, StoredQuantizer,
    StoredRegionModel, StoredRegionPlan, StoredSupervisorPolicy,
};
pub use format::{Section, StoreError, MAGIC, VERSION};
pub use journal::{JournalFile, JournalOpen, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use key::{CacheKey, CacheKeyBuilder};
pub use profiles::{ProfileCache, ProfileRecord};
pub use store::{
    ArtifactMeta, FileReport, LoadOutcome, ModelArtifact, PartialArtifact, Store, ARTIFACT_EXT,
    SECTION_META, SECTION_MODELS_PREFIX, SECTION_PLAN, SECTION_PROFILES, SECTION_SUPERVISOR,
};
