//! Append-only, integrity-checked record log — the durability
//! primitive under the campaign service's job journal.
//!
//! The model-store container ([`format`](crate::format)) is a
//! whole-file artifact: rewritten atomically, digested end to end.  A
//! journal has the opposite life cycle — it grows one record at a time
//! and must survive being killed *mid-write* — so it gets its own
//! framing with the same integrity discipline:
//!
//! ```text
//! magic "RSKJ" | version u16 LE
//! per record:  len u32 LE | CRC-32(payload) u32 LE | payload bytes
//! ```
//!
//! * **fsync-on-append** — [`JournalFile::append`] does not return
//!   until the record is flushed and `fsync`ed, so a record the caller
//!   saw succeed survives an immediate `SIGKILL` / power cut;
//! * **torn-tail truncation** — a crash mid-append leaves a partial
//!   frame (short length field, short payload, or a CRC mismatch) at
//!   the tail; [`JournalFile::open`] detects it, truncates the file
//!   back to the last intact record, and reports how many bytes were
//!   dropped.  Framing is sequential, so nothing after a bad record is
//!   reachable anyway — truncating at the first failure is the only
//!   consistent recovery;
//! * **typed header errors** — a wrong magic or a newer version is a
//!   *caller* problem (wrong file, downgraded binary), not a torn
//!   tail, and fails loudly instead of being "recovered" to empty.
//!
//! Payload bytes are opaque here; the campaign service stores one
//! serde-JSON event per record.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::digest::crc32;
use crate::format::StoreError;

/// First four bytes of every journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"RSKJ";

/// Current journal format version.
pub const JOURNAL_VERSION: u16 = 1;

/// Bytes of header preceding the first record.
const HEADER_LEN: usize = 6;

/// Bytes of framing preceding each record's payload.
const FRAME_LEN: usize = 8;

fn io_err(path: &Path, err: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        detail: err.to_string(),
    }
}

/// The result of opening (or creating) a journal: the writable handle,
/// every intact record in append order, and how many torn-tail bytes
/// were dropped (0 for a clean file).
pub struct JournalOpen {
    /// Handle positioned for appending.
    pub journal: JournalFile,
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes truncated off the tail (a crash mid-append), 0 if none.
    pub truncated_bytes: u64,
}

/// An open append-only record log. See the module docs for the format.
pub struct JournalFile {
    file: File,
    path: PathBuf,
}

impl JournalFile {
    /// Opens `path`, creating an empty journal (header only) if absent,
    /// and replays every intact record. A torn tail — the residue of a
    /// crash mid-append — is truncated away and reported via
    /// [`JournalOpen::truncated_bytes`].
    ///
    /// # Errors
    ///
    /// I/O failure, wrong magic, or a version newer than this reader.
    /// A *header* shorter than [`HEADER_LEN`] on a non-empty file is
    /// `Truncated` — that is not a recoverable tail.
    pub fn open(path: &Path) -> Result<JournalOpen, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err(path, &e))?;

        if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            file.write_all(&header).map_err(|e| io_err(path, &e))?;
            file.sync_data().map_err(|e| io_err(path, &e))?;
            return Ok(JournalOpen {
                journal: JournalFile {
                    file,
                    path: path.to_path_buf(),
                },
                records: Vec::new(),
                truncated_bytes: 0,
            });
        }
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                offset: 0,
                needed: HEADER_LEN,
                len: bytes.len(),
            });
        }
        if bytes[..4] != JOURNAL_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&bytes[..4]);
            return Err(StoreError::BadMagic { found });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version > JOURNAL_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }

        let mut records = Vec::new();
        let mut offset = HEADER_LEN;
        // `good_end` is the offset just past the last record that
        // framed and checksummed cleanly; anything beyond it is tail.
        let mut good_end = offset;
        while offset < bytes.len() {
            if bytes.len() - offset < FRAME_LEN {
                break; // torn frame header
            }
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            let expected_crc =
                u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            let payload_start = offset + FRAME_LEN;
            if bytes.len() - payload_start < len {
                break; // torn payload
            }
            let payload = &bytes[payload_start..payload_start + len];
            if crc32(payload) != expected_crc {
                break; // torn or corrupted record; framing beyond it is lost
            }
            records.push(payload.to_vec());
            offset = payload_start + len;
            good_end = offset;
        }

        let truncated_bytes = (bytes.len() - good_end) as u64;
        if truncated_bytes > 0 {
            file.set_len(good_end as u64)
                .map_err(|e| io_err(path, &e))?;
            file.sync_data().map_err(|e| io_err(path, &e))?;
        }
        // Position for appends regardless of how we got here.
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, &e))?;
        Ok(JournalOpen {
            journal: JournalFile {
                file,
                path: path.to_path_buf(),
            },
            records,
            truncated_bytes,
        })
    }

    /// Appends one record and does not return until it is flushed and
    /// `fsync`ed — after a successful return the record survives an
    /// immediate kill.
    ///
    /// # Errors
    ///
    /// I/O failure (the journal should be considered unusable — a
    /// partial frame may now be on disk; the next
    /// [`open`](JournalFile::open) truncates it away).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let len = u32::try_from(payload.len()).map_err(|_| StoreError::Io {
            path: self.path.clone(),
            detail: format!("record of {} bytes exceeds u32 framing", payload.len()),
        })?;
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, &e))
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_journal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "rskip-journal-{tag}-{}-{n}.rskj",
            std::process::id()
        ))
    }

    fn reopen_records(path: &Path) -> (Vec<Vec<u8>>, u64) {
        let opened = JournalFile::open(path).expect("reopen");
        (opened.records, opened.truncated_bytes)
    }

    #[test]
    fn roundtrip_across_reopens() {
        let path = temp_journal("roundtrip");
        let payloads: Vec<Vec<u8>> = vec![b"alpha".to_vec(), vec![], vec![0xFF; 300]];
        {
            let mut j = JournalFile::open(&path).unwrap().journal;
            for p in &payloads {
                j.append(p).unwrap();
            }
        }
        let (records, truncated) = reopen_records(&path);
        assert_eq!(records, payloads);
        assert_eq!(truncated, 0);
        // Appending after a reopen extends, not clobbers.
        {
            let mut j = JournalFile::open(&path).unwrap().journal;
            j.append(b"tail").unwrap();
        }
        let (records, _) = reopen_records(&path);
        assert_eq!(records.len(), 4);
        assert_eq!(records[3], b"tail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let reference = temp_journal("torn-ref");
        {
            let mut j = JournalFile::open(&reference).unwrap().journal;
            j.append(b"first record").unwrap();
            j.append(b"second record, a bit longer").unwrap();
        }
        let full = std::fs::read(&reference).unwrap();
        std::fs::remove_file(&reference).ok();

        // The first record ends at HEADER_LEN + FRAME_LEN + 12.
        let first_end = HEADER_LEN + FRAME_LEN + b"first record".len();
        // Cut anywhere strictly inside the second record's frame: the
        // first record must survive, the tail must be dropped.
        for cut in first_end + 1..full.len() {
            let path = temp_journal("torn");
            std::fs::write(&path, &full[..cut]).unwrap();
            let (records, truncated) = reopen_records(&path);
            assert_eq!(records, vec![b"first record".to_vec()], "cut at {cut}");
            assert_eq!(truncated, (cut - first_end) as u64, "cut at {cut}");
            // The truncation is persistent: a second open is clean.
            let (records, truncated) = reopen_records(&path);
            assert_eq!(records.len(), 1);
            assert_eq!(truncated, 0);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn append_after_torn_tail_recovery_works() {
        let path = temp_journal("recover-append");
        {
            let mut j = JournalFile::open(&path).unwrap().journal;
            j.append(b"kept").unwrap();
        }
        // Simulate a crash mid-append: half a frame header.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB, 0xCD]).unwrap();
        }
        let opened = JournalFile::open(&path).unwrap();
        assert_eq!(opened.truncated_bytes, 2);
        let mut j = opened.journal;
        j.append(b"appended after recovery").unwrap();
        let (records, truncated) = reopen_records(&path);
        assert_eq!(
            records,
            vec![b"kept".to_vec(), b"appended after recovery".to_vec()]
        );
        assert_eq!(truncated, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_drops_it_and_everything_after() {
        let path = temp_journal("corrupt");
        {
            let mut j = JournalFile::open(&path).unwrap().journal;
            j.append(b"good one").unwrap();
            j.append(b"flipped").unwrap();
            j.append(b"unreachable").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the second record.
        let off = HEADER_LEN + FRAME_LEN + b"good one".len() + FRAME_LEN;
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (records, truncated) = reopen_records(&path);
        assert_eq!(records, vec![b"good one".to_vec()]);
        assert!(truncated > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_newer_version_fail_loudly() {
        let path = temp_journal("magic");
        std::fs::write(&path, b"NOPE\x01\x00").unwrap();
        assert!(matches!(
            JournalFile::open(&path),
            Err(StoreError::BadMagic { found }) if &found == b"NOPE"
        ));
        let mut header = JOURNAL_MAGIC.to_vec();
        header.extend_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &header).unwrap();
        assert!(matches!(
            JournalFile::open(&path),
            Err(StoreError::UnsupportedVersion { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
