//! Content-hash cache keys.
//!
//! An artifact is addressed by a hash of everything its models depend on:
//! the printed module IR, the protection-plan fingerprint, and the
//! training configuration (size profile, training seeds, AR settings).
//! Change any of those and the key changes, so a stale artifact can never
//! be loaded against a mismatched binary — the lookup simply misses.
//!
//! Parts are length-prefixed before hashing, so `("ab", "c")` and
//! `("a", "bc")` produce different keys.

use crate::digest::Fnv1a64;

/// A 64-bit content-hash cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Starts building a key from hashed parts.
    pub fn builder() -> CacheKeyBuilder {
        CacheKeyBuilder(Fnv1a64::new())
    }

    /// The raw hash value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The key as 16 lowercase hex digits (used in artifact filenames).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses a key from its [`hex`](Self::hex) form.
    pub fn parse(s: &str) -> Option<CacheKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Accumulates length-prefixed parts into a [`CacheKey`].
#[derive(Clone, Copy, Debug)]
pub struct CacheKeyBuilder(Fnv1a64);

impl CacheKeyBuilder {
    /// Absorbs one binary part (length-prefixed).
    pub fn part(mut self, bytes: &[u8]) -> Self {
        self.0.update(&(bytes.len() as u64).to_le_bytes());
        self.0.update(bytes);
        self
    }

    /// Absorbs one textual part.
    pub fn text(self, s: &str) -> Self {
        self.part(s.as_bytes())
    }

    /// Absorbs a sequence of integers (e.g. training seeds).
    pub fn ints(mut self, values: &[u64]) -> Self {
        self.0.update(&(values.len() as u64).to_le_bytes());
        for v in values {
            self.0.update(&v.to_le_bytes());
        }
        self
    }

    /// Finishes the key.
    pub fn finish(self) -> CacheKey {
        CacheKey(self.0.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let k = CacheKey::builder().text("module ir").text("plan").finish();
        assert_eq!(CacheKey::parse(&k.hex()), Some(k));
        assert_eq!(k.hex().len(), 16);
        assert_eq!(format!("{k}"), k.hex());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(CacheKey::parse(""), None);
        assert_eq!(CacheKey::parse("xyz"), None);
        assert_eq!(CacheKey::parse("00112233445566778"), None); // 17 chars
        assert_eq!(CacheKey::parse("001122334455667g"), None);
    }

    #[test]
    fn length_prefix_prevents_part_sliding() {
        let a = CacheKey::builder().text("ab").text("c").finish();
        let b = CacheKey::builder().text("a").text("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn any_part_change_changes_the_key() {
        let base = CacheKey::builder()
            .text("ir")
            .text("plan")
            .ints(&[1000, 1001])
            .finish();
        let ir = CacheKey::builder()
            .text("ir2")
            .text("plan")
            .ints(&[1000, 1001])
            .finish();
        let seeds = CacheKey::builder()
            .text("ir")
            .text("plan")
            .ints(&[1000, 1002])
            .finish();
        assert_ne!(base, ir);
        assert_ne!(base, seeds);
    }
}
