//! Corruption resistance of the on-disk artifact format.
//!
//! The acceptance bar is strict: *any* single-byte flip anywhere in an
//! artifact must make strict decoding fail — there is no byte whose
//! corruption yields wrong-but-loadable data. On top of the exhaustive
//! sweep, boundary bytes of every region of the container are checked
//! for the *right* [`StoreError`] variant, and the directory-level
//! [`Store`] is checked to never report a corrupted file as a clean hit.

use std::collections::BTreeMap;

use rskip_store::format::{decode, decode_lenient, validate};
use rskip_store::{
    ArtifactMeta, CacheKey, LoadOutcome, ModelArtifact, Store, StoreError, StoredDiModel,
    StoredModels, StoredPlan, StoredProfile, StoredRegionModel, StoredRegionPlan,
};

fn test_key() -> CacheKey {
    CacheKey::builder().text("corruption-test").finish()
}

/// A small but fully populated artifact (all four section kinds).
fn sample_artifact() -> ModelArtifact {
    let mut signature_tp = BTreeMap::new();
    signature_tp.insert("17".to_string(), 0.25);
    signature_tp.insert("42".to_string(), 0.75);
    let mut models = StoredModels::default();
    models.regions.insert(
        0,
        StoredRegionModel {
            di: StoredDiModel {
                signature_tp,
                default_tp: 0.5,
                trained_skip_rate: 0.9,
            },
            memo: None,
        },
    );
    let mut per_ar = BTreeMap::new();
    per_ar.insert("AR50".to_string(), models.clone());
    per_ar.insert("AR100".to_string(), models);

    ModelArtifact {
        meta: ArtifactMeta {
            bench: "corrupt-bench".to_string(),
            key: test_key().hex(),
            size: "tiny".to_string(),
            train_seeds: vec![1, 2],
        },
        plan: StoredPlan {
            regions: vec![StoredRegionPlan {
                region: 0,
                has_body: true,
                memoizable: true,
                acceptable_range: Some(0.5),
            }],
        },
        profiles: vec![StoredProfile {
            outputs: vec![1.0, 2.0, 3.0],
            samples: vec![(vec![0.5, 0.25], 1.0), (vec![1.5, 0.75], 2.0)],
        }],
        models: per_ar,
        supervisor: None,
    }
}

fn encoded() -> (Vec<u8>, Vec<(String, usize, usize)>) {
    let sections = sample_artifact().to_sections();
    let bytes = rskip_store::format::encode(&sections);
    // Recompute the layout independently of the decoder: header is
    // magic(4) + version(2) + count(2) + per-section entries
    // (name_len(2) + name + payload_len(8) + crc(4)) + header crc(4);
    // payloads follow in order; the file digest is the final 8 bytes.
    let mut offset = 4 + 2 + 2;
    for s in &sections {
        offset += 2 + s.name.len() + 8 + 4;
    }
    offset += 4;
    let mut spans = Vec::new();
    for s in &sections {
        spans.push((s.name.clone(), offset, s.payload.len()));
        offset += s.payload.len();
    }
    assert_eq!(offset + 8, bytes.len(), "layout model must match encoder");
    (bytes, spans)
}

/// Every single-byte flip anywhere in the file breaks strict decoding.
#[test]
fn every_single_byte_flip_fails_decode() {
    let (bytes, _) = encoded();
    decode(&bytes).expect("pristine artifact must decode");
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xA5;
        assert!(
            decode(&bad).is_err(),
            "flip at offset {i}/{} decoded anyway",
            bytes.len()
        );
        assert!(
            !validate(&bad).is_empty(),
            "flip at offset {i} passed validation"
        );
    }
}

/// Boundary bytes of each container region produce the *matching* error
/// variant, with the damaged section named.
#[test]
fn boundary_flips_report_the_right_error() {
    let (bytes, spans) = encoded();

    // Magic.
    for i in 0..4 {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        assert!(
            matches!(decode(&bad), Err(StoreError::BadMagic { .. })),
            "magic byte {i}"
        );
    }
    // Version (little-endian u16 right after the magic).
    for i in 4..6 {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        assert!(
            matches!(decode(&bad), Err(StoreError::UnsupportedVersion { .. })),
            "version byte {i}"
        );
    }
    // First byte of a section-table name: caught by the header checksum
    // (the flipped name still parses, so the CRC is the only witness).
    {
        let mut bad = bytes.clone();
        bad[8 + 2] ^= 0x01;
        assert!(
            matches!(decode(&bad), Err(StoreError::HeaderChecksum { .. })),
            "section-table name byte"
        );
    }
    // First and last byte of every payload: section checksum, naming the
    // section and its offset.
    for (name, offset, len) in &spans {
        for &i in &[*offset, *offset + len - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            match decode(&bad) {
                Err(StoreError::SectionChecksum {
                    section,
                    offset: reported,
                    ..
                }) => {
                    assert_eq!(&section, name, "flip at {i}");
                    assert_eq!(reported, *offset, "flip at {i}");
                }
                other => panic!("payload flip at {i} in `{name}`: got {other:?}"),
            }
        }
    }
    // Trailing digest: every section checksum passes, the file digest
    // catches it.
    for i in bytes.len() - 8..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        assert!(
            matches!(decode(&bad), Err(StoreError::FileDigest { .. })),
            "digest byte {i}"
        );
    }
}

/// Truncation at any length fails with an error (never a short read that
/// silently drops sections).
#[test]
fn every_truncation_fails_decode() {
    let (bytes, _) = encoded();
    for len in 0..bytes.len() {
        assert!(
            decode(&bytes[..len]).is_err(),
            "truncation to {len}/{} decoded anyway",
            bytes.len()
        );
    }
}

/// Lenient decoding of a payload-corrupted file recovers exactly the
/// intact sections and reports the damaged one.
#[test]
fn lenient_decode_recovers_intact_sections() {
    let (bytes, spans) = encoded();
    let (damaged_name, offset, _) = &spans[2];
    let mut bad = bytes.clone();
    bad[*offset] ^= 0xFF;
    let (sections, errors) = decode_lenient(&bad).expect("header is intact");
    assert_eq!(sections.len(), spans.len() - 1);
    assert!(sections.iter().all(|s| &s.name != damaged_name));
    assert!(errors.iter().any(
        |e| matches!(e, StoreError::SectionChecksum { section, .. } if section == damaged_name)
    ));
}

fn temp_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!("rskip-corruption-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir)
}

/// Directory-level sweep: a store never serves a corrupted artifact as a
/// clean hit, and corrupt meta poisons trust in the whole file.
#[test]
fn store_never_hits_on_a_corrupted_artifact() {
    let store = temp_store("load");
    let artifact = sample_artifact();
    let path = store.save(&artifact).expect("save");
    let pristine = std::fs::read(&path).expect("read back");
    match store.load("corrupt-bench", test_key()) {
        LoadOutcome::Hit(loaded) => assert_eq!(*loaded, artifact),
        other => panic!("pristine artifact must hit, got {other:?}"),
    }

    for i in 0..pristine.len() {
        let mut bad = pristine.clone();
        bad[i] ^= 0xA5;
        std::fs::write(&path, &bad).expect("write corrupted");
        match store.load("corrupt-bench", test_key()) {
            LoadOutcome::Hit(_) => panic!("flip at offset {i} loaded as a clean hit"),
            LoadOutcome::Partial(partial) => {
                // Whatever survived must equal the original sections —
                // recovery never invents data.
                assert_eq!(partial.meta, artifact.meta, "flip at {i}");
                if let Some(plan) = &partial.plan {
                    assert_eq!(plan, &artifact.plan, "flip at {i}");
                }
                if let Some(profiles) = &partial.profiles {
                    assert_eq!(profiles, &artifact.profiles, "flip at {i}");
                }
                for (label, models) in &partial.models {
                    assert_eq!(models, &artifact.models[label], "flip at {i}");
                }
                assert!(!partial.errors.is_empty(), "flip at {i}");
            }
            LoadOutcome::Rejected(errors) => {
                assert!(!errors.is_empty(), "flip at {i}")
            }
            LoadOutcome::Miss => panic!("artifact exists; flip at {i} cannot miss"),
        }
        // `verify` must flag the same corruption.
        let reports = store.verify();
        assert_eq!(reports.len(), 1);
        assert!(
            !reports[0].errors.is_empty(),
            "verify missed the flip at offset {i}"
        );
    }

    std::fs::remove_dir_all(store.dir()).ok();
}

/// A stale artifact renamed to another key's filename is rejected via the
/// meta cross-check, not trusted.
#[test]
fn renamed_artifact_is_rejected_by_key_cross_check() {
    let store = temp_store("rename");
    let artifact = sample_artifact();
    let path = store.save(&artifact).expect("save");
    let other_key = CacheKey::builder().text("some-other-config").finish();
    let masquerade = store.path_for("corrupt-bench", other_key);
    std::fs::rename(&path, &masquerade).expect("rename");
    match store.load("corrupt-bench", other_key) {
        LoadOutcome::Rejected(errors) => assert!(errors
            .iter()
            .any(|e| matches!(e, StoreError::KeyMismatch { .. }))),
        other => panic!("expected rejection, got {other:?}"),
    }
    std::fs::remove_dir_all(store.dir()).ok();
}
