//! A hand-broken protected-module corpus: each module reproduces one
//! concrete protection-pass bug, and each test asserts the *exact*
//! diagnostic kind and source location `rskip-lint` reports for it. The
//! clean control build proves the corpus modules would otherwise pass.

use rskip_analysis::{lint_memoized_body, lint_module, CoverageKind, ValidationModel};
use rskip_ir::{BinOp, BlockId, CmpOp, InstLoc, Module, ModuleBuilder, Operand, Ty, Verifier};

/// Builds a minimal hand-triplicated (SWIFT-R-style) module:
///
/// ```text
/// entry[0..3]  a/a1/a2   = 7            (triplicated seed)
/// entry[3..6]  x/x1/x2   = aN * 3       (triplicated compute)
/// entry[6]     t         = x == x1
/// entry[7]     m         = select t, x, x2   (majority vote)
/// entry[8]     out      <- m                 (validated store)
/// ```
///
/// `breakage` rewrites the straight-line recipe to inject one bug.
enum Breakage {
    /// The control: a correctly protected store.
    None,
    /// The third shadow compute is a bare copy instead of the cloned
    /// multiply — the replica diverges and the vote no longer covers it.
    DroppedShadowOp,
    /// The store consumes the raw primary replica, skipping the vote.
    SkippedVote,
}

fn triplicated_store(breakage: Breakage) -> Module {
    let mut mb = ModuleBuilder::new("corpus");
    let out = mb.global_zeroed("out", Ty::I64, 1);
    let mut f = mb.function("main", vec![], None);

    let a = f.mov_new(Ty::I64, Operand::imm_i(7));
    let a1 = f.mov_new(Ty::I64, Operand::imm_i(7));
    let a2 = f.mov_new(Ty::I64, Operand::imm_i(7));
    let x = f.bin(BinOp::Mul, Ty::I64, Operand::reg(a), Operand::imm_i(3));
    let x1 = f.bin(BinOp::Mul, Ty::I64, Operand::reg(a1), Operand::imm_i(3));
    let x2 = match breakage {
        // The pass was supposed to clone the multiply for the third
        // replica; a bare mov leaves x2 carrying the un-multiplied seed.
        Breakage::DroppedShadowOp => f.mov_new(Ty::I64, Operand::reg(a2)),
        _ => f.bin(BinOp::Mul, Ty::I64, Operand::reg(a2), Operand::imm_i(3)),
    };
    match breakage {
        Breakage::SkippedVote => {
            // No compare, no vote: the raw primary goes straight to memory.
            f.store(Ty::I64, Operand::global(out), Operand::reg(x));
        }
        _ => {
            let t = f.cmp(CmpOp::Eq, Ty::I64, Operand::reg(x), Operand::reg(x1));
            let m = f.select(Ty::I64, Operand::reg(t), Operand::reg(x), Operand::reg(x2));
            f.store(Ty::I64, Operand::global(out), Operand::reg(m));
        }
    }
    f.ret(None);
    f.finish();
    mb.finish()
}

fn lint(module: &Module) -> rskip_analysis::CoverageReport {
    Verifier::new(module)
        .verify()
        .expect("corpus modules must verify — the bugs are semantic, not structural");
    lint_module(module, ValidationModel::Vote)
}

#[test]
fn control_module_lints_clean() {
    let report = lint(&triplicated_store(Breakage::None));
    assert!(
        report.is_clean(),
        "control must be clean:\n{}",
        report
            .diags
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );
    assert!(report.map.claims() > 0);
}

#[test]
fn dropped_shadow_op_is_diagnosed_at_the_store() {
    let report = lint(&triplicated_store(Breakage::DroppedShadowOp));
    assert_eq!(
        report.diags.len(),
        1,
        "exactly one window: {:?}",
        report.diags
    );
    let d = &report.diags[0];
    // The divergent replica breaks the vote, so the *store* at entry[8]
    // consumes an unvalidated value.
    assert_eq!(d.kind, CoverageKind::UnprotectedStoreValue);
    assert_eq!(d.loc, InstLoc::inst("main", BlockId(0), "entry", 8));
}

#[test]
fn skipped_vote_is_diagnosed_at_the_store() {
    let report = lint(&triplicated_store(Breakage::SkippedVote));
    assert_eq!(
        report.diags.len(),
        1,
        "exactly one window: {:?}",
        report.diags
    );
    let d = &report.diags[0];
    // Without the vote the store at entry[6] consumes the raw replica.
    assert_eq!(d.kind, CoverageKind::UnprotectedStoreValue);
    assert_eq!(d.loc, InstLoc::inst("main", BlockId(0), "entry", 6));
}

#[test]
fn unvalidated_branch_condition_is_diagnosed_at_the_terminator() {
    let mut mb = ModuleBuilder::new("corpus");
    let out = mb.global_zeroed("out", Ty::I64, 1);
    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    let yes = f.new_block("yes");
    let no = f.new_block("no");
    f.switch_to(entry);
    let a = f.mov_new(Ty::I64, Operand::imm_i(7));
    // Single-replica condition, never checked or voted.
    let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(a), Operand::imm_i(10));
    f.cond_br(Operand::reg(c), yes, no);
    f.switch_to(yes);
    f.store(Ty::I64, Operand::global(out), Operand::imm_i(1));
    f.ret(None);
    f.switch_to(no);
    f.ret(None);
    f.finish();
    let module = mb.finish();

    let report = lint(&module);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.kind == CoverageKind::UnprotectedBranch
                && d.loc == InstLoc::term("main", BlockId(0), "entry")),
        "expected an unprotected-branch diagnostic at entry[term], got:\n{}",
        report
            .diags
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );
}

#[test]
fn impure_call_inside_memoized_body_is_diagnosed() {
    let mut mb = ModuleBuilder::new("corpus");
    let log = mb.global_zeroed("log", Ty::I64, 1);

    // The memoized body calls a helper that writes to memory — replaying
    // or memoizing the body would change observable state.
    let mut helper = mb.function("bump", vec![], None);
    helper.store(Ty::I64, Operand::global(log), Operand::imm_i(1));
    helper.ret(None);
    helper.finish();

    let mut body = mb.function("body", vec![Ty::I64], Some(Ty::I64));
    let p = body.param(0);
    body.call("bump", vec![], None);
    let r = body.bin(BinOp::Mul, Ty::I64, Operand::reg(p), Operand::reg(p));
    body.ret(Some(Operand::reg(r)));
    body.finish();
    let module = mb.finish();

    let diags = lint_memoized_body(&module, "body");
    assert_eq!(diags.len(), 1, "exactly one blocker: {diags:?}");
    assert_eq!(diags[0].kind, CoverageKind::ImpureMemoizedBody);
    assert_eq!(diags[0].loc, InstLoc::inst("body", BlockId(0), "entry", 0));
    assert!(
        diags[0].message.contains("impure function @bump"),
        "message names the impure callee: {}",
        diags[0].message
    );
}
