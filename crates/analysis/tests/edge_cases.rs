//! Edge-case coverage for the dominator and liveness analyses on the
//! CFG shapes the section partitioner leans on hardest: unreachable
//! blocks, single-block functions, and back-edge-heavy loop nests.

use std::collections::BTreeSet;

use rskip_analysis::{Cfg, DomTree, Liveness, SectionMap, VulnAnalysis};
use rskip_ir::{BinOp, BlockId, CmpOp, Function, Module, ModuleBuilder, Operand, Reg, Ty};

fn single_block_module() -> Module {
    let mut mb = ModuleBuilder::new("single");
    let out = mb.global_zeroed("out", Ty::I64, 1);
    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    f.switch_to(entry);
    let x = f.bin(BinOp::Add, Ty::I64, Operand::imm_i(2), Operand::imm_i(3));
    f.store(Ty::I64, Operand::global(out), Operand::reg(x));
    f.ret(None);
    f.finish();
    mb.finish()
}

/// entry → exit, plus two blocks no edge reaches (one of which loops on
/// itself, so reachability must not be fooled by incoming edges from
/// other unreachable blocks).
fn unreachable_module() -> Module {
    let mut mb = ModuleBuilder::new("unreachable");
    let out = mb.global_zeroed("out", Ty::I64, 1);
    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    let exit = f.new_block("exit");
    let dead_a = f.new_block("dead_a");
    let dead_b = f.new_block("dead_b");
    let x = f.def_reg(Ty::I64, "x");

    f.switch_to(entry);
    f.mov(x, Operand::imm_i(41));
    f.br(exit);

    f.switch_to(exit);
    f.bin_into(x, BinOp::Add, Ty::I64, Operand::reg(x), Operand::imm_i(1));
    f.store(Ty::I64, Operand::global(out), Operand::reg(x));
    f.ret(None);

    // Dead blocks: a → b → a, a little unreachable cycle.
    f.switch_to(dead_a);
    f.bin_into(x, BinOp::Add, Ty::I64, Operand::reg(x), Operand::imm_i(10));
    f.br(dead_b);
    f.switch_to(dead_b);
    f.br(dead_a);

    f.finish();
    mb.finish()
}

/// A triple-nested counted loop: three back edges, every header
/// dominating its body, with a loop-carried accumulator threaded
/// through all three levels.
fn nested_loops_module() -> Module {
    let mut mb = ModuleBuilder::new("nest");
    let out = mb.global_zeroed("out", Ty::I64, 1);
    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    let h1 = f.new_block("h1");
    let h2 = f.new_block("h2");
    let h3 = f.new_block("h3");
    let body = f.new_block("body");
    let l3 = f.new_block("latch3");
    let l2 = f.new_block("latch2");
    let l1 = f.new_block("latch1");
    let exit = f.new_block("exit");
    let i = f.def_reg(Ty::I64, "i");
    let j = f.def_reg(Ty::I64, "j");
    let k = f.def_reg(Ty::I64, "k");
    let s = f.def_reg(Ty::I64, "s");

    f.switch_to(entry);
    f.mov(s, Operand::imm_i(0));
    f.mov(i, Operand::imm_i(0));
    f.br(h1);

    f.switch_to(h1);
    let c1 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(3));
    f.mov(j, Operand::imm_i(0));
    f.cond_br(Operand::reg(c1), h2, exit);

    f.switch_to(h2);
    let c2 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(j), Operand::imm_i(3));
    f.mov(k, Operand::imm_i(0));
    f.cond_br(Operand::reg(c2), h3, l1);

    f.switch_to(h3);
    let c3 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(k), Operand::imm_i(3));
    f.cond_br(Operand::reg(c3), body, l2);

    f.switch_to(body);
    f.bin_into(s, BinOp::Add, Ty::I64, Operand::reg(s), Operand::imm_i(1));
    f.br(l3);

    f.switch_to(l3);
    f.bin_into(k, BinOp::Add, Ty::I64, Operand::reg(k), Operand::imm_i(1));
    f.br(h3);

    f.switch_to(l2);
    f.bin_into(j, BinOp::Add, Ty::I64, Operand::reg(j), Operand::imm_i(1));
    f.br(h2);

    f.switch_to(l1);
    f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
    f.br(h1);

    f.switch_to(exit);
    f.store(Ty::I64, Operand::global(out), Operand::reg(s));
    f.ret(None);
    f.finish();
    mb.finish()
}

fn main_fn(m: &Module) -> &Function {
    m.functions.iter().find(|f| f.name == "main").unwrap()
}

#[test]
fn single_block_function_dominates_itself_only() {
    let m = single_block_module();
    let f = main_fn(&m);
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let entry = BlockId(0);
    assert_eq!(dom.idom(entry), None, "the entry has no idom");
    assert!(dom.dominates(entry, entry));
    assert!(!dom.strictly_dominates(entry, entry));

    // Nothing is live across the single block's boundaries.
    let live = Liveness::new(f, &cfg);
    assert!(live.live_in(entry).is_empty());
    assert!(live.live_out(entry).is_empty());

    // The whole function is one entry section.
    let sections = SectionMap::build(&m);
    assert_eq!(
        sections
            .sections()
            .iter()
            .filter(|s| s.func_name == "main")
            .count(),
        1
    );
}

#[test]
fn unreachable_blocks_are_outside_dominance_and_liveness() {
    let m = unreachable_module();
    let f = main_fn(&m);
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let (entry, exit) = (BlockId(0), BlockId(1));
    let (dead_a, dead_b) = (BlockId(2), BlockId(3));

    assert!(cfg.is_reachable(exit));
    assert!(
        !cfg.is_reachable(dead_a) && !cfg.is_reachable(dead_b),
        "a cycle of dead blocks must not count as reachable"
    );
    assert_eq!(dom.idom(exit), Some(entry));
    assert_eq!(dom.idom(dead_a), None, "unreachable blocks have no idom");
    assert_eq!(dom.idom(dead_b), None);
    assert!(
        !dom.dominates(entry, dead_a),
        "nothing dominates an unreachable block"
    );

    // Liveness converges and reports nothing live into the entry even
    // though the dead cycle reads `x` upward-exposed.
    let live = Liveness::new(f, &cfg);
    assert!(live.live_in(entry).is_empty());

    // The fault-liveness layer stays total: boundaries in dead blocks
    // answer queries (conservatively) instead of panicking. `x` is
    // upward-exposed around the dead cycle, so it reads as live there.
    let x = Reg(f
        .regs
        .iter()
        .position(|r| r.name.as_deref() == Some("x"))
        .unwrap() as u32);
    let vuln = VulnAnalysis::analyze(&m);
    let fv = vuln.func("main").unwrap();
    assert!(
        !fv.benign_skip(dead_a, 0),
        "dead-block boundaries are conservatively non-benign"
    );
    assert_eq!(
        fv.benign_bits(dead_a, 0, x),
        0,
        "a live unmasked register has no benign bits, even in a dead block"
    );

    // And the section partitioner pools them into one trailing section.
    let sections = SectionMap::build(&m);
    let dead_section = sections.section_of_named("main", dead_a).unwrap();
    assert_eq!(
        sections.section_of_named("main", dead_b).unwrap().id,
        dead_section.id
    );
    assert_ne!(
        sections.section_of_named("main", entry).unwrap().id,
        dead_section.id
    );
}

#[test]
fn nested_loops_dominance_and_loop_carried_liveness() {
    let m = nested_loops_module();
    let f = main_fn(&m);
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let (entry, h1, h2, h3) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
    let (body, l3, l2, l1) = (BlockId(4), BlockId(5), BlockId(6), BlockId(7));

    // Header chain dominates inward; latches are dominated by their
    // headers but dominate nothing of the outer levels.
    for b in [h1, h2, h3, body, l3, l2, l1] {
        assert!(dom.dominates(entry, b));
        assert!(dom.dominates(h1, b));
    }
    assert!(dom.dominates(h2, h3) && dom.dominates(h3, body));
    assert!(dom.strictly_dominates(h3, l3));
    assert!(
        !dom.dominates(l3, h3),
        "a latch does not dominate its header"
    );
    assert!(!dom.dominates(body, l2));

    // Loop-carried registers stay live around every back edge: the
    // accumulator is live-in at all three headers, each counter at its
    // own header.
    let live = Liveness::new(f, &cfg);
    let names = |set: &BTreeSet<Reg>| -> Vec<String> {
        set.iter()
            .map(|r| f.regs[r.0 as usize].name.clone().unwrap_or_default())
            .collect()
    };
    for h in [h1, h2, h3] {
        assert!(
            names(live.live_in(h)).contains(&"s".to_string()),
            "accumulator must be live-in at header {h:?}"
        );
    }
    assert!(names(live.live_in(h1)).contains(&"i".to_string()));
    assert!(names(live.live_in(h3)).contains(&"k".to_string()));
    assert!(
        !names(live.live_in(h1)).contains(&"k".to_string()),
        "the innermost counter is dead around the outermost back edge"
    );

    // Every header leads its own section.
    let sections = SectionMap::build(&m);
    let ids: Vec<usize> = [h1, h2, h3]
        .iter()
        .map(|&h| sections.section_of_named("main", h).unwrap().id)
        .collect();
    assert_eq!(ids.len(), 3);
    assert!(ids[0] != ids[1] && ids[1] != ids[2] && ids[0] != ids[2]);
    for &h in &[h1, h2, h3] {
        let sec = sections.section_of_named("main", h).unwrap();
        assert_eq!(sec.leader, h, "a loop header must lead its section");
    }
}
