//! Property tests over the structural analyses on randomly generated
//! CFGs.

use proptest::prelude::*;
use rskip_analysis::{Cfg, DomTree, Liveness, LoopForest};
use rskip_ir::{BlockId, Function, Module, Operand, Terminator, Ty};

/// Builds a function with `n` blocks and random terminators (each block
/// branches to blocks chosen from the edge list), always verifiable.
fn build_cfg(n: usize, edges: &[(usize, usize, Option<usize>)]) -> Module {
    let mut m = Module::new("prop");
    let mut f = Function::new("main", vec![Ty::I64], None);
    let cond = rskip_ir::Reg(0);
    for i in 1..n {
        f.add_block(format!("b{i}"));
    }
    for &(from, to, alt) in edges {
        let from = BlockId((from % n) as u32);
        let to = BlockId((to % n) as u32);
        f.block_mut(from).term = match alt {
            Some(a) => Terminator::CondBr(Operand::Reg(cond), to, BlockId((a % n) as u32)),
            None => Terminator::Br(to),
        };
    }
    // Blocks without an assigned terminator return.
    m.add_function(f);
    m
}

fn edge_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize, Option<usize>)>> {
    prop::collection::vec((0..n, 0..n, prop::option::of(0..n)), 0..(3 * n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominator_tree_properties(
        n in 2usize..12,
        edges in edge_strategy(12),
    ) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        rskip_ir::Verifier::new(&m).verify().expect("verifies");
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let entry = BlockId(0);

        for (b, _) in f.iter_blocks() {
            if cfg.is_reachable(b) {
                // The entry dominates every reachable block.
                prop_assert!(dom.dominates(entry, b));
                // Every block dominates itself.
                prop_assert!(dom.dominates(b, b));
                // The immediate dominator (if any) strictly dominates.
                if let Some(idom) = dom.idom(b) {
                    prop_assert!(dom.strictly_dominates(idom, b));
                    prop_assert!(cfg.is_reachable(idom));
                    // idom is a dominator of every predecessor path: check
                    // it dominates b but no block strictly between exists
                    // that b's other dominators miss — weak form: idom is
                    // dominated by every other dominator of b.
                    for (d, _) in f.iter_blocks() {
                        if d != b && dom.dominates(d, b) {
                            prop_assert!(
                                dom.dominates(d, idom) || d == idom,
                                "dominator {d} of {b} neither idom nor above it"
                            );
                        }
                    }
                }
            } else {
                prop_assert!(!dom.dominates(entry, b));
            }
        }
    }

    #[test]
    fn loop_forest_properties(
        n in 2usize..12,
        edges in edge_strategy(12),
    ) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);

        for lp in forest.loops() {
            // The header is in the loop and dominates every loop block.
            prop_assert!(lp.contains(lp.header));
            for &b in &lp.blocks {
                prop_assert!(dom.dominates(lp.header, b), "header must dominate {b}");
            }
            // Every latch branches to the header.
            for &l in &lp.latches {
                prop_assert!(lp.contains(l));
                prop_assert!(f.block(l).term.successors().contains(&lp.header));
            }
            // Exiting blocks really exit.
            for &e in &lp.exiting {
                prop_assert!(lp.contains(e));
                prop_assert!(f
                    .block(e)
                    .term
                    .successors()
                    .iter()
                    .any(|s| !lp.contains(*s)));
            }
            // Nesting: the parent strictly contains this loop.
            if let Some(p) = lp.parent {
                let parent = &forest.loops()[p];
                prop_assert!(parent.blocks.is_superset(&lp.blocks));
                prop_assert!(parent.blocks.len() > lp.blocks.len());
                prop_assert_eq!(parent.depth + 1, lp.depth);
            } else {
                prop_assert_eq!(lp.depth, 0);
            }
        }
    }

    #[test]
    fn rpo_orders_dominators_first(
        n in 2usize..12,
        edges in edge_strategy(12),
    ) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        for (b, _) in f.iter_blocks() {
            if let Some(idom) = dom.idom(b) {
                prop_assert!(
                    cfg.rpo_index(idom).unwrap() < cfg.rpo_index(b).unwrap(),
                    "idom must precede its block in RPO"
                );
            }
        }
    }

    #[test]
    fn liveness_is_a_fixpoint(
        n in 2usize..10,
        edges in edge_strategy(10),
    ) {
        // live_out(B) == union of successors' live_in — recheck directly.
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        for (b, _) in f.iter_blocks() {
            let mut expect = std::collections::BTreeSet::new();
            for &s in cfg.succs(b) {
                expect.extend(live.live_in(s).iter().copied());
            }
            prop_assert_eq!(live.live_out(b), &expect);
        }
    }
}
