//! Block-level liveness analysis.
//!
//! Classic backward dataflow: `live_in(B) = use(B) ∪ (live_out(B) ∖
//! def(B))`, `live_out(B) = ⋃ live_in(succ)`. The paper notes that "any
//! compiler optimization to reduce register lifetime will be helpful"
//! against post-validation faults (§7.2) — liveness is the enabling
//! analysis, and the fault-injection analysis uses it to reason about
//! masked faults in dead registers.

use std::collections::BTreeSet;

use rskip_ir::{BlockId, Function, Operand, Reg};

use crate::cfg::Cfg;

/// Live-in/live-out register sets per block.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<BTreeSet<Reg>>,
    live_out: Vec<BTreeSet<Reg>>,
}

impl Liveness {
    /// Computes liveness for `f`.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); n];
        let mut kill: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); n];
        for (bid, block) in f.iter_blocks() {
            let g = &mut gen[bid.index()];
            let k = &mut kill[bid.index()];
            for inst in &block.insts {
                for r in inst.used_regs() {
                    if !k.contains(&r) {
                        g.insert(r);
                    }
                }
                if let Some(d) = inst.dst() {
                    k.insert(d);
                }
            }
            if let Some(Operand::Reg(r)) = block.term.used_operand() {
                if !k.contains(&r) {
                    g.insert(r);
                }
            }
        }

        let mut live_in: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); n];
        // Postorder (reverse RPO) converges fastest for backward flow;
        // unreachable blocks are appended so their sets are well-defined
        // too (passes may query them before cleanup runs).
        let mut order: Vec<BlockId> = cfg.rpo().iter().rev().copied().collect();
        for (id, _) in f.iter_blocks() {
            if !cfg.is_reachable(id) {
                order.push(id);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let bi = b.index();
                let mut out = BTreeSet::new();
                for &s in cfg.succs(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = gen[bi].clone();
                for r in out.difference(&kill[bi]) {
                    inn.insert(*r);
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &BTreeSet<Reg> {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &BTreeSet<Reg> {
        &self.live_out[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Ty};

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], Some(Ty::I64));
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let acc = f.def_reg(Ty::I64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.mov(acc, Operand::imm_i(0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(4));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        f.bin_into(acc, BinOp::Add, Ty::I64, Operand::reg(acc), Operand::reg(i));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(header);
        f.switch_to(exit);
        f.ret(Some(Operand::reg(acc)));
        f.finish();
        let m = mb.finish();
        let func = &m.functions[0];
        let cfg = Cfg::new(func);
        let live = Liveness::new(func, &cfg);

        // acc is live into the header (used by body and by exit's ret).
        assert!(live.live_in(header).contains(&acc));
        assert!(live.live_in(body).contains(&acc));
        assert!(live.live_in(exit).contains(&acc));
        // i is live into header/body but not into exit.
        assert!(live.live_in(header).contains(&i));
        assert!(!live.live_in(exit).contains(&i));
        // Nothing is live into the entry.
        assert!(live.live_in(entry).is_empty());
    }

    use rskip_ir::Operand;

    #[test]
    fn dead_def_is_not_live() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let next = f.new_block("next");
        f.switch_to(entry);
        let dead = f.mov_new(Ty::I64, Operand::imm_i(1));
        f.br(next);
        f.switch_to(next);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let func = &m.functions[0];
        let cfg = Cfg::new(func);
        let live = Liveness::new(func, &cfg);
        assert!(!live.live_out(entry).contains(&dead));
    }
}
