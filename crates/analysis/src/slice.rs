//! Backward value slices within a loop.
//!
//! The RSkip transform must isolate "the sequence of computation" producing
//! a stored value (paper Fig. 1) so it can be outlined into a re-executable
//! body function. [`BackwardSlice::compute`] walks def-use chains backwards
//! from the stored value, staying inside the target loop. When a needed
//! definition sits inside a nested loop, the *entire* subloop is pulled
//! into the slice (the reduction-loop pattern of Fig. 4b).

use std::collections::BTreeSet;

use rskip_ir::{BlockId, Function, Inst, Operand, Reg};

use crate::loops::LoopForest;

/// Why a slice could not be formed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SliceError {
    /// The slice would include an instruction with side effects (a store or
    /// an intrinsic call). Calls are allowed — purity is the caller's check.
    Impure {
        /// Block of the offending instruction.
        block: BlockId,
        /// Index of the offending instruction.
        idx: usize,
    },
    /// A register needed by the slice has a definition inside the loop that
    /// could not be attributed to the slice structure (e.g. defined in a
    /// block of the target loop that also feeds non-slice control flow).
    UnstructuredDef(Reg),
    /// An included subloop contains a store, call or intrinsic — it is not
    /// a pure reduction.
    ImpureSubloop(usize),
    /// The stored value is not produced by a register (a constant store is
    /// never a protection candidate).
    ConstantValue,
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::Impure { block, idx } => {
                write!(
                    f,
                    "slice includes side-effecting instruction {block}[{idx}]"
                )
            }
            SliceError::UnstructuredDef(r) => {
                write!(f, "register {r} has an unstructured in-loop definition")
            }
            SliceError::ImpureSubloop(i) => write!(f, "included subloop {i} is impure"),
            SliceError::ConstantValue => write!(f, "stored value is a constant"),
        }
    }
}

impl std::error::Error for SliceError {}

/// The backward slice of one stored value within a target loop.
#[derive(Clone, Debug)]
pub struct BackwardSlice {
    /// Slice instructions in the target loop's direct blocks:
    /// `(block, instruction index)`.
    pub insts: BTreeSet<(BlockId, usize)>,
    /// Indices (into the [`LoopForest`]) of complete subloops included in
    /// the slice.
    pub subloops: Vec<usize>,
    /// Registers read by slice instructions, in first-encounter order
    /// (deduplicated). Superset of the true live-ins; the outliner prunes
    /// it with a liveness pass.
    pub read_regs: Vec<Reg>,
    /// Registers defined by slice instructions.
    pub defined_regs: BTreeSet<Reg>,
    /// Callee names of calls inside the slice (the Fig. 4a pattern when the
    /// slice is exactly one call).
    pub calls: Vec<String>,
    /// A load whose address operand is identical to the store's address
    /// operand (the in-place update of Fig. 4b / `lud`). Excluded from the
    /// slice; its destination becomes a body parameter carrying the
    /// original cell value.
    pub aliased_load: Option<(BlockId, usize)>,
    /// Destination register of the aliased load, if any.
    pub aliased_dst: Option<Reg>,
}

impl BackwardSlice {
    /// Computes the backward slice of the value stored by
    /// `f.block(store_block).insts[store_idx]` within loop `loop_idx`.
    ///
    /// # Errors
    ///
    /// See [`SliceError`].
    ///
    /// # Panics
    ///
    /// Panics if the referenced instruction is not a store.
    pub fn compute(
        f: &Function,
        forest: &LoopForest,
        loop_idx: usize,
        store_block: BlockId,
        store_idx: usize,
    ) -> Result<BackwardSlice, SliceError> {
        let lp = &forest.loops()[loop_idx];
        let Inst::Store { addr, value, .. } = &f.block(store_block).insts[store_idx] else {
            panic!("slice target is not a store");
        };
        let value_reg = match value {
            Operand::Reg(r) => *r,
            _ => return Err(SliceError::ConstantValue),
        };
        let iv_reg = lp.induction.as_ref().map(|iv| iv.reg);

        // Blocks of each direct or transitive subloop of the target loop.
        let mut subloop_of_block: std::collections::HashMap<BlockId, usize> =
            std::collections::HashMap::new();
        for (i, l) in forest.loops().iter().enumerate() {
            if i == loop_idx {
                continue;
            }
            if !l.blocks.is_subset(&lp.blocks) {
                continue;
            }
            // Attribute each block to its *outermost* subloop within the
            // target loop, so an inner-inner loop is absorbed by its parent.
            for &b in &l.blocks {
                let entry = subloop_of_block.entry(b).or_insert(i);
                if forest.loops()[*entry].blocks.len() < l.blocks.len() {
                    *entry = i;
                }
            }
        }

        let mut slice = BackwardSlice {
            insts: BTreeSet::new(),
            subloops: Vec::new(),
            read_regs: Vec::new(),
            defined_regs: BTreeSet::new(),
            calls: Vec::new(),
            aliased_load: None,
            aliased_dst: None,
        };
        let mut included_subloops: BTreeSet<usize> = BTreeSet::new();
        let mut visited_regs: BTreeSet<Reg> = BTreeSet::new();
        let mut worklist: Vec<Reg> = vec![value_reg];
        let mut reads_seen: BTreeSet<Reg> = BTreeSet::new();

        let note_read = |slice: &mut BackwardSlice, seen: &mut BTreeSet<Reg>, r: Reg| {
            if seen.insert(r) {
                slice.read_regs.push(r);
            }
        };

        while let Some(reg) = worklist.pop() {
            if !visited_regs.insert(reg) {
                continue;
            }
            // The induction variable is always a live-in parameter; its
            // update stays in the (conventionally protected) loop shell.
            if Some(reg) == iv_reg {
                continue;
            }
            // Find all in-loop definitions of `reg`.
            let mut found_in_loop = false;
            for &b in &lp.blocks {
                for (idx, inst) in f.block(b).insts.iter().enumerate() {
                    if inst.dst() != Some(reg) {
                        continue;
                    }
                    found_in_loop = true;
                    if let Some(&sub) = subloop_of_block.get(&b) {
                        // Defined inside a subloop: include it whole.
                        if included_subloops.insert(sub) {
                            slice.subloops.push(sub);
                            let subl = &forest.loops()[sub];
                            for &sb in &subl.blocks {
                                for (sidx, sinst) in f.block(sb).insts.iter().enumerate() {
                                    match sinst {
                                        Inst::Store { .. } | Inst::IntrinsicCall { .. } => {
                                            return Err(SliceError::ImpureSubloop(sub));
                                        }
                                        Inst::Call { callee, .. } => {
                                            slice.calls.push(callee.clone());
                                        }
                                        _ => {}
                                    }
                                    slice.insts.insert((sb, sidx));
                                    if let Some(d) = sinst.dst() {
                                        slice.defined_regs.insert(d);
                                    }
                                    for r in sinst.used_regs() {
                                        note_read(&mut slice, &mut reads_seen, r);
                                        worklist.push(r);
                                    }
                                }
                                // Subloop branch conditions feed control
                                // flow; their registers are slice reads.
                                if let Some(Operand::Reg(r)) = f.block(sb).term.used_operand() {
                                    note_read(&mut slice, &mut reads_seen, r);
                                    worklist.push(r);
                                }
                            }
                        }
                        continue;
                    }

                    // Direct-block definition.
                    match inst {
                        Inst::Store { .. } | Inst::IntrinsicCall { .. } => {
                            return Err(SliceError::Impure { block: b, idx });
                        }
                        Inst::Load { addr: laddr, .. } if laddr == addr => {
                            // In-place update: the load of the cell the
                            // store overwrites. Becomes a parameter.
                            slice.aliased_load = Some((b, idx));
                            slice.aliased_dst = Some(reg);
                            continue;
                        }
                        Inst::Call { callee, .. } => {
                            slice.calls.push(callee.clone());
                        }
                        _ => {}
                    }
                    slice.insts.insert((b, idx));
                    slice.defined_regs.insert(reg);
                    for r in inst.used_regs() {
                        note_read(&mut slice, &mut reads_seen, r);
                        worklist.push(r);
                    }
                }
            }
            let _ = found_in_loop; // regs with no in-loop def are live-ins
        }
        Ok(slice)
    }

    /// Total number of instructions in the slice (direct blocks only; use
    /// the cost model with subloop trip counts for weighted cost).
    pub fn direct_inst_count(&self) -> usize {
        self.insts.len()
    }

    /// True if the slice is a single direct call and nothing else — the
    /// function-call pattern of paper Fig. 4a.
    pub fn is_single_call(&self) -> bool {
        self.subloops.is_empty() && self.insts.len() == 1 && self.calls.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cfg, DomTree};
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Operand, Ty, UnOp};

    /// Builds: for i in 0..8 { acc = 0; for k in 0..4 { acc += g[i+k] };
    /// out[i] = acc * 2.0 }
    fn reduction_module() -> rskip_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_zeroed("g", Ty::F64, 16);
        let out = mb.global_zeroed("out", Ty::F64, 8);
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let oh = f.new_block("oh");
        let pre = f.new_block("pre");
        let ih = f.new_block("ih");
        let ib = f.new_block("ib");
        let fin = f.new_block("fin");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let k = f.def_reg(Ty::I64, "k");
        let acc = f.def_reg(Ty::F64, "acc");

        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(oh);

        f.switch_to(oh);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(8));
        f.cond_br(Operand::reg(c), pre, exit);

        f.switch_to(pre);
        f.mov(acc, Operand::imm_f(0.0));
        f.mov(k, Operand::imm_i(0));
        f.br(ih);

        f.switch_to(ih);
        let c2 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(k), Operand::imm_i(4));
        f.cond_br(Operand::reg(c2), ib, fin);

        f.switch_to(ib);
        let idx = f.bin(BinOp::Add, Ty::I64, Operand::reg(i), Operand::reg(k));
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::reg(idx));
        let v = f.load(Ty::F64, Operand::reg(addr));
        f.bin_into(acc, BinOp::Add, Ty::F64, Operand::reg(acc), Operand::reg(v));
        f.bin_into(k, BinOp::Add, Ty::I64, Operand::reg(k), Operand::imm_i(1));
        f.br(ih);

        f.switch_to(fin);
        let scaled = f.bin(BinOp::Mul, Ty::F64, Operand::reg(acc), Operand::imm_f(2.0));
        let oaddr = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
        f.store(Ty::F64, Operand::reg(oaddr), Operand::reg(scaled));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(oh);

        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    #[test]
    fn reduction_slice_pulls_in_subloop() {
        let m = reduction_module();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        let outer_idx = forest.loops().iter().position(|l| l.depth == 0).unwrap();
        // The store is in block "fin" = bb5, instruction index 2.
        let slice = BackwardSlice::compute(f, &forest, outer_idx, rskip_ir::BlockId(5), 2).unwrap();
        assert_eq!(slice.subloops.len(), 1);
        assert!(!slice.is_single_call());
        // Slice contains: acc init + k init (pre), the whole inner body,
        // and the final scale; not the address computation of the store.
        let fin_insts: Vec<usize> = slice
            .insts
            .iter()
            .filter(|(b, _)| *b == rskip_ir::BlockId(5))
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(fin_insts, vec![0]); // only `scaled = acc * 2.0`
                                        // The outer IV is a read (address of load g[i+k]) but never defined
                                        // by the slice. It is the first register allocated (`def_reg` order).
        let i_reg = rskip_ir::Reg(0);
        assert!(slice.read_regs.contains(&i_reg));
        assert!(!slice.defined_regs.contains(&i_reg));
        assert!(slice.aliased_load.is_none());
    }

    #[test]
    fn call_pattern_slice() {
        let mut mb = ModuleBuilder::new("m");
        let out = mb.global_zeroed("out", Ty::F64, 8);
        let mut body = mb.function("price", vec![Ty::F64], Some(Ty::F64));
        let a = body.param(0);
        let e = body.un(UnOp::Exp, Ty::F64, Operand::reg(a));
        body.ret(Some(Operand::reg(e)));
        body.finish();

        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let lh = f.new_block("lh");
        let lb = f.new_block("lb");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(lh);
        f.switch_to(lh);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(8));
        f.cond_br(Operand::reg(c), lb, exit);
        f.switch_to(lb);
        let x = f.un(UnOp::IntToFloat, Ty::F64, Operand::reg(i));
        let v = f
            .call("price", vec![Operand::reg(x)], Some(Ty::F64))
            .unwrap();
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
        f.store(Ty::F64, Operand::reg(addr), Operand::reg(v));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(lh);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let m = mb.finish();

        let f = m.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        let slice = BackwardSlice::compute(f, &forest, 0, rskip_ir::BlockId(2), 3).unwrap();
        // The x = i2f conversion feeds the call, so the minimal slice is
        // call + conversion; `is_single_call` is therefore false here, but
        // the call is recorded.
        assert_eq!(slice.calls, vec!["price".to_string()]);
        assert!(!slice.insts.is_empty());
    }

    #[test]
    fn constant_store_is_rejected() {
        let mut mb = ModuleBuilder::new("m");
        let out = mb.global_zeroed("out", Ty::F64, 8);
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let lb = f.new_block("lb");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(lb);
        f.switch_to(lb);
        f.store(Ty::F64, Operand::global(out), Operand::imm_f(0.0));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(8));
        f.cond_br(Operand::reg(c), lb, exit);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let f = m.function("f").unwrap();
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        let err = BackwardSlice::compute(f, &forest, 0, rskip_ir::BlockId(1), 0).unwrap_err();
        assert_eq!(err, SliceError::ConstantValue);
    }
}
