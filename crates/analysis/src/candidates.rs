//! Detection of prediction-protection candidate loops.
//!
//! Implements the paper's target selection (§4): "we target the legitimate
//! types of value computation containing the loop or the user function call
//! that has the number of instructions above threshold". Loops storing
//! pointers/integers or with trivially cheap bodies are filtered out; those
//! remain under conventional protection.

use rskip_ir::{BlockId, Inst, Module, Operand, Ty};

use crate::cfg::Cfg;
use crate::cost::CostModel;
use crate::dom::DomTree;
use crate::loops::{InductionVar, Loop, LoopForest};
use crate::purity::Purity;
use crate::slice::BackwardSlice;

/// What kind of computation produces the protected value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CandidateKind {
    /// The value is produced by a call to an expensive pure user function
    /// (paper Fig. 4a, `blackscholes`). `memoizable` is true when the
    /// callee reads nothing but its arguments, so approximate memoization
    /// can serve as the second-level predictor (§4.2).
    Call {
        /// Callee name.
        callee: String,
        /// Whether approximate memoization may be applied.
        memoizable: bool,
    },
    /// The value is produced by one or more inner reduction loops
    /// (paper Fig. 4b, e.g. `sgemm`, `lud`).
    SliceLoop,
}

/// One detected candidate loop.
#[derive(Clone, Debug)]
pub struct CandidateLoop {
    /// Containing function.
    pub function: String,
    /// The target loop (cloned from the forest at detection time).
    pub target: Loop,
    /// Primary induction variable of the target loop.
    pub iv: InductionVar,
    /// Block containing the protected store.
    pub store_block: BlockId,
    /// Index of the protected store in that block.
    pub store_idx: usize,
    /// Pattern classification.
    pub kind: CandidateKind,
    /// The backward slice of the stored value.
    pub slice: BackwardSlice,
    /// Static cost estimate of one value computation.
    pub estimated_cost: f64,
    /// The loop carries a `no_alias` hint (required when the slice loads
    /// the cell the store overwrites — the `lud` in-place pattern).
    pub no_alias: bool,
    /// Per-loop acceptable-range override from the hint (the paper's
    /// pragma).
    pub acceptable_range: Option<f64>,
}

/// Thresholds for candidate detection.
#[derive(Clone, Debug)]
pub struct DetectConfig {
    /// Minimum weighted cost of a reduction-loop slice.
    pub min_slice_cost: f64,
    /// Minimum static cost of a called function (Fig. 4a pattern).
    pub min_callee_cost: f64,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            min_slice_cost: 40.0,
            min_callee_cost: 25.0,
        }
    }
}

impl DetectConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

// Callee re-executability and memoizability are decided by the
// interprocedural effect summaries in [`crate::purity`]: re-execution
// tolerates loads (the no-alias discipline covers them) but nothing
// stronger, while memoization demands strict purity — "the computation
// should generate the identical output on the same input set without any
// side effect" (§4.2.1). Unlike the original syntactic scan this admits
// callees whose nested calls are themselves pure.

/// Weighted static cost of one evaluation of the slice.
fn slice_cost(
    module: &Module,
    f: &rskip_ir::Function,
    forest: &LoopForest,
    slice: &BackwardSlice,
    model: &CostModel,
) -> f64 {
    let mut cost = 0.0;
    // Direct instructions (includes subloop bodies once; weight subloops by
    // trip count instead, so subtract their single-visit cost).
    let subloop_blocks: std::collections::BTreeSet<BlockId> = slice
        .subloops
        .iter()
        .flat_map(|&i| forest.loops()[i].blocks.iter().copied())
        .collect();
    for &(b, idx) in &slice.insts {
        if subloop_blocks.contains(&b) {
            continue;
        }
        cost += model.inst_cost(&f.block(b).insts[idx]);
    }
    for &sub in &slice.subloops {
        // Only weight top-level included subloops: nested ones are counted
        // recursively by loop_body_cost.
        let is_top = slice.subloops.iter().all(|&other| {
            other == sub
                || !forest.loops()[other]
                    .blocks
                    .is_superset(&forest.loops()[sub].blocks)
        });
        if is_top {
            let trips = forest.loops()[sub].trip_count.unwrap_or(model.default_trip) as f64;
            cost += trips * model.loop_body_cost(f, forest, sub);
        }
    }
    for callee in &slice.calls {
        if let Some(cf) = module.function(callee) {
            cost += model.function_cost(cf);
        }
    }
    cost
}

/// Scans all protectable functions of `module` for candidate loops.
///
/// Returns at most one candidate per loop (the most expensive qualifying
/// store). Functions with `protect == false` or `outlined == true` are
/// skipped.
///
/// # Example
///
/// ```no_run
/// use rskip_analysis::{find_candidates, DetectConfig};
/// # let module: rskip_ir::Module = unimplemented!();
/// let candidates = find_candidates(&module, &DetectConfig::default());
/// for c in &candidates {
///     println!("{}: loop at {} ({:?})", c.function, c.target.header, c.kind);
/// }
/// ```
pub fn find_candidates(module: &Module, config: &DetectConfig) -> Vec<CandidateLoop> {
    let model = CostModel::new();
    let purity = Purity::analyze(module);
    let mut out = Vec::new();

    for f in &module.functions {
        if !f.attrs.protect || f.attrs.outlined {
            continue;
        }
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);

        for (loop_idx, lp) in forest.loops().iter().enumerate() {
            let Some(iv) = lp.induction.clone() else {
                continue;
            };
            // Blocks directly in this loop (not in any child loop).
            let child_blocks: std::collections::BTreeSet<BlockId> = forest
                .children(loop_idx)
                .iter()
                .flat_map(|&c| forest.loops()[c].blocks.iter().copied())
                .collect();

            let mut best: Option<CandidateLoop> = None;
            for &b in &lp.blocks {
                if child_blocks.contains(&b) {
                    continue;
                }
                for (idx, inst) in f.block(b).insts.iter().enumerate() {
                    let Inst::Store {
                        ty: Ty::F64,
                        value: Operand::Reg(_),
                        ..
                    } = inst
                    else {
                        continue; // integer/pointer stores stay conventional
                    };
                    let Ok(slice) = BackwardSlice::compute(f, &forest, loop_idx, b, idx) else {
                        continue;
                    };
                    let hint = f.hint_for(lp.header);
                    let no_alias = hint.map(|h| h.no_alias).unwrap_or(false);
                    if slice.aliased_load.is_some() && !no_alias {
                        // In-place update without the pragma: cannot prove
                        // re-execution reads unchanged inputs.
                        continue;
                    }

                    let cost = slice_cost(module, f, &forest, &slice, &model);
                    let kind = if slice.subloops.is_empty() && slice.calls.len() == 1 {
                        let callee = slice.calls[0].clone();
                        if !purity.is_reexecutable(&callee) {
                            continue;
                        }
                        // The Fig. 4a pattern stores the call result
                        // directly: re-execution replays the callee with
                        // recorded arguments, so nothing may sit between
                        // the call and the store.
                        let Inst::Store {
                            value: Operand::Reg(stored),
                            ..
                        } = inst
                        else {
                            continue;
                        };
                        let call_feeds_store = slice.insts.iter().any(|&(cb, ci)| {
                            matches!(
                                &f.block(cb).insts[ci],
                                Inst::Call { dst: Some(d), .. } if d == stored
                            )
                        });
                        if !call_feeds_store {
                            continue;
                        }
                        let callee_cost = model.function_cost(module.function(&callee).unwrap());
                        if callee_cost < config.min_callee_cost {
                            continue;
                        }
                        let memoizable = purity.is_memoizable(&callee);
                        CandidateKind::Call { callee, memoizable }
                    } else if !slice.subloops.is_empty() && slice.calls.is_empty() {
                        if cost < config.min_slice_cost {
                            continue;
                        }
                        CandidateKind::SliceLoop
                    } else {
                        continue; // mixed or trivial patterns stay conventional
                    };

                    let cand = CandidateLoop {
                        function: f.name.clone(),
                        target: lp.clone(),
                        iv: iv.clone(),
                        store_block: b,
                        store_idx: idx,
                        kind,
                        slice,
                        estimated_cost: cost,
                        no_alias,
                        acceptable_range: hint.and_then(|h| h.acceptable_range),
                    };
                    let better = match &best {
                        None => true,
                        Some(cur) => cand.estimated_cost > cur.estimated_cost,
                    };
                    if better {
                        best = Some(cand);
                    }
                }
            }
            if let Some(c) = best {
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Operand, UnOp};

    /// for i in 0..32 { acc = 0; for k in 0..64 { acc += g[k]*g[k] };
    /// out[i] = acc }
    fn expensive_reduction() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_zeroed("g", Ty::F64, 64);
        let out = mb.global_zeroed("out", Ty::F64, 32);
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let oh = f.new_block("oh");
        let pre = f.new_block("pre");
        let ih = f.new_block("ih");
        let ib = f.new_block("ib");
        let fin = f.new_block("fin");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let k = f.def_reg(Ty::I64, "k");
        let acc = f.def_reg(Ty::F64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(oh);
        f.switch_to(oh);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(32));
        f.cond_br(Operand::reg(c), pre, exit);
        f.switch_to(pre);
        f.mov(acc, Operand::imm_f(0.0));
        f.mov(k, Operand::imm_i(0));
        f.br(ih);
        f.switch_to(ih);
        let c2 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(k), Operand::imm_i(64));
        f.cond_br(Operand::reg(c2), ib, fin);
        f.switch_to(ib);
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::reg(k));
        let v = f.load(Ty::F64, Operand::reg(addr));
        let sq = f.bin(BinOp::Mul, Ty::F64, Operand::reg(v), Operand::reg(v));
        f.bin_into(
            acc,
            BinOp::Add,
            Ty::F64,
            Operand::reg(acc),
            Operand::reg(sq),
        );
        f.bin_into(k, BinOp::Add, Ty::I64, Operand::reg(k), Operand::imm_i(1));
        f.br(ih);
        f.switch_to(fin);
        let oaddr = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
        f.store(Ty::F64, Operand::reg(oaddr), Operand::reg(acc));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(oh);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    #[test]
    fn detects_reduction_loop_pattern() {
        let m = expensive_reduction();
        let cands = find_candidates(&m, &DetectConfig::default());
        assert_eq!(cands.len(), 1);
        let c = &cands[0];
        assert_eq!(c.kind, CandidateKind::SliceLoop);
        assert_eq!(c.function, "f");
        assert_eq!(c.target.header, BlockId(1));
        assert_eq!(c.store_block, BlockId(5));
        assert!(c.estimated_cost >= 40.0);
        assert_eq!(c.iv.step, 1);
    }

    /// Expensive pure function called per iteration.
    fn call_pattern(expensive: bool) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let out = mb.global_zeroed("out", Ty::F64, 16);
        let mut price = mb.function("price", vec![Ty::F64], Some(Ty::F64));
        let a = price.param(0);
        let mut v = a;
        let n = if expensive { 6 } else { 1 };
        for _ in 0..n {
            v = price.un(UnOp::Exp, Ty::F64, Operand::reg(v));
        }
        price.ret(Some(Operand::reg(v)));
        price.finish();

        let mut f = mb.function("main", vec![], None);
        let entry = f.entry_block();
        let lh = f.new_block("lh");
        let lb = f.new_block("lb");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(lh);
        f.switch_to(lh);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(16));
        f.cond_br(Operand::reg(c), lb, exit);
        f.switch_to(lb);
        let x = f.un(UnOp::IntToFloat, Ty::F64, Operand::reg(i));
        let p = f
            .call("price", vec![Operand::reg(x)], Some(Ty::F64))
            .unwrap();
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
        f.store(Ty::F64, Operand::reg(addr), Operand::reg(p));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(lh);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    #[test]
    fn detects_call_pattern_and_memoizability() {
        let m = call_pattern(true);
        let cands = find_candidates(&m, &DetectConfig::default());
        assert_eq!(cands.len(), 1);
        match &cands[0].kind {
            CandidateKind::Call { callee, memoizable } => {
                assert_eq!(callee, "price");
                assert!(*memoizable);
            }
            other => panic!("expected call pattern, got {other:?}"),
        }
    }

    #[test]
    fn cheap_call_is_filtered_out() {
        let m = call_pattern(false);
        let cands = find_candidates(&m, &DetectConfig::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn integer_store_is_not_a_candidate() {
        let mut mb = ModuleBuilder::new("m");
        let out = mb.global_zeroed("out", Ty::I64, 16);
        let mut f = mb.function("main", vec![], None);
        let entry = f.entry_block();
        let lb = f.new_block("lb");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(lb);
        f.switch_to(lb);
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(out), Operand::reg(i));
        f.store(Ty::I64, Operand::reg(addr), Operand::reg(i));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(16));
        f.cond_br(Operand::reg(c), lb, exit);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        assert!(find_candidates(&m, &DetectConfig::default()).is_empty());
    }

    #[test]
    fn unprotected_functions_are_skipped() {
        let mut m = expensive_reduction();
        m.functions[0].attrs.protect = false;
        assert!(find_candidates(&m, &DetectConfig::default()).is_empty());
    }

    #[test]
    fn callee_purity_analysis() {
        let m = call_pattern(true);
        let purity = Purity::analyze(&m);
        assert!(purity.is_memoizable("price"));
        assert!(!purity.is_reexecutable("main")); // has a store
        assert!(!purity.is_reexecutable("ghost"));
    }
}
