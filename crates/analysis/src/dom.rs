//! Dominator tree construction.
//!
//! Implements the Cooper–Harvey–Kennedy "engineered" iterative algorithm
//! over reverse postorder — quadratic in the worst case but effectively
//! linear on real CFGs, and far simpler than Lengauer–Tarjan.

use rskip_ir::{BlockId, Function};

use crate::cfg::Cfg;

/// The dominator tree of one function.
///
/// Unreachable blocks have no immediate dominator and dominate nothing.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block (self for the entry).
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Computes the dominator tree of `f` given its [`Cfg`].
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom };
        }
        idom[0] = Some(BlockId(0));

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up by RPO index until the fingers meet.
            while a != b {
                while cfg.rpo_index(a).unwrap() > cfg.rpo_index(b).unwrap() {
                    a = idom[a.index()].unwrap();
                }
                while cfg.rpo_index(b).unwrap() > cfg.rpo_index(a).unwrap() {
                    b = idom[b.index()].unwrap();
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !cfg.is_reachable(p) {
                        continue;
                    }
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// True if `a` dominates `b` (reflexive: every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // b unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// True if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{CmpOp, ModuleBuilder, Operand, Ty};

    /// Builds a diamond: entry -> (left | right) -> join -> exit.
    fn diamond() -> rskip_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![Ty::I64], None);
        let entry = f.entry_block();
        let left = f.new_block("left");
        let right = f.new_block("right");
        let join = f.new_block("join");
        f.switch_to(entry);
        let c = f.cmp(
            CmpOp::Gt,
            Ty::I64,
            Operand::reg(f.param(0)),
            Operand::imm_i(0),
        );
        f.cond_br(Operand::reg(c), left, right);
        f.switch_to(left);
        f.br(join);
        f.switch_to(right);
        f.br(join);
        f.switch_to(join);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    #[test]
    fn diamond_dominators() {
        let m = diamond();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let (entry, left, right, join) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(left), Some(entry));
        assert_eq!(dom.idom(right), Some(entry));
        assert_eq!(dom.idom(join), Some(entry)); // neither branch dominates join
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(left, join));
        assert!(dom.dominates(join, join));
        assert!(dom.strictly_dominates(entry, left));
        assert!(!dom.strictly_dominates(entry, entry));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(4));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        f.bin_into(
            i,
            rskip_ir::BinOp::Add,
            Ty::I64,
            Operand::reg(i),
            Operand::imm_i(1),
        );
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(1)));
    }

    #[test]
    fn unreachable_block_dominated_by_nothing() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let dead = f.new_block("dead");
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        assert!(!dom.dominates(BlockId(0), BlockId(1)));
        assert_eq!(dom.idom(BlockId(1)), None);
    }
}
