//! Control-flow graph utilities.

use rskip_ir::{BlockId, Function};

/// Predecessor/successor maps and traversal orders for one function's CFG.
///
/// # Example
///
/// ```
/// use rskip_ir::{ModuleBuilder, Operand, Ty};
/// use rskip_analysis::Cfg;
///
/// let mut mb = ModuleBuilder::new("m");
/// let mut f = mb.function("f", vec![], None);
/// let entry = f.entry_block();
/// let exit = f.new_block("exit");
/// f.switch_to(entry);
/// f.br(exit);
/// f.switch_to(exit);
/// f.ret(None);
/// f.finish();
/// let m = mb.finish();
/// let cfg = Cfg::new(&m.functions[0]);
/// assert_eq!(cfg.succs(entry), &[exit]);
/// assert_eq!(cfg.preds(exit), &[entry]);
/// ```
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<Option<usize>>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in f.iter_blocks() {
            for s in block.term.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }

        // Postorder DFS from the entry.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        if n > 0 {
            visited[0] = true;
        }
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < succs[b.index()].len() {
                let s = succs[b.index()][*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i);
        }

        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Reverse postorder over reachable blocks (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse postorder, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index[b.index()]
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()].is_some()
    }

    /// Number of blocks (reachable or not).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{CmpOp, ModuleBuilder, Operand, Ty};

    /// entry -> header; header -> body | exit; body -> header.
    fn loop_fn() -> rskip_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(4));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        f.bin_into(
            i,
            rskip_ir::BinOp::Add,
            Ty::I64,
            Operand::reg(i),
            Operand::imm_i(1),
        );
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    #[test]
    fn loop_cfg_edges() {
        let m = loop_fn();
        let cfg = Cfg::new(&m.functions[0]);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1)]);
        assert_eq!(cfg.succs(BlockId(1)), &[BlockId(2), BlockId(3)]);
        assert_eq!(cfg.succs(BlockId(2)), &[BlockId(1)]);
        assert!(cfg.succs(BlockId(3)).is_empty());
        assert_eq!(cfg.preds(BlockId(1)), &[BlockId(0), BlockId(2)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let m = loop_fn();
        let cfg = Cfg::new(&m.functions[0]);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.rpo().len(), 4);
        // Header precedes body and exit in RPO.
        assert!(cfg.rpo_index(BlockId(1)).unwrap() < cfg.rpo_index(BlockId(2)).unwrap());
    }

    #[test]
    fn unreachable_blocks_detected() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let dead = f.new_block("dead");
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let cfg = Cfg::new(&m.functions[0]);
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(BlockId(1)));
    }
}
