//! Interprocedural side-effect and purity inference.
//!
//! Approximate memoization (paper §4.2.1) is only sound for computations
//! that "generate the identical output on the same input set without any
//! side effect", and re-execution recovery only for code whose replay
//! cannot be observed. This module infers, per function, a conservative
//! effect summary on a three-point lattice:
//!
//! ```text
//! Pure  <  ReadOnly  <  Impure
//! ```
//!
//! * [`Effect::Pure`] — output depends only on the arguments: no loads, no
//!   stores, no intrinsics, and only calls to `Pure` functions.
//! * [`Effect::ReadOnly`] — may read memory but never writes it or invokes
//!   runtime intrinsics; re-execution is safe under the no-alias
//!   discipline, memoization is not.
//! * [`Effect::Impure`] — everything else (stores, intrinsics, calls to
//!   unknown or impure functions).
//!
//! Summaries are computed by a monotone fixpoint over the call graph, so
//! call chains (and recursion) are handled: a function calling only pure
//! functions stays pure.

use std::collections::HashMap;

use rskip_ir::{Inst, InstLoc, Module};

/// Conservative side-effect summary of one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Output is a function of the arguments alone.
    Pure,
    /// Reads memory; never writes it, never calls intrinsics.
    ReadOnly,
    /// Writes memory, invokes runtime intrinsics, or calls something
    /// unknown/impure.
    Impure,
}

/// Per-function effect summaries for a whole module.
#[derive(Clone, Debug)]
pub struct Purity {
    effects: HashMap<String, Effect>,
}

impl Purity {
    /// Infers effect summaries for every function in `module` by a
    /// monotone interprocedural fixpoint.
    pub fn analyze(module: &Module) -> Self {
        let mut effects: HashMap<String, Effect> = module
            .functions
            .iter()
            .map(|f| (f.name.clone(), Effect::Pure))
            .collect();
        // Effects only ever climb the lattice, so iteration terminates in
        // at most `2 * |functions|` rounds.
        loop {
            let mut changed = false;
            for f in &module.functions {
                let mut effect = Effect::Pure;
                for block in &f.blocks {
                    for inst in &block.insts {
                        let inst_effect = match inst {
                            Inst::Store { .. } | Inst::IntrinsicCall { .. } => Effect::Impure,
                            Inst::Load { .. } => Effect::ReadOnly,
                            Inst::Call { callee, .. } => effects
                                .get(callee.as_str())
                                .copied()
                                .unwrap_or(Effect::Impure),
                            _ => Effect::Pure,
                        };
                        effect = effect.max(inst_effect);
                    }
                }
                let slot = effects.get_mut(&f.name).expect("function summarized");
                if *slot != effect {
                    *slot = effect;
                    changed = true;
                }
            }
            if !changed {
                return Purity { effects };
            }
        }
    }

    /// The effect summary for `name`; unknown functions are [`Effect::Impure`].
    pub fn effect(&self, name: &str) -> Effect {
        self.effects.get(name).copied().unwrap_or(Effect::Impure)
    }

    /// True when `name` may be re-executed for recovery: no writes or
    /// intrinsics anywhere in its call tree (loads are fine under the
    /// no-alias discipline).
    pub fn is_reexecutable(&self, name: &str) -> bool {
        self.effect(name) <= Effect::ReadOnly
    }

    /// True when `name` may back an approximate-memoization table: a pure
    /// function of its arguments (§4.2.1).
    pub fn is_memoizable(&self, name: &str) -> bool {
        self.effect(name) == Effect::Pure
    }
}

/// Every instruction in `root` that disqualifies it from memoization,
/// with a reason. A pure callee contributes nothing by definition and an
/// impure one is reported at its call site, so only `root`'s own
/// instructions are walked.
pub fn memoization_blockers(
    module: &Module,
    purity: &Purity,
    root: &str,
) -> Vec<(InstLoc, String)> {
    let mut out = Vec::new();
    let Some(f) = module.function(root) else {
        return out;
    };
    for (bid, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            let reason = match inst {
                Inst::Store { .. } => Some("stores to memory".to_string()),
                Inst::Load { .. } => Some("loads from memory".to_string()),
                Inst::IntrinsicCall { intr, .. } => {
                    Some(format!("invokes runtime intrinsic `{intr}`"))
                }
                Inst::Call { callee, .. } if !purity.is_memoizable(callee) => {
                    Some(format!("calls impure function @{callee}"))
                }
                _ => None,
            };
            if let Some(reason) = reason {
                out.push((InstLoc::inst(root, bid, block.name.clone(), i), reason));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{BinOp, ModuleBuilder, Operand, Ty};

    fn module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_zeroed("g", Ty::I64, 4);

        // pure leaf
        let mut f = mb.function("leaf", vec![Ty::I64], Some(Ty::I64));
        let p = f.param(0);
        let x = f.bin(BinOp::Mul, Ty::I64, Operand::reg(p), Operand::imm_i(3));
        f.ret(Some(Operand::reg(x)));
        f.finish();

        // pure wrapper: calls only the pure leaf
        let mut f = mb.function("wrapper", vec![Ty::I64], Some(Ty::I64));
        let p = f.param(0);
        let r = f
            .call("leaf", vec![Operand::reg(p)], Some(Ty::I64))
            .unwrap();
        f.ret(Some(Operand::reg(r)));
        f.finish();

        // read-only: loads a global
        let mut f = mb.function("reader", vec![], Some(Ty::I64));
        let v = f.load(Ty::I64, Operand::global(g));
        f.ret(Some(Operand::reg(v)));
        f.finish();

        // impure: stores
        let mut f = mb.function("writer", vec![], None);
        f.store(Ty::I64, Operand::global(g), Operand::imm_i(1));
        f.ret(None);
        f.finish();

        // impure by transitivity: calls writer
        let mut f = mb.function("caller", vec![], None);
        f.call("writer", vec![], None);
        f.ret(None);
        f.finish();

        mb.finish()
    }

    #[test]
    fn classifies_the_lattice() {
        let m = module();
        let p = Purity::analyze(&m);
        assert_eq!(p.effect("leaf"), Effect::Pure);
        assert_eq!(p.effect("wrapper"), Effect::Pure);
        assert_eq!(p.effect("reader"), Effect::ReadOnly);
        assert_eq!(p.effect("writer"), Effect::Impure);
        assert_eq!(p.effect("caller"), Effect::Impure);
        assert_eq!(p.effect("ghost"), Effect::Impure);
    }

    #[test]
    fn memoizable_is_strictly_pure() {
        let m = module();
        let p = Purity::analyze(&m);
        assert!(p.is_memoizable("leaf"));
        assert!(p.is_memoizable("wrapper"));
        assert!(!p.is_memoizable("reader"));
        assert!(p.is_reexecutable("reader"));
        assert!(!p.is_reexecutable("writer"));
        assert!(!p.is_reexecutable("ghost"));
    }

    #[test]
    fn blockers_carry_locations_and_reasons() {
        let m = module();
        let p = Purity::analyze(&m);
        assert!(memoization_blockers(&m, &p, "leaf").is_empty());
        let b = memoization_blockers(&m, &p, "caller");
        assert_eq!(b.len(), 1);
        assert!(b[0].1.contains("@writer"), "{}", b[0].1);
        assert_eq!(b[0].0.position(), "entry[0]");
        let b = memoization_blockers(&m, &p, "reader");
        assert!(b[0].1.contains("loads"), "{}", b[0].1);
    }
}
