//! Static fault-liveness and masking analysis — the pruning half of
//! `rskip-vuln`.
//!
//! A fault-injection campaign spends most of its runs discovering that a
//! fault was *benign*: the struck value was dead, overwritten before any
//! read, or logically masked before it could reach an observable output.
//! This module proves those outcomes statically, so campaigns and the
//! exhaustive enumerator can skip the runs entirely while still counting
//! them honestly (`CampaignStats::pruned`, `Enumeration::pruned`).
//!
//! The unit of judgement matches the dynamic fault machinery exactly: an
//! instruction *boundary* `(block, ip)` — the innermost frame is about
//! to execute instruction `ip` (`ip == insts.len()` ⇒ the terminator) —
//! plus the fault's static coordinates. Three judgements are offered,
//! one per [`FaultModel`] shape:
//!
//! * **Bit flip** (`SingleBitSeu`): benign if the register is not live
//!   at the boundary (no path reads it before it is overwritten — the
//!   flipped value can never be observed), or if the flipped bit is
//!   discarded by every read (see *masking* below).
//! * **Burst** (`MultiBitBurst`): benign iff every bit of the window is
//!   individually benign.
//! * **Instruction skip**: benign if the next instruction is a pure
//!   value producer (`Mov`/`Bin`/`Un`/`Cmp`/`Select`/`Load`) whose
//!   destination is dead *after* the instruction — then neither the
//!   stale value the skip leaves behind nor the computed value it
//!   suppresses is ever read. Stores, calls, intrinsic calls and
//!   terminators are never skip-benign (memory effects, side effects
//!   and control flow respectively).
//!
//! **Masking.** A register is *fully masked above `m`* when its every
//! use in the function is a bitwise `And` with the constant `m` (in
//! either operand position). A flip of a bit outside the union of all
//! such masks produces a value every read maps to the same result, so
//! execution is bit-identical to the clean run. Taking *all* uses in
//! the function — not just uses reachable from the boundary — is a
//! conservative superset, hence sound.
//!
//! Why liveness here is sound for injected faults, not just compiler
//! dead-code reasoning: a register fault strikes one frame's virtual
//! register. The only channels that read a frame register are
//! instruction operands, terminator operands (returns, branch
//! conditions) and intrinsic-call arguments — all of which
//! [`rskip_ir::Inst::for_each_use`] / `Terminator::used_operand` report,
//! and therefore all of which the liveness sets include. The prediction
//! runtime keeps host-side state, but it only observes the frame
//! through those same intrinsic arguments.
//!
//! The cross-validation contract (`crates/exec/tests/vuln_prune.rs`)
//! checks soundness dynamically: every site this module calls benign
//! must classify **Correct** under exhaustive enumeration.
//!
//! [`FaultModel`]: https://docs.rs/rskip-exec — `rskip_exec::FaultModel`

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rskip_ir::{BinOp, BlockId, Function, Inst, Module, Operand, Reg};

use crate::cfg::Cfg;
use crate::liveness::Liveness;

/// Per-function fault-liveness facts.
#[derive(Clone, Debug)]
pub struct FuncVuln {
    /// `live_before[block][ip]` — registers live immediately before the
    /// boundary `(block, ip)`, `ip ∈ 0..=insts.len()` (the last entry is
    /// the before-terminator boundary).
    live_before: Vec<Vec<BTreeSet<Reg>>>,
    /// Per register: bits whose flip is benign *even while the register
    /// is live*, by the masking argument (all-ones for never-read
    /// registers, zero when the masking pattern does not apply).
    benign_mask: Vec<u64>,
    /// `skip_benign[block][ip]` — skipping instruction `ip` of `block`
    /// is statically benign.
    skip_benign: Vec<Vec<bool>>,
}

impl FuncVuln {
    fn analyze(f: &Function) -> FuncVuln {
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);

        // Refine block-level liveness to per-boundary sets by a backward
        // walk through each block.
        let mut live_before = Vec::with_capacity(f.blocks.len());
        for (bid, block) in f.iter_blocks() {
            let n = block.insts.len();
            let mut per_ip = vec![BTreeSet::new(); n + 1];
            let mut cur = live.live_out(bid).clone();
            if let Some(Operand::Reg(r)) = block.term.used_operand() {
                cur.insert(r);
            }
            per_ip[n] = cur.clone();
            for ip in (0..n).rev() {
                let inst = &block.insts[ip];
                if let Some(d) = inst.dst() {
                    cur.remove(&d);
                }
                for r in inst.used_regs() {
                    cur.insert(r);
                }
                per_ip[ip] = cur.clone();
            }
            live_before.push(per_ip);
        }

        // Masking: benign_mask[r] = !(union of And masks) if every use
        // of r is a constant-And, else 0. Registers with no uses at all
        // are fully benign (also caught by liveness, but the vacuous
        // masking case keeps the definition uniform).
        let mut all_masked = vec![true; f.regs.len()];
        let mut mask_union = vec![0u64; f.regs.len()];
        let mut note_use = |r: Reg, masked_by: Option<u64>| {
            let i = r.0 as usize;
            match masked_by {
                Some(m) => mask_union[i] |= m,
                None => all_masked[i] = false,
            }
        };
        for (_, block) in f.iter_blocks() {
            for inst in &block.insts {
                let masking = match inst {
                    Inst::Bin {
                        op: BinOp::And,
                        lhs,
                        rhs,
                        ..
                    } => match (lhs, rhs) {
                        (Operand::Reg(r), Operand::ImmI(m))
                        | (Operand::ImmI(m), Operand::Reg(r)) => Some((*r, *m as u64)),
                        _ => None,
                    },
                    _ => None,
                };
                match masking {
                    Some((r, m)) => note_use(r, Some(m)),
                    None => inst.for_each_use(|o| {
                        if let Operand::Reg(r) = o {
                            note_use(r, None);
                        }
                    }),
                }
            }
            if let Some(Operand::Reg(r)) = block.term.used_operand() {
                note_use(r, None);
            }
        }
        let benign_mask: Vec<u64> = all_masked
            .iter()
            .zip(&mask_union)
            .map(|(&ok, &m)| if ok { !m } else { 0 })
            .collect();

        // Skip-benignity: pure value producers with a dead destination.
        let mut skip_benign = Vec::with_capacity(f.blocks.len());
        for (bid, block) in f.iter_blocks() {
            let per_ip: Vec<bool> = block
                .insts
                .iter()
                .enumerate()
                .map(|(ip, inst)| {
                    let pure_producer = matches!(
                        inst,
                        Inst::Mov { .. }
                            | Inst::Bin { .. }
                            | Inst::Un { .. }
                            | Inst::Cmp { .. }
                            | Inst::Select { .. }
                            | Inst::Load { .. }
                    );
                    pure_producer
                        && inst
                            .dst()
                            .is_some_and(|d| !live_before[bid.index()][ip + 1].contains(&d))
                })
                .collect();
            skip_benign.push(per_ip);
        }

        FuncVuln {
            live_before,
            benign_mask,
            skip_benign,
        }
    }

    /// Registers live immediately before boundary `(b, ip)`.
    pub fn live_before(&self, b: BlockId, ip: usize) -> &BTreeSet<Reg> {
        &self.live_before[b.index()][ip]
    }

    /// Bits of `reg` whose flip at boundary `(b, ip)` is statically
    /// benign: all 64 when the register is dead there, the masked bits
    /// when the masking argument applies, none otherwise.
    pub fn benign_bits(&self, b: BlockId, ip: usize, reg: Reg) -> u64 {
        if !self.live_before[b.index()][ip].contains(&reg) {
            u64::MAX
        } else {
            self.benign_mask[reg.0 as usize]
        }
    }

    /// Is flipping `bit` of `reg` at boundary `(b, ip)` benign?
    pub fn benign_flip(&self, b: BlockId, ip: usize, reg: Reg, bit: u32) -> bool {
        self.benign_bits(b, ip, reg) & (1u64 << bit.min(63)) != 0
    }

    /// Is a burst over `reg`'s bits `[start, start + width)` at boundary
    /// `(b, ip)` benign? True iff every window bit is benign.
    pub fn benign_burst(&self, b: BlockId, ip: usize, reg: Reg, start: u32, width: u32) -> bool {
        let w = width.clamp(1, 64);
        let s = start.min(64 - w);
        let window = if w == 64 {
            u64::MAX
        } else {
            ((1u64 << w) - 1) << s
        };
        self.benign_bits(b, ip, reg) & window == window
    }

    /// Is skipping the instruction at boundary `(b, ip)` benign?
    /// Terminator boundaries (`ip == insts.len()`) are never benign.
    pub fn benign_skip(&self, b: BlockId, ip: usize) -> bool {
        self.skip_benign[b.index()]
            .get(ip)
            .copied()
            .unwrap_or(false)
    }
}

/// Module-wide fault-liveness analysis: one [`FuncVuln`] per function.
#[derive(Clone, Debug)]
pub struct VulnAnalysis {
    funcs: Vec<FuncVuln>,
    by_name: BTreeMap<String, usize>,
}

impl VulnAnalysis {
    /// Analyzes every function of `m`.
    pub fn analyze(m: &Module) -> VulnAnalysis {
        VulnAnalysis {
            funcs: m.functions.iter().map(FuncVuln::analyze).collect(),
            by_name: m
                .functions
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.clone(), i))
                .collect(),
        }
    }

    /// Facts for the function at module index `i`.
    pub fn func_at(&self, i: usize) -> &FuncVuln {
        &self.funcs[i]
    }

    /// Facts for the function named `name`, if present.
    pub fn func(&self, name: &str) -> Option<&FuncVuln> {
        self.by_name.get(name).map(|&i| &self.funcs[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Ty};

    /// entry: dead = 7; x = p0 + 1; masked = x & 0xFF; ret masked-ish.
    fn build() -> (rskip_ir::Module, Reg, Reg, Reg) {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![Ty::I64], Some(Ty::I64));
        let entry = f.entry_block();
        f.switch_to(entry);
        let dead = f.mov_new(Ty::I64, Operand::imm_i(7));
        let x = f.bin(
            BinOp::Add,
            Ty::I64,
            Operand::reg(f.param(0)),
            Operand::imm_i(1),
        );
        let masked = f.bin(BinOp::And, Ty::I64, Operand::reg(x), Operand::imm_i(0xFF));
        f.ret(Some(Operand::reg(masked)));
        f.finish();
        (mb.finish(), dead, x, masked)
    }

    #[test]
    fn dead_register_is_fully_benign() {
        let (m, dead, _, _) = build();
        let v = VulnAnalysis::analyze(&m);
        let fv = v.func("f").unwrap();
        // After its own def (boundary ip=1) `dead` is written but dead.
        assert_eq!(fv.benign_bits(BlockId(0), 1, dead), u64::MAX);
        assert!(fv.benign_flip(BlockId(0), 1, dead, 0));
        assert!(fv.benign_burst(BlockId(0), 1, dead, 60, 8));
    }

    #[test]
    fn masked_register_is_benign_above_the_mask() {
        let (m, _, x, masked) = build();
        let v = VulnAnalysis::analyze(&m);
        let fv = v.func("f").unwrap();
        // x is live at boundary 2 (the And reads it) but only through
        // `& 0xFF`: bits 8..64 are benign, bits 0..8 are not.
        assert!(fv.benign_flip(BlockId(0), 2, x, 40));
        assert!(!fv.benign_flip(BlockId(0), 2, x, 3));
        assert!(fv.benign_burst(BlockId(0), 2, x, 16, 4));
        assert!(!fv.benign_burst(BlockId(0), 2, x, 6, 4)); // straddles bit 7|8
                                                           // masked itself flows to ret un-masked: nothing benign while live.
        assert_eq!(fv.benign_bits(BlockId(0), 3, masked), 0);
    }

    #[test]
    fn skip_of_dead_def_is_benign_others_are_not() {
        let (m, _, _, _) = build();
        let v = VulnAnalysis::analyze(&m);
        let fv = v.func("f").unwrap();
        // ip 0 defines `dead`, which nothing reads: skippable.
        assert!(fv.benign_skip(BlockId(0), 0));
        // ip 1 defines x (read by the And): not skippable.
        assert!(!fv.benign_skip(BlockId(0), 1));
        // Terminator boundary: never skippable.
        assert!(!fv.benign_skip(BlockId(0), 3));
    }

    #[test]
    fn loop_carried_register_stays_live() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], Some(Ty::I64));
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let acc = f.def_reg(Ty::I64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.mov(acc, Operand::imm_i(0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(4));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        f.bin_into(acc, BinOp::Add, Ty::I64, Operand::reg(acc), Operand::reg(i));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(header);
        f.switch_to(exit);
        f.ret(Some(Operand::reg(acc)));
        f.finish();
        let m = mb.finish();
        let v = VulnAnalysis::analyze(&m);
        let fv = v.func("f").unwrap();
        // acc is live around the whole loop; no bit of it is benign.
        assert_eq!(fv.benign_bits(header, 0, acc), 0);
        assert_eq!(fv.benign_bits(body, 0, acc), 0);
        // i is dead once the exit block is reached.
        assert_eq!(fv.benign_bits(exit, 0, i), u64::MAX);
        // The cmp's condition register is dead after the cond_br consumed
        // it — i.e. at every boundary of the body block.
        assert_eq!(fv.benign_bits(body, 0, c), u64::MAX);
        // But live (and unmasked) between its def and the branch.
        assert_eq!(fv.benign_bits(header, 1, c), 0);
    }
}
