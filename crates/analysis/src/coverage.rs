//! Static protection-coverage linting of transformed IR (`rskip-lint`).
//!
//! The protection passes promise that inside the sphere of replication
//! every live value has a redundant copy, and that nothing *leaves* the
//! sphere — through a store, a branch decision, a call, a load address, a
//! region exit or a return — without first passing a validation point
//! (SWIFT's compare-and-branch-to-detector, SWIFT-R's majority vote).
//! This module checks both properties statically, so a transformation bug
//! surfaces as a typed, source-located diagnostic instead of a mysterious
//! detection miss in a fault campaign.
//!
//! ## How it works
//!
//! A forward dataflow runs over each protected function. The state at a
//! program point is a *replica partition* — a value numbering where two
//! registers share a class exactly when the pass intends them to hold the
//! same value (original + shadows) — plus a per-register *validated* flag.
//! Pure instructions are hash-consed within a block (duplicated/triplicated
//! clones are emitted adjacent to their originals, so they meet in the
//! table); `mov` propagates class and validity; loads, calls and
//! intrinsics produce fresh classes. The two validation idioms are
//! recognized structurally:
//!
//! * **check** (SWIFT): `t = cmp.ne a, a'` over one class, followed by
//!   `condbr t, detect, cont` where `detect` fires the [`Intrinsic::Detect`]
//!   trap — the class becomes validated on the `cont` edge;
//! * **vote** (SWIFT-R): `t = cmp.eq a, a'` over one class, then
//!   `m = select t, a, a''` with all three operands in that class — `m` is
//!   validated (and deliberately *not* added to the class: a flip of `m`
//!   after the vote has no remaining redundancy).
//!
//! At joins the partitions are intersected, so a replica relation only
//! survives if it holds on every path. Every sync point then demands a
//! validated (or constant) operand; anything else is an *unprotected
//! window*.
//!
//! ## The coverage map and its per-fault-model contract
//!
//! [`CoverageReport::map`] records, per instruction boundary, which
//! registers the analysis claims *covered*: corrupt such a register at
//! that boundary and the run must end correct (fault masked or repaired
//! by a vote) or detected — never silent data corruption. The claim is
//! deliberately conservative about the instants where even a correctly
//! transformed module is vulnerable (the classic window-of-vulnerability
//! between a validation and its consuming instruction):
//!
//! * a register needs `>= 2` replicas under the check discipline and
//!   `>= 3` under the vote discipline (mid-fan-out copies are unclaimed);
//! * a class that has already been validated is unclaimed from the check
//!   onward (a post-check flip sails past the comparison);
//! * the operands of a vote `select` are unclaimed at the boundary right
//!   before it (the agreement bit `t` is already computed).
//!
//! The claim is *value-agnostic*: the recognizers establish that a
//! diverged register loses a comparison or a majority vote, whichever
//! bits diverge. One register map therefore serves two of the three
//! fault models in [`rskip-exec`'s taxonomy]: a single-bit SEU and a
//! multi-bit burst both corrupt exactly one register, so
//! [`CoverageMap::is_covered`] is the contract for both.
//!
//! Instruction-skip faults need their own map. Skipping an instruction
//! leaves its *destination* stale rather than bit-flipped, so a skip at
//! `(block, ip)` is claimed covered ([`CoverageMap::is_skip_covered`])
//! exactly when the instruction is pure (register-to-register: `mov`,
//! `bin`, `un`, `cmp`, `select`) and its destination is covered at the
//! *next* boundary `(block, ip + 1)` — the stale value is then just
//! another corruption of a redundant, not-yet-validated register.
//! Loads, stores, calls, intrinsics and terminators are never
//! skip-claimed: a skipped load feeds its stale destination to the
//! shadow copy (both replicas agree on the wrong value), and a skipped
//! store or terminator corrupts memory or control flow outside the
//! replica partition's vocabulary.
//!
//! `crates/exec`'s exhaustive fault enumeration cross-validates both
//! contracts in both directions (`tests/cross_validate.rs` for the
//! register models, `tests/cross_validate_skip.rs` for skip).
//!
//! [`rskip-exec`'s taxonomy]: https://arxiv.org/abs/1402.6461

use std::collections::HashMap;

use rskip_ir::{
    BlockId, CmpOp, Function, Inst, InstLoc, Intrinsic, Module, Operand, Reg, Terminator, Ty,
};

use crate::purity::{memoization_blockers, Purity};

/// Which validation discipline the linted scheme uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationModel {
    /// SWIFT: duplication with compare-and-branch-to-detector checks.
    /// Intrinsic arguments are not synchronization points (SWIFT leaves
    /// them unchecked), and two replicas suffice for a coverage claim.
    Detect,
    /// SWIFT-R (and the SWIFT-R shell around RSkip regions): triplication
    /// with majority votes. Intrinsic arguments are voted, and a coverage
    /// claim needs three replicas so a single flip always loses the vote.
    Vote,
}

/// The kind of an unprotected window (or purity violation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverageKind {
    /// A store's address operand is not validated.
    UnprotectedStoreAddr,
    /// A store's value operand is not validated.
    UnprotectedStoreValue,
    /// A conditional branch decides control flow on an unvalidated value.
    UnprotectedBranch,
    /// A return value leaves the sphere unvalidated.
    UnprotectedReturn,
    /// A call argument leaves the sphere unvalidated.
    UnprotectedCallArg,
    /// A load dereferences an unvalidated address.
    UnprotectedLoadAddr,
    /// A runtime-intrinsic argument is not validated (vote model only).
    UnprotectedIntrinsicArg,
    /// A memoized region body is not a pure function of its arguments.
    ImpureMemoizedBody,
}

impl CoverageKind {
    /// Stable kebab-case name (used by reports and `--json` output).
    pub fn name(self) -> &'static str {
        match self {
            CoverageKind::UnprotectedStoreAddr => "unprotected-store-addr",
            CoverageKind::UnprotectedStoreValue => "unprotected-store-value",
            CoverageKind::UnprotectedBranch => "unprotected-branch",
            CoverageKind::UnprotectedReturn => "unprotected-return",
            CoverageKind::UnprotectedCallArg => "unprotected-call-arg",
            CoverageKind::UnprotectedLoadAddr => "unprotected-load-addr",
            CoverageKind::UnprotectedIntrinsicArg => "unprotected-intrinsic-arg",
            CoverageKind::ImpureMemoizedBody => "impure-memoized-body",
        }
    }
}

impl std::fmt::Display for CoverageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed, source-located lint diagnostic.
#[derive(Clone, Debug)]
pub struct CoverageDiag {
    /// What went wrong.
    pub kind: CoverageKind,
    /// Where.
    pub loc: InstLoc,
    /// Human-readable detail (offending register, reason).
    pub message: String,
}

impl std::fmt::Display for CoverageDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.kind, self.loc, self.message)
    }
}

/// Per-function coverage counters.
#[derive(Clone, Debug)]
pub struct FunctionCoverage {
    /// Function name.
    pub function: String,
    /// Total instructions (excluding terminators).
    pub insts: usize,
    /// Definitions whose value ends its defining block with the replica
    /// count the model demands.
    pub protected_defs: usize,
    /// Register operands at sync points that were validated.
    pub validated_uses: usize,
    /// Diagnostics raised in this function.
    pub unprotected: usize,
}

/// Which registers are claimed covered at which instruction boundaries.
///
/// A boundary is identified by `(block, ip)` where `ip` counts
/// instructions within the block and `ip == insts.len()` denotes the
/// boundary before the terminator — the same coordinates the interpreter
/// uses for its injection points.
#[derive(Clone, Debug, Default)]
pub struct CoverageMap {
    covered: HashMap<String, std::collections::HashSet<(u32, u32, u32)>>,
    skip_covered: HashMap<String, std::collections::HashSet<(u32, u32)>>,
}

impl CoverageMap {
    /// True when a corruption of `reg` — any single-bit flip *or*
    /// multi-bit burst, the claim is value-agnostic — at the boundary
    /// before instruction `ip` of `block` in `function`, is claimed to be
    /// masked or detected.
    pub fn is_covered(&self, function: &str, block: BlockId, ip: usize, reg: Reg) -> bool {
        self.covered
            .get(function)
            .is_some_and(|s| s.contains(&(block.0, ip as u32, reg.0)))
    }

    /// True when skipping the instruction at `(block, ip)` of `function`
    /// (it retires as a bubble, leaving its destination stale) is claimed
    /// to be masked or detected.
    pub fn is_skip_covered(&self, function: &str, block: BlockId, ip: usize) -> bool {
        self.skip_covered
            .get(function)
            .is_some_and(|s| s.contains(&(block.0, ip as u32)))
    }

    /// Total number of (boundary, register) claims.
    pub fn claims(&self) -> usize {
        self.covered.values().map(|s| s.len()).sum()
    }

    /// Total number of skip-covered instruction claims.
    pub fn skip_claims(&self) -> usize {
        self.skip_covered.values().map(|s| s.len()).sum()
    }

    fn claim(&mut self, function: &str, block: BlockId, ip: usize, reg: u32) {
        self.covered
            .entry(function.to_string())
            .or_default()
            .insert((block.0, ip as u32, reg));
    }

    fn claim_skip(&mut self, function: &str, block: BlockId, ip: usize) {
        self.skip_covered
            .entry(function.to_string())
            .or_default()
            .insert((block.0, ip as u32));
    }
}

/// The result of linting one module under one validation model.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// Per-function counters (protected functions only).
    pub functions: Vec<FunctionCoverage>,
    /// All diagnostics, in program order.
    pub diags: Vec<CoverageDiag>,
    /// The per-boundary covered-register claims.
    pub map: CoverageMap,
}

impl CoverageReport {
    /// True when no diagnostics were raised.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// A pure instruction's shape, used to hash-cons replicas within a block.
#[derive(Clone, PartialEq, Eq, Hash)]
enum PureKey {
    Mov(Ty, OpDesc),
    Bin(rskip_ir::BinOp, Ty, OpDesc, OpDesc),
    Un(rskip_ir::UnOp, Ty, OpDesc),
    Cmp(CmpOp, Ty, OpDesc, OpDesc),
    Select(Ty, OpDesc, OpDesc, OpDesc),
}

/// An operand under value numbering (floats by bit pattern).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum OpDesc {
    Vn(u32),
    ImmI(i64),
    ImmF(u64),
    Global(u32),
}

/// Dataflow state at a block boundary. `vn[r]` is `r`'s replica class;
/// entry states are kept canonical (each class represented by its lowest
/// member) so fixpoint comparison is well-defined.
#[derive(Clone, PartialEq)]
struct State {
    vn: Vec<u32>,
    /// Validated on *every* path — grants sync points.
    validated_all: Vec<bool>,
    /// Validated on *some* path — withdraws coverage claims.
    validated_any: Vec<bool>,
}

impl State {
    fn initial(n: usize) -> State {
        State {
            vn: (0..n as u32).collect(),
            validated_all: vec![false; n],
            validated_any: vec![false; n],
        }
    }

    /// Renames classes to their lowest member, forgetting block-local ids.
    fn canonicalize(&mut self) {
        let mut first: HashMap<u32, u32> = HashMap::new();
        for r in 0..self.vn.len() {
            let raw = self.vn[r];
            let rep = *first.entry(raw).or_insert(r as u32);
            self.vn[r] = rep;
        }
    }

    /// Partition intersection: two registers stay in one class only if
    /// they share a class in both inputs.
    fn meet(&self, other: &State) -> State {
        let n = self.vn.len();
        let mut pairs: HashMap<(u32, u32), u32> = HashMap::new();
        let mut out = State::initial(n);
        for r in 0..n {
            let key = (self.vn[r], other.vn[r]);
            let rep = *pairs.entry(key).or_insert(r as u32);
            out.vn[r] = rep;
            out.validated_all[r] = self.validated_all[r] && other.validated_all[r];
            out.validated_any[r] = self.validated_any[r] || other.validated_any[r];
        }
        out
    }
}

/// Per-function context shared by the fixpoint and the reporting pass.
struct FnCx<'f> {
    f: &'f Function,
    model: ValidationModel,
    /// Blocks containing a `Detect` intrinsic (SWIFT's trap blocks).
    detect_blocks: Vec<bool>,
    /// Minimum replica count for a coverage claim.
    min_replicas: usize,
}

/// Everything the reporting pass accumulates.
#[derive(Default)]
struct Report {
    diags: Vec<CoverageDiag>,
    validated_uses: usize,
    protected_defs: usize,
    map: CoverageMap,
}

/// Lints every protected (and not outlined) function of `module` under
/// `model`. The module is expected to be the *output* of a protection
/// pass; linting untransformed code simply reports every sync point as
/// unprotected.
pub fn lint_module(module: &Module, model: ValidationModel) -> CoverageReport {
    let mut report = CoverageReport {
        functions: Vec::new(),
        diags: Vec::new(),
        map: CoverageMap::default(),
    };
    for f in &module.functions {
        if !f.attrs.protect || f.attrs.outlined {
            continue;
        }
        let (cov, mut diags, map) = lint_function(f, model);
        report.functions.push(cov);
        report.diags.append(&mut diags);
        for (k, v) in map.covered {
            report.map.covered.insert(k, v);
        }
    }
    // Skip-fault contract post-pass: a pure instruction whose stale
    // destination would still be a covered corruption at the next
    // boundary can safely retire as a bubble.
    for f in &module.functions {
        if !f.attrs.protect || f.attrs.outlined {
            continue;
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ip, inst) in b.insts.iter().enumerate() {
                let dst = match inst {
                    Inst::Mov { dst, .. }
                    | Inst::Bin { dst, .. }
                    | Inst::Un { dst, .. }
                    | Inst::Cmp { dst, .. }
                    | Inst::Select { dst, .. } => *dst,
                    Inst::Load { .. }
                    | Inst::Store { .. }
                    | Inst::Call { .. }
                    | Inst::IntrinsicCall { .. } => continue,
                };
                let block = BlockId(bi as u32);
                if report.map.is_covered(&f.name, block, ip + 1, dst) {
                    report.map.claim_skip(&f.name, block, ip);
                }
            }
        }
    }
    report
}

/// Checks that a memoized region body (and everything it calls) is a pure
/// function of its arguments, reporting each blocker as a diagnostic.
pub fn lint_memoized_body(module: &Module, body_fn: &str) -> Vec<CoverageDiag> {
    let purity = Purity::analyze(module);
    memoization_blockers(module, &purity, body_fn)
        .into_iter()
        .map(|(loc, reason)| CoverageDiag {
            kind: CoverageKind::ImpureMemoizedBody,
            loc,
            message: reason,
        })
        .collect()
}

fn lint_function(
    f: &Function,
    model: ValidationModel,
) -> (FunctionCoverage, Vec<CoverageDiag>, CoverageMap) {
    let cx = FnCx {
        f,
        model,
        detect_blocks: f
            .blocks
            .iter()
            .map(|b| {
                b.insts.iter().any(|i| {
                    matches!(
                        i,
                        Inst::IntrinsicCall {
                            intr: Intrinsic::Detect,
                            ..
                        }
                    )
                })
            })
            .collect(),
        min_replicas: match model {
            ValidationModel::Detect => 2,
            ValidationModel::Vote => 3,
        },
    };

    // Reverse postorder for fast convergence.
    let rpo = reverse_postorder(f);

    // Fixpoint over canonical entry states. States only refine (classes
    // split, validated_all shrinks, validated_any grows), so this
    // terminates.
    let mut at_entry: HashMap<usize, State> = HashMap::new();
    at_entry.insert(f.entry().index(), State::initial(f.regs.len()));
    loop {
        let mut changed = false;
        for &b in &rpo {
            let Some(entry) = at_entry.get(&b).cloned() else {
                continue;
            };
            for (succ, mut out) in flow(&cx, BlockId(b as u32), entry, None) {
                out.canonicalize();
                let slot = at_entry.get_mut(&succ.index());
                match slot {
                    None => {
                        at_entry.insert(succ.index(), out);
                        changed = true;
                    }
                    Some(prev) => {
                        let mut met = prev.meet(&out);
                        met.canonicalize();
                        if met != *prev {
                            *prev = met;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting pass over the stable states.
    let mut report = Report::default();
    for &b in &rpo {
        let Some(entry) = at_entry.get(&b).cloned() else {
            continue;
        };
        let _ = flow(&cx, BlockId(b as u32), entry, Some(&mut report));
    }

    let insts: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
    let cov = FunctionCoverage {
        function: f.name.clone(),
        insts,
        protected_defs: report.protected_defs,
        validated_uses: report.validated_uses,
        unprotected: report.diags.len(),
    };
    (cov, report.diags, report.map)
}

fn reverse_postorder(f: &Function) -> Vec<usize> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit phase marker.
    let mut stack = vec![(f.entry().index(), false)];
    while let Some((b, expanded)) = stack.pop() {
        if expanded {
            post.push(b);
            continue;
        }
        if visited[b] {
            continue;
        }
        visited[b] = true;
        stack.push((b, true));
        for s in f.blocks[b].term.successors() {
            if !visited[s.index()] {
                stack.push((s.index(), false));
            }
        }
    }
    post.reverse();
    post
}

/// Transfers `entry` through block `bid`, returning the per-successor out
/// states. With `report`, also emits diagnostics, counters and coverage
/// claims (run only once the states are stable).
fn flow(
    cx: &FnCx<'_>,
    bid: BlockId,
    entry: State,
    mut report: Option<&mut Report>,
) -> Vec<(BlockId, State)> {
    let f = cx.f;
    let block = f.block(bid);
    let n = f.regs.len();
    let mut st = entry;
    let mut next_vn = n as u32;
    let mut avail: HashMap<PureKey, u32> = HashMap::new();
    // Agreement/disagreement predicates produced by cmp over one class:
    // reg holding the predicate -> the class it judges.
    let mut eq_cmp: HashMap<u32, u32> = HashMap::new();
    let mut ne_cmp: HashMap<u32, u32> = HashMap::new();

    let desc = |st: &State, op: Operand| match op {
        Operand::Reg(r) => OpDesc::Vn(st.vn[r.index()]),
        Operand::ImmI(v) => OpDesc::ImmI(v),
        Operand::ImmF(v) => OpDesc::ImmF(v.to_bits()),
        Operand::Global(g) => OpDesc::Global(g.index() as u32),
    };
    let class_of = |st: &State, op: Operand| match op {
        Operand::Reg(r) => Some(st.vn[r.index()]),
        _ => None,
    };

    // Records the coverage claims for the boundary before `ip`
    // (`ip == insts.len()` is the terminator boundary).
    let record_boundary = |st: &State,
                           eq_cmp: &HashMap<u32, u32>,
                           ne_cmp: &HashMap<u32, u32>,
                           ip: usize,
                           report: &mut Report| {
        // Classes consumed by the *next* instruction in a way that
        // bypasses future validation: a vote select reads its class with
        // the agreement bit already fixed; a recognized check branch has
        // already compared.
        let mut excluded_class: Option<u32> = None;
        if ip < block.insts.len() {
            if let Inst::Select {
                cond: Operand::Reg(t),
                on_true,
                on_false,
                ..
            } = &block.insts[ip]
            {
                if let Some(&c) = eq_cmp.get(&t.0) {
                    if class_of(st, *on_true) == Some(c) && class_of(st, *on_false) == Some(c) {
                        excluded_class = Some(c);
                    }
                }
            }
        } else if let Terminator::CondBr(Operand::Reg(t), bt, _) = &block.term {
            if let Some(&c) = ne_cmp.get(&t.0) {
                if cx.detect_blocks[bt.index()] {
                    excluded_class = Some(c);
                }
            }
        }
        let mut sizes: HashMap<u32, usize> = HashMap::new();
        for &v in &st.vn {
            *sizes.entry(v).or_insert(0) += 1;
        }
        for r in 0..n {
            let class = st.vn[r];
            if sizes[&class] < cx.min_replicas
                || st.validated_any[r]
                || excluded_class == Some(class)
            {
                continue;
            }
            report.map.claim(&f.name, bid, ip, r as u32);
        }
    };

    // A sync point: `op` leaves the sphere of replication here.
    let sync = |st: &State,
                op: Operand,
                kind: CoverageKind,
                loc: InstLoc,
                report: &mut Option<&mut Report>| {
        let Some(report) = report.as_deref_mut() else {
            return;
        };
        let Operand::Reg(r) = op else { return };
        if st.validated_all[r.index()] {
            report.validated_uses += 1;
        } else {
            report.diags.push(CoverageDiag {
                kind,
                loc,
                message: format!("%{} is not validated by a check or vote", r.0),
            });
        }
    };

    let mut def_vns: Vec<(usize, u32)> = Vec::new();
    let set_def = |st: &mut State,
                   def_vns: &mut Vec<(usize, u32)>,
                   dst: Reg,
                   vn: u32,
                   all: bool,
                   any: bool| {
        st.vn[dst.index()] = vn;
        st.validated_all[dst.index()] = all;
        st.validated_any[dst.index()] = any;
        def_vns.push((dst.index(), vn));
    };

    for (i, inst) in block.insts.iter().enumerate() {
        if let Some(report) = report.as_deref_mut() {
            record_boundary(&st, &eq_cmp, &ne_cmp, i, report);
        }
        let loc = || InstLoc::inst(&f.name, bid, block.name.clone(), i);
        // A redefined register no longer holds the predicate a cmp
        // produced.
        if let Some(d) = inst.dst() {
            eq_cmp.remove(&d.0);
            ne_cmp.remove(&d.0);
        }
        match inst {
            Inst::Mov { ty, dst, src } => match src {
                Operand::Reg(s) => {
                    let (vn, all, any) = (
                        st.vn[s.index()],
                        st.validated_all[s.index()],
                        st.validated_any[s.index()],
                    );
                    set_def(&mut st, &mut def_vns, *dst, vn, all, any);
                }
                _ => {
                    let key = PureKey::Mov(*ty, desc(&st, *src));
                    let vn = *avail.entry(key).or_insert_with(|| {
                        next_vn += 1;
                        next_vn - 1
                    });
                    set_def(&mut st, &mut def_vns, *dst, vn, false, false);
                }
            },
            Inst::Select {
                ty,
                dst,
                cond,
                on_true,
                on_false,
            } => {
                let vote_class = match cond {
                    Operand::Reg(t) => eq_cmp.get(&t.0).copied().filter(|&c| {
                        class_of(&st, *on_true) == Some(c) && class_of(&st, *on_false) == Some(c)
                    }),
                    _ => None,
                };
                if let Some(_c) = vote_class {
                    // Majority vote: the result is validated but carries no
                    // redundancy of its own.
                    next_vn += 1;
                    set_def(&mut st, &mut def_vns, *dst, next_vn - 1, true, true);
                } else {
                    let key = PureKey::Select(
                        *ty,
                        desc(&st, *cond),
                        desc(&st, *on_true),
                        desc(&st, *on_false),
                    );
                    let vn = *avail.entry(key).or_insert_with(|| {
                        next_vn += 1;
                        next_vn - 1
                    });
                    set_def(&mut st, &mut def_vns, *dst, vn, false, false);
                }
            }
            Inst::Bin {
                ty,
                op,
                dst,
                lhs,
                rhs,
            } => {
                let key = PureKey::Bin(*op, *ty, desc(&st, *lhs), desc(&st, *rhs));
                let vn = *avail.entry(key).or_insert_with(|| {
                    next_vn += 1;
                    next_vn - 1
                });
                set_def(&mut st, &mut def_vns, *dst, vn, false, false);
            }
            Inst::Un { ty, op, dst, src } => {
                let key = PureKey::Un(*op, *ty, desc(&st, *src));
                let vn = *avail.entry(key).or_insert_with(|| {
                    next_vn += 1;
                    next_vn - 1
                });
                set_def(&mut st, &mut def_vns, *dst, vn, false, false);
            }
            Inst::Cmp {
                ty,
                op,
                dst,
                lhs,
                rhs,
            } => {
                let same_class = match (class_of(&st, *lhs), class_of(&st, *rhs)) {
                    (Some(a), Some(b)) => (a == b).then_some(a),
                    _ => None,
                };
                let key = PureKey::Cmp(*op, *ty, desc(&st, *lhs), desc(&st, *rhs));
                let vn = *avail.entry(key).or_insert_with(|| {
                    next_vn += 1;
                    next_vn - 1
                });
                set_def(&mut st, &mut def_vns, *dst, vn, false, false);
                if let Some(c) = same_class {
                    match op {
                        CmpOp::Eq => {
                            eq_cmp.insert(dst.0, c);
                        }
                        CmpOp::Ne => {
                            ne_cmp.insert(dst.0, c);
                        }
                        _ => {}
                    }
                }
            }
            Inst::Load { dst, addr, .. } => {
                sync(
                    &st,
                    *addr,
                    CoverageKind::UnprotectedLoadAddr,
                    loc(),
                    &mut report,
                );
                next_vn += 1;
                set_def(&mut st, &mut def_vns, *dst, next_vn - 1, false, false);
            }
            Inst::Store { addr, value, .. } => {
                sync(
                    &st,
                    *addr,
                    CoverageKind::UnprotectedStoreAddr,
                    loc(),
                    &mut report,
                );
                sync(
                    &st,
                    *value,
                    CoverageKind::UnprotectedStoreValue,
                    loc(),
                    &mut report,
                );
            }
            Inst::Call { dst, args, .. } => {
                for a in args {
                    sync(
                        &st,
                        *a,
                        CoverageKind::UnprotectedCallArg,
                        loc(),
                        &mut report,
                    );
                }
                if let Some(d) = dst {
                    next_vn += 1;
                    set_def(&mut st, &mut def_vns, *d, next_vn - 1, false, false);
                }
            }
            Inst::IntrinsicCall { dst, intr, args } => {
                if cx.model == ValidationModel::Vote && *intr != Intrinsic::Detect {
                    for a in args {
                        sync(
                            &st,
                            *a,
                            CoverageKind::UnprotectedIntrinsicArg,
                            loc(),
                            &mut report,
                        );
                    }
                }
                if let Some(d) = dst {
                    next_vn += 1;
                    set_def(&mut st, &mut def_vns, *d, next_vn - 1, false, false);
                }
            }
        }
    }

    // Terminator boundary and sync checks.
    if let Some(report) = report.as_deref_mut() {
        record_boundary(&st, &eq_cmp, &ne_cmp, block.insts.len(), report);
    }
    let term_loc = || InstLoc::term(&f.name, bid, block.name.clone());
    let mut outs: Vec<(BlockId, State)> = Vec::new();
    match &block.term {
        Terminator::Br(t) => outs.push((*t, st.clone())),
        Terminator::Ret(v) => {
            if let Some(v) = v {
                sync(
                    &st,
                    *v,
                    CoverageKind::UnprotectedReturn,
                    term_loc(),
                    &mut report,
                );
            }
        }
        Terminator::CondBr(c, bt, bf) => {
            let checked_class = match c {
                Operand::Reg(t) if cx.detect_blocks[bt.index()] => ne_cmp.get(&t.0).copied(),
                _ => None,
            };
            if let Some(class) = checked_class {
                // SWIFT check: the detect edge traps; the fall-through edge
                // continues with the class validated.
                outs.push((*bt, st.clone()));
                let mut ok = st.clone();
                for r in 0..n {
                    if ok.vn[r] == class {
                        ok.validated_all[r] = true;
                        ok.validated_any[r] = true;
                    }
                }
                outs.push((*bf, ok));
            } else {
                sync(
                    &st,
                    *c,
                    CoverageKind::UnprotectedBranch,
                    term_loc(),
                    &mut report,
                );
                outs.push((*bt, st.clone()));
                outs.push((*bf, st.clone()));
            }
        }
    }

    // Count definitions that end the block with full redundancy.
    if let Some(report) = report {
        let mut sizes: HashMap<u32, usize> = HashMap::new();
        for &v in &st.vn {
            *sizes.entry(v).or_insert(0) += 1;
        }
        report.protected_defs += def_vns
            .iter()
            .filter(|(_, vn)| sizes.get(vn).copied().unwrap_or(0) >= cx.min_replicas)
            .count();
    }
    outs
}
