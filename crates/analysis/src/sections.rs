//! Injection-section partitioning — the structural half of `rskip-vuln`.
//!
//! FastFlip-style compositional injection analysis (PAPERS.md, arXiv
//! 2403.13989) needs the program cut into *sections*: units small enough
//! that per-section error profiles are cheap to re-measure, and aligned
//! with the protection scheme's own boundaries so a section's profile is
//! meaningful in isolation. This module partitions every function's
//! blocks into sections whose leaders are
//!
//! * the function entry,
//! * every block that talks to the protection runtime
//!   (`region_enter` / `region_exit` / `detect` intrinsic calls — the
//!   region and check boundaries the paper's scheme is built around),
//! * every natural-loop header (so loop bodies profile separately from
//!   straight-line prologue/epilogue code), and
//! * every unreachable block (grouped into one trailing section so the
//!   partition still covers the whole function).
//!
//! Each remaining reachable block joins the section of its nearest
//! dominating leader — walking the idom chain guarantees a section is a
//! dominator-connected region, and the entry being a leader guarantees
//! the walk terminates.
//!
//! Every section carries an FNV-1a content hash over its blocks'
//! instructions and terminators. The hash is the incremental-reinjection
//! key: an edit invalidates exactly the sections whose rendered content
//! changed (block *renames* do not change it; inserting or removing
//! whole blocks shifts `BlockId`s and therefore conservatively
//! invalidates every section that branches to a shifted block).

use std::collections::BTreeMap;

use rskip_core::digest::Fnv1a64;
use rskip_ir::{BlockId, Function, Inst, Intrinsic, Module};

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::loops::LoopForest;

/// Why a block leads a section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionKind {
    /// The function entry block.
    Entry,
    /// The leader contains a region/check intrinsic
    /// (`region_enter`, `region_exit`, `detect`).
    Region,
    /// The leader is a natural-loop header.
    LoopHeader,
    /// The section collects the function's unreachable blocks.
    Unreachable,
}

impl SectionKind {
    /// Short display label for section tables.
    pub fn label(self) -> &'static str {
        match self {
            SectionKind::Entry => "entry",
            SectionKind::Region => "region",
            SectionKind::LoopHeader => "loop",
            SectionKind::Unreachable => "unreachable",
        }
    }
}

/// One injection section: a dominator-connected group of blocks of one
/// function, led by a region/check/loop boundary.
#[derive(Clone, Debug)]
pub struct Section {
    /// Index of this section in [`SectionMap::sections`] — the stable
    /// per-module section identifier reports and caches use.
    pub id: usize,
    /// Index of the owning function in `Module::functions`.
    pub func: usize,
    /// Name of the owning function (for display and cache keys).
    pub func_name: String,
    /// Why the leader starts a section.
    pub kind: SectionKind,
    /// The leader block.
    pub leader: BlockId,
    /// All member blocks, sorted by block index (leader included).
    pub blocks: Vec<BlockId>,
    /// FNV-1a hash of the member blocks' rendered instructions and
    /// terminators — the incremental-reinjection cache key.
    pub hash: u64,
}

/// The section partition of a whole module.
#[derive(Clone, Debug)]
pub struct SectionMap {
    sections: Vec<Section>,
    /// `func index -> block index -> section id`.
    assignment: Vec<Vec<usize>>,
    by_name: BTreeMap<String, usize>,
}

/// True if `inst` is a region/check boundary a section must break at.
fn is_boundary_inst(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::IntrinsicCall {
            intr: Intrinsic::RegionEnter | Intrinsic::RegionExit | Intrinsic::Detect,
            ..
        }
    )
}

/// Folds one block's content into `h`. The rendered form is the IR
/// `Debug` representation, which covers operands, types, immediates and
/// branch targets but not the block's display name.
fn hash_block(h: &mut Fnv1a64, f: &Function, b: BlockId) {
    h.update(&(b.index() as u64).to_le_bytes());
    let block = &f.blocks[b.index()];
    for inst in &block.insts {
        h.update(format!("{inst:?}").as_bytes());
        h.update(b";");
    }
    h.update(format!("{:?}", block.term).as_bytes());
    h.update(b"|");
}

impl SectionMap {
    /// Partitions every function of `m` into injection sections.
    pub fn build(m: &Module) -> SectionMap {
        let mut sections = Vec::new();
        let mut assignment = Vec::with_capacity(m.functions.len());
        let mut by_name = BTreeMap::new();
        for (fi, f) in m.functions.iter().enumerate() {
            by_name.insert(f.name.clone(), fi);
            assignment.push(partition_function(fi, f, &mut sections));
        }
        SectionMap {
            sections,
            assignment,
            by_name,
        }
    }

    /// All sections, in (function, leader) order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// The section owning block `b` of function index `func`.
    pub fn section_of(&self, func: usize, b: BlockId) -> &Section {
        &self.sections[self.assignment[func][b.index()]]
    }

    /// The section owning block `b` of the function named `func`, if the
    /// function exists.
    pub fn section_of_named(&self, func: &str, b: BlockId) -> Option<&Section> {
        let fi = *self.by_name.get(func)?;
        Some(self.section_of(fi, b))
    }

    /// Index of the function named `name`, if present.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }
}

/// Partitions one function; returns the per-block section assignment.
fn partition_function(fi: usize, f: &Function, sections: &mut Vec<Section>) -> Vec<usize> {
    let n = f.blocks.len();
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let loops = LoopForest::new(f, &cfg, &dom);

    // Leader discovery, strongest reason wins: Entry > Region > LoopHeader.
    let mut leader_kind: Vec<Option<SectionKind>> = vec![None; n];
    for l in loops.loops() {
        leader_kind[l.header.index()] = Some(SectionKind::LoopHeader);
    }
    for (id, block) in f.iter_blocks() {
        if cfg.is_reachable(id) && block.insts.iter().any(is_boundary_inst) {
            leader_kind[id.index()] = Some(SectionKind::Region);
        }
    }
    if n > 0 {
        leader_kind[0] = Some(SectionKind::Entry);
    }

    // One section per reachable leader, in block order; one shared
    // trailing section for unreachable blocks, if any exist.
    let mut section_of_leader: Vec<Option<usize>> = vec![None; n];
    let first = sections.len();
    for b in 0..n {
        let id = BlockId(b as u32);
        if !cfg.is_reachable(id) {
            continue;
        }
        if let Some(kind) = leader_kind[b] {
            section_of_leader[b] = Some(sections.len());
            sections.push(Section {
                id: sections.len(),
                func: fi,
                func_name: f.name.clone(),
                kind,
                leader: id,
                blocks: Vec::new(),
                hash: 0,
            });
        }
    }
    let mut unreachable_section: Option<usize> = None;

    // Assign every block: reachable blocks walk the idom chain to the
    // nearest dominating leader (the entry leader terminates the walk);
    // unreachable blocks pool into the trailing section.
    let mut assignment = vec![usize::MAX; n];
    for (b, slot) in assignment.iter_mut().enumerate() {
        let id = BlockId(b as u32);
        if !cfg.is_reachable(id) {
            *slot = *unreachable_section.get_or_insert_with(|| {
                sections.push(Section {
                    id: sections.len(),
                    func: fi,
                    func_name: f.name.clone(),
                    kind: SectionKind::Unreachable,
                    leader: id,
                    blocks: Vec::new(),
                    hash: 0,
                });
                sections.len() - 1
            });
            continue;
        }
        let mut cur = id;
        loop {
            if let Some(s) = section_of_leader[cur.index()] {
                *slot = s;
                break;
            }
            cur = dom
                .idom(cur)
                .expect("reachable non-entry block must have an idom");
        }
    }

    for (b, &s) in assignment.iter().enumerate() {
        sections[s].blocks.push(BlockId(b as u32));
    }
    for s in &mut sections[first..] {
        let mut h = Fnv1a64::new();
        h.update(f.name.as_bytes());
        for &b in &s.blocks {
            hash_block(&mut h, f, b);
        }
        s.hash = h.finish();
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Operand, Ty};

    /// entry -> header; header -> body | exit; body -> header.
    fn loop_module() -> rskip_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], Some(Ty::I64));
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let acc = f.def_reg(Ty::I64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.mov(acc, Operand::imm_i(0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(4));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        f.bin_into(acc, BinOp::Add, Ty::I64, Operand::reg(acc), Operand::reg(i));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(header);
        f.switch_to(exit);
        f.ret(Some(Operand::reg(acc)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn loop_header_starts_its_own_section() {
        let m = loop_module();
        let map = SectionMap::build(&m);
        // entry section + loop section (header leads; body joins it via
        // idom; exit's idom chain also reaches the header first).
        assert_eq!(map.sections().len(), 2);
        let entry = map.section_of(0, BlockId(0));
        assert_eq!(entry.kind, SectionKind::Entry);
        assert_eq!(entry.blocks, vec![BlockId(0)]);
        let lp = map.section_of(0, BlockId(2));
        assert_eq!(lp.kind, SectionKind::LoopHeader);
        assert_eq!(lp.leader, BlockId(1));
        assert_eq!(lp.blocks, vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(map.section_of_named("f", BlockId(3)).unwrap().id, lp.id);
    }

    #[test]
    fn hash_tracks_content_not_names() {
        let a = loop_module();
        let mut b = loop_module();
        let ha: Vec<u64> = SectionMap::build(&a)
            .sections()
            .iter()
            .map(|s| s.hash)
            .collect();
        // Renaming a block does not change any hash.
        b.functions[0].blocks[2].name = "renamed".into();
        let hb: Vec<u64> = SectionMap::build(&b)
            .sections()
            .iter()
            .map(|s| s.hash)
            .collect();
        assert_eq!(ha, hb);
        // Editing one section's instructions changes that hash only.
        let dup = b.functions[0].blocks[2].insts[0].clone();
        b.functions[0].blocks[2].insts.push(dup);
        let hc: Vec<u64> = SectionMap::build(&b)
            .sections()
            .iter()
            .map(|s| s.hash)
            .collect();
        assert_eq!(ha[0], hc[0]);
        assert_ne!(ha[1], hc[1]);
    }

    #[test]
    fn unreachable_blocks_pool_into_one_section() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let dead = f.new_block("dead");
        let dead2 = f.new_block("dead2");
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        f.switch_to(dead2);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let map = SectionMap::build(&m);
        assert_eq!(map.sections().len(), 2);
        let u = map.section_of(0, BlockId(1));
        assert_eq!(u.kind, SectionKind::Unreachable);
        assert_eq!(u.blocks, vec![BlockId(1), BlockId(2)]);
        assert_eq!(map.section_of(0, BlockId(2)).id, u.id);
    }
}
