//! Composition of per-section injection profiles into whole-program
//! estimates — the FastFlip half of `rskip-vuln`.
//!
//! A campaign over the whole program draws fault sites uniformly from
//! the dynamic site universe. Partition that universe by
//! [`crate::SectionMap`] section and the whole-program outcome rate
//! decomposes exactly:
//!
//! ```text
//! P(class) = Σ_s  w_s · P(class | site ∈ s),     w_s = |sites_s| / |sites|
//! ```
//!
//! Each section's conditional rate is estimated by its own (much
//! smaller, independently cached) campaign, so the whole-program
//! estimate is the site-weighted average of the per-section rates. For
//! the interval, each section contributes a Wilson interval at
//! [`COMPOSE_Z`] (≈ 99.7% per section, stricter than the 95% reporting
//! default) and the composed interval is the weighted sum of the
//! per-section bounds — conservative (wider than an exact convolution)
//! but honest: the true rate lies inside whenever every per-section
//! interval covers its conditional rate, and the per-section level is
//! held high precisely because that joint event degrades with the
//! section count. A section with sites but no trials contributes its
//! vacuous `[0, 1]` interval, honestly widening the composed bounds.
//!
//! The payoff is incrementality: per-section profiles are keyed by the
//! section's content hash, so after an edit only sections whose hash
//! changed re-inject — the others' profiles come from the cache and the
//! composition is recomputed in microseconds.

use rskip_core::stats::{wilson_ci_z, CampaignStats, WilsonCi};

/// Critical value for each per-section Wilson interval (three-sigma,
/// ≈ 99.7% per section). The composed interval covers the true
/// whole-program rate whenever *every* per-section interval covers its
/// conditional rate; at `k` sections a union bound puts that joint
/// coverage at `1 - k·0.003`, which stays a real guarantee for the
/// dozens of sections a practical partition yields, where per-section
/// 95% intervals would not.
pub const COMPOSE_Z: f64 = 3.0;

/// One section's injection profile: its share of the fault-site
/// universe and its campaign outcome statistics.
#[derive(Clone, Debug)]
pub struct SectionProfile {
    /// Number of fault sites of the whole-program universe that fall in
    /// this section (the composition weight numerator).
    pub sites: u64,
    /// Outcome statistics of the per-section campaign.
    pub stats: CampaignStats,
}

/// A composed whole-program rate with its (conservative) interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComposedRate {
    /// Site-weighted point estimate, in `[0, 1]`.
    pub estimate: f64,
    /// Site-weighted Wilson interval.
    pub ci: WilsonCi,
}

/// Whole-program estimates composed from per-section profiles.
#[derive(Clone, Debug)]
pub struct ComposedEstimate {
    /// Total fault sites across all sections (the weight denominator).
    pub sites: u64,
    /// Trials actually aggregated across the sections.
    pub trials: u64,
    /// Composed correct-output (protection) rate.
    pub correct: ComposedRate,
    /// Composed silent-data-corruption rate.
    pub sdc: ComposedRate,
    /// Composed detected-without-recovery rate.
    pub detected: ComposedRate,
}

/// Composes per-section profiles into whole-program rate estimates.
/// Sections with zero sites carry no weight and are ignored (their
/// stats cannot describe any reachable fault).
pub fn compose(profiles: &[SectionProfile]) -> ComposedEstimate {
    let sites: u64 = profiles.iter().map(|p| p.sites).sum();
    let trials: u64 = profiles
        .iter()
        .filter(|p| p.sites > 0)
        .map(|p| p.stats.counts.total())
        .sum();
    let rate = |count: fn(&CampaignStats) -> u64| {
        let mut estimate = 0.0;
        let mut lo = 0.0;
        let mut hi = 0.0;
        for p in profiles {
            if p.sites == 0 {
                continue;
            }
            let w = p.sites as f64 / sites as f64;
            let n = p.stats.counts.total();
            estimate += w * p.stats.counts.rate(count(&p.stats));
            let w_ci = wilson_ci_z(count(&p.stats), n, COMPOSE_Z); // n == 0 → vacuous [0, 1]
            lo += w * w_ci.lo;
            hi += w * w_ci.hi;
        }
        ComposedRate {
            estimate,
            ci: WilsonCi { lo, hi },
        }
    };
    let correct = rate(|s| s.counts.correct);
    let sdc = rate(|s| s.counts.sdc);
    let detected = rate(|s| s.counts.detected);
    ComposedEstimate {
        sites,
        trials,
        correct,
        sdc,
        detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_core::stats::{OutcomeClass, TrialOutcome};

    fn stats(correct: u64, sdc: u64) -> CampaignStats {
        let mut s = CampaignStats::default();
        for _ in 0..correct {
            s.record(TrialOutcome {
                class: OutcomeClass::Correct,
                recovered: false,
                fired: true,
                pruned: false,
            });
        }
        for _ in 0..sdc {
            s.record(TrialOutcome {
                class: OutcomeClass::Sdc,
                recovered: false,
                fired: true,
                pruned: false,
            });
        }
        s
    }

    #[test]
    fn composition_is_the_site_weighted_average() {
        // Section A: 3/4 of sites, 100% correct. Section B: 1/4, 50/50.
        let profiles = vec![
            SectionProfile {
                sites: 30,
                stats: stats(10, 0),
            },
            SectionProfile {
                sites: 10,
                stats: stats(5, 5),
            },
        ];
        let est = compose(&profiles);
        assert_eq!(est.sites, 40);
        assert_eq!(est.trials, 20);
        assert!((est.correct.estimate - 0.875).abs() < 1e-12);
        assert!((est.sdc.estimate - 0.125).abs() < 1e-12);
        // The composed interval brackets the point estimate.
        assert!(est.sdc.ci.lo <= est.sdc.estimate && est.sdc.estimate <= est.sdc.ci.hi);
        assert!(est.correct.ci.lo <= est.correct.estimate);
        assert!(est.correct.estimate <= est.correct.ci.hi);
    }

    #[test]
    fn untried_section_widens_the_interval_honestly() {
        let profiles = vec![
            SectionProfile {
                sites: 50,
                stats: stats(20, 0),
            },
            SectionProfile {
                sites: 50,
                stats: CampaignStats::default(), // sites but no trials
            },
        ];
        let est = compose(&profiles);
        // Half the weight is vacuous [0, 1]: the composed SDC interval
        // must reach at least 0.5 on the high side.
        assert!(est.sdc.ci.hi >= 0.5);
        assert!(est.sdc.ci.lo <= 1e-12);
    }

    #[test]
    fn zero_site_sections_are_ignored() {
        let profiles = vec![
            SectionProfile {
                sites: 10,
                stats: stats(8, 2),
            },
            SectionProfile {
                sites: 0,
                stats: stats(0, 7), // must not leak into the estimate
            },
        ];
        let est = compose(&profiles);
        assert_eq!(est.sites, 10);
        assert_eq!(est.trials, 10);
        assert!((est.sdc.estimate - 0.2).abs() < 1e-12);
    }
}
