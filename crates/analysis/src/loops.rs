//! Natural-loop detection, nesting, induction variables and trip counts.

use std::collections::BTreeSet;

use rskip_ir::{BinOp, BlockId, CmpOp, Function, Inst, Operand, Reg, Terminator, Ty};

use crate::cfg::Cfg;
use crate::dom::DomTree;

/// A primary induction variable: a register updated exactly once per
/// iteration by a constant step and tested by the loop's exit condition.
#[derive(Clone, Debug, PartialEq)]
pub struct InductionVar {
    /// The induction register.
    pub reg: Reg,
    /// The constant step added each iteration.
    pub step: i64,
    /// Block containing the update instruction.
    pub update_block: BlockId,
    /// Index of the update instruction within that block.
    pub update_idx: usize,
    /// Constant initial value, when determinable (a unique constant `mov`
    /// outside the loop).
    pub init: Option<i64>,
    /// Exit bound `(predicate, constant)`, when the exit compare tests the
    /// induction register against a constant.
    pub bound: Option<(CmpOp, i64)>,
}

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, header included.
    pub blocks: BTreeSet<BlockId>,
    /// Sources of back edges (`latch -> header`).
    pub latches: Vec<BlockId>,
    /// Blocks inside the loop with a successor outside it.
    pub exiting: Vec<BlockId>,
    /// Index of the parent loop in the forest, if nested.
    pub parent: Option<usize>,
    /// Indices of directly nested loops.
    pub children: Vec<usize>,
    /// Nesting depth (outermost = 0).
    pub depth: usize,
    /// Primary induction variable, when detected.
    pub induction: Option<InductionVar>,
    /// Static trip count, when `induction` has both constant init and
    /// constant bound.
    pub trip_count: Option<u64>,
}

impl Loop {
    /// True if `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function, with nesting links.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects loops in `f`.
    ///
    /// Back edges are CFG edges `t -> h` where `h` dominates `t`; the loop
    /// body is found by backward reachability from the latch. Multiple back
    /// edges to the same header merge into one loop.
    pub fn new(f: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        // Collect back edges grouped by header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: std::collections::HashMap<BlockId, Vec<BlockId>> =
            std::collections::HashMap::new();
        for (id, block) in f.iter_blocks() {
            if !cfg.is_reachable(id) {
                continue;
            }
            for s in block.term.successors() {
                if dom.dominates(s, id) {
                    latches_of.entry(s).or_default().push(id);
                    if !headers.contains(&s) {
                        headers.push(s);
                    }
                }
            }
        }

        let mut loops: Vec<Loop> = Vec::new();
        for header in headers {
            let latches = latches_of[&header].clone();
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if blocks.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) && blocks.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let exiting = blocks
                .iter()
                .copied()
                .filter(|&b| {
                    f.block(b)
                        .term
                        .successors()
                        .iter()
                        .any(|s| !blocks.contains(s))
                })
                .collect();
            loops.push(Loop {
                header,
                blocks,
                latches,
                exiting,
                parent: None,
                children: Vec::new(),
                depth: 0,
                induction: None,
                trip_count: None,
            });
        }

        // Nesting: parent = smallest strict superset containing the header.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].blocks.len());
        for oi in 0..order.len() {
            let i = order[oi];
            let mut best: Option<usize> = None;
            for &j in &order[oi + 1..] {
                if i != j
                    && loops[j].blocks.contains(&loops[i].header)
                    && loops[j].blocks.len() > loops[i].blocks.len()
                {
                    let better = match best {
                        None => true,
                        Some(b) => loops[j].blocks.len() < loops[b].blocks.len(),
                    };
                    if better {
                        best = Some(j);
                    }
                }
            }
            if let Some(p) = best {
                loops[i].parent = Some(p);
                loops[p].children.push(i);
            }
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 0;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = d;
        }

        let mut forest = LoopForest { loops };
        for i in 0..forest.loops.len() {
            let iv = forest.detect_induction(f, i);
            if let Some(iv) = &iv {
                forest.loops[i].trip_count = trip_count(iv);
            }
            forest.loops[i].induction = iv;
        }
        forest
    }

    /// All loops, outermost-first order is *not* guaranteed; use
    /// [`Loop::depth`] to sort.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(b))
            .max_by_key(|(_, l)| l.depth)
            .map(|(i, _)| i)
    }

    /// The loop with the given header block.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == header)
    }

    /// Direct subloop indices of loop `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.loops[i].children
    }

    /// Detects the primary induction variable of loop `i`.
    ///
    /// Requirements: a register with exactly one definition inside the loop
    /// (excluding subloop blocks is *not* required — one def total), of the
    /// form `r = r + C` or `r = r - C`, whose value feeds the compare of an
    /// exiting conditional branch.
    fn detect_induction(&self, f: &Function, i: usize) -> Option<InductionVar> {
        let lp = &self.loops[i];

        // Candidate updates: single in-loop def `r = add r, const`.
        #[derive(Clone)]
        struct Cand {
            reg: Reg,
            step: i64,
            block: BlockId,
            idx: usize,
            defs_in_loop: usize,
        }
        let mut cands: Vec<Cand> = Vec::new();
        for &b in &lp.blocks {
            for (idx, inst) in f.block(b).insts.iter().enumerate() {
                if let Inst::Bin {
                    ty: Ty::I64,
                    op,
                    dst,
                    lhs,
                    rhs,
                } = inst
                {
                    let step = match (op, lhs, rhs) {
                        (BinOp::Add, Operand::Reg(r), Operand::ImmI(c)) if r == dst => Some(*c),
                        (BinOp::Add, Operand::ImmI(c), Operand::Reg(r)) if r == dst => Some(*c),
                        (BinOp::Sub, Operand::Reg(r), Operand::ImmI(c)) if r == dst => Some(-c),
                        _ => None,
                    };
                    if let Some(step) = step {
                        if step != 0 {
                            cands.push(Cand {
                                reg: *dst,
                                step,
                                block: b,
                                idx,
                                defs_in_loop: 0,
                            });
                        }
                    }
                }
            }
        }
        // Count total in-loop defs per candidate register; keep singles.
        for c in &mut cands {
            let mut defs = 0;
            for &b in &lp.blocks {
                for inst in &f.block(b).insts {
                    if inst.dst() == Some(c.reg) {
                        defs += 1;
                    }
                }
            }
            c.defs_in_loop = defs;
        }
        cands.retain(|c| c.defs_in_loop == 1);

        // Find the exit condition compare: an exiting block whose condbr
        // condition is defined by a cmp over a candidate register.
        for &ex in &lp.exiting {
            let block = f.block(ex);
            let Terminator::CondBr(Operand::Reg(cond), _, _) = block.term else {
                continue;
            };
            // Find the defining cmp in this block (search backwards).
            for inst in block.insts.iter().rev() {
                if inst.dst() == Some(cond) {
                    if let Inst::Cmp {
                        ty: Ty::I64,
                        op,
                        lhs,
                        rhs,
                        ..
                    } = inst
                    {
                        for c in &cands {
                            let bound = match (lhs, rhs) {
                                (Operand::Reg(r), Operand::ImmI(k)) if *r == c.reg => {
                                    Some(Some((*op, *k)))
                                }
                                (Operand::Reg(r), _) if *r == c.reg => Some(None),
                                _ => None,
                            };
                            if let Some(bound) = bound {
                                let init = find_const_init(f, lp, c.reg);
                                return Some(InductionVar {
                                    reg: c.reg,
                                    step: c.step,
                                    update_block: c.block,
                                    update_idx: c.idx,
                                    init,
                                    bound,
                                });
                            }
                        }
                    }
                    break;
                }
            }
        }
        None
    }
}

/// Finds a unique constant initialization of `reg` outside the loop.
fn find_const_init(f: &Function, lp: &Loop, reg: Reg) -> Option<i64> {
    let mut init = None;
    let mut defs_outside = 0;
    for (id, block) in f.iter_blocks() {
        if lp.contains(id) {
            continue;
        }
        for inst in &block.insts {
            if inst.dst() == Some(reg) {
                defs_outside += 1;
                if let Inst::Mov {
                    src: Operand::ImmI(c),
                    ..
                } = inst
                {
                    init = Some(*c);
                }
            }
        }
    }
    if defs_outside == 1 {
        init
    } else {
        None
    }
}

/// Computes the trip count of a canonical counted loop.
fn trip_count(iv: &InductionVar) -> Option<u64> {
    let init = iv.init?;
    let (op, bound) = iv.bound?;
    let step = iv.step;
    if step <= 0 {
        return None; // only upward-counting loops supported
    }
    // The compare tests the *updated* value when it sits after the update
    // in the same block; our canonical loops compare in the exiting block
    // after the increment: `i += s; if i < n continue`. That executes the
    // body for i = init, init+s, ... while the *next* value satisfies the
    // bound. Both placements differ by at most one iteration; we report the
    // count for the standard `while (i < n)` reading, which is what the
    // candidate analysis uses as a magnitude estimate.
    let n = match op {
        CmpOp::Lt => (bound - init).max(0),
        CmpOp::Le => (bound - init + 1).max(0),
        _ => return None,
    };
    Some(((n + step - 1) / step) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{ModuleBuilder, Operand, Ty};

    /// Two-level nest:
    /// entry -> oh; oh -> ob | exit; ob -> ih; ih -> ibody | olatch;
    /// ibody -> ih; olatch -> oh.
    fn nested() -> rskip_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let oh = f.new_block("outer_header");
        let ob = f.new_block("outer_body");
        let ih = f.new_block("inner_header");
        let ib = f.new_block("inner_body");
        let ol = f.new_block("outer_latch");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let k = f.def_reg(Ty::I64, "k");

        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(oh);

        f.switch_to(oh);
        let c0 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(10));
        f.cond_br(Operand::reg(c0), ob, exit);

        f.switch_to(ob);
        f.mov(k, Operand::imm_i(0));
        f.br(ih);

        f.switch_to(ih);
        let c1 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(k), Operand::imm_i(5));
        f.cond_br(Operand::reg(c1), ib, ol);

        f.switch_to(ib);
        f.bin_into(k, BinOp::Add, Ty::I64, Operand::reg(k), Operand::imm_i(1));
        f.br(ih);

        f.switch_to(ol);
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(oh);

        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    fn forest(m: &rskip_ir::Module) -> LoopForest {
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        LoopForest::new(f, &cfg, &dom)
    }

    #[test]
    fn finds_two_nested_loops() {
        let m = nested();
        let forest = forest(&m);
        assert_eq!(forest.loops().len(), 2);
        let outer = forest.loop_with_header(BlockId(1)).unwrap();
        let inner = forest.loop_with_header(BlockId(3)).unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.blocks.is_superset(&inner.blocks));
        assert_eq!(outer.blocks.len(), 5); // oh ob ih ib ol
        assert_eq!(inner.blocks.len(), 2); // ih ib
    }

    #[test]
    fn nesting_links() {
        let m = nested();
        let forest = forest(&m);
        let outer_idx = forest
            .loops()
            .iter()
            .position(|l| l.header == BlockId(1))
            .unwrap();
        let inner_idx = forest
            .loops()
            .iter()
            .position(|l| l.header == BlockId(3))
            .unwrap();
        assert_eq!(forest.loops()[inner_idx].parent, Some(outer_idx));
        assert_eq!(forest.children(outer_idx), &[inner_idx]);
        assert_eq!(forest.innermost_containing(BlockId(4)), Some(inner_idx));
        assert_eq!(forest.innermost_containing(BlockId(2)), Some(outer_idx));
        assert_eq!(forest.innermost_containing(BlockId(0)), None);
    }

    #[test]
    fn induction_variables_detected() {
        let m = nested();
        let forest = forest(&m);
        let outer = forest.loop_with_header(BlockId(1)).unwrap();
        let iv = outer.induction.as_ref().expect("outer IV");
        assert_eq!(iv.step, 1);
        assert_eq!(iv.init, Some(0));
        assert_eq!(iv.bound, Some((CmpOp::Lt, 10)));
        assert_eq!(outer.trip_count, Some(10));

        let inner = forest.loop_with_header(BlockId(3)).unwrap();
        assert_eq!(inner.trip_count, Some(5));
    }

    #[test]
    fn exiting_and_latches() {
        let m = nested();
        let forest = forest(&m);
        let outer = forest.loop_with_header(BlockId(1)).unwrap();
        assert_eq!(outer.latches, vec![BlockId(5)]);
        assert_eq!(outer.exiting, vec![BlockId(1)]);
    }

    #[test]
    fn trip_count_semantics() {
        let iv = InductionVar {
            reg: Reg(0),
            step: 2,
            update_block: BlockId(0),
            update_idx: 0,
            init: Some(0),
            bound: Some((CmpOp::Lt, 7)),
        };
        assert_eq!(trip_count(&iv), Some(4)); // 0,2,4,6
        let le = InductionVar {
            bound: Some((CmpOp::Le, 7)),
            ..iv.clone()
        };
        assert_eq!(trip_count(&le), Some(4)); // 0,2,4,6 (8 > 7)
        let down = InductionVar {
            step: -1,
            ..iv.clone()
        };
        assert_eq!(trip_count(&down), None);
    }
}
