//! Def-use chains (paper §3: "thorough static analysis (e.g., def-use
//! chain)").

use rskip_ir::{BlockId, Function, Reg};

/// A definition site: the instruction at `block[idx]` writes the register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    /// Containing block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub idx: usize,
}

/// A use site. `idx == usize::MAX` denotes a use in the block terminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UseSite {
    /// Containing block.
    pub block: BlockId,
    /// Instruction index, or `usize::MAX` for the terminator.
    pub idx: usize,
}

impl UseSite {
    /// True if this use is in the block terminator.
    pub fn is_terminator(&self) -> bool {
        self.idx == usize::MAX
    }
}

/// Def-use chains for one function.
#[derive(Clone, Debug)]
pub struct DefUse {
    defs: Vec<Vec<DefSite>>,
    uses: Vec<Vec<UseSite>>,
}

impl DefUse {
    /// Computes def and use sites for every register of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.regs.len();
        let mut defs = vec![Vec::new(); n];
        let mut uses = vec![Vec::new(); n];
        for (bid, block) in f.iter_blocks() {
            for (idx, inst) in block.insts.iter().enumerate() {
                if let Some(d) = inst.dst() {
                    defs[d.index()].push(DefSite { block: bid, idx });
                }
                for r in inst.used_regs() {
                    uses[r.index()].push(UseSite { block: bid, idx });
                }
            }
            if let Some(rskip_ir::Operand::Reg(r)) = block.term.used_operand() {
                uses[r.index()].push(UseSite {
                    block: bid,
                    idx: usize::MAX,
                });
            }
        }
        DefUse { defs, uses }
    }

    /// All definition sites of `r`.
    pub fn defs(&self, r: Reg) -> &[DefSite] {
        &self.defs[r.index()]
    }

    /// All use sites of `r`.
    pub fn uses(&self, r: Reg) -> &[UseSite] {
        &self.uses[r.index()]
    }

    /// True if the register is written exactly once (parameters count as
    /// zero writes — callers should treat parameter registers separately).
    pub fn single_def(&self, r: Reg) -> bool {
        self.defs[r.index()].len() == 1
    }

    /// True if the register is never read.
    pub fn is_dead(&self, r: Reg) -> bool {
        self.uses[r.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{BinOp, CmpOp, ModuleBuilder, Operand, Ty};

    #[test]
    fn tracks_defs_and_uses() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![Ty::I64], Some(Ty::I64));
        let p = f.param(0);
        let x = f.bin(BinOp::Add, Ty::I64, Operand::reg(p), Operand::imm_i(1));
        let c = f.cmp(CmpOp::Gt, Ty::I64, Operand::reg(x), Operand::imm_i(0));
        let exit = f.new_block("exit");
        f.cond_br(Operand::reg(c), exit, exit);
        f.switch_to(exit);
        f.ret(Some(Operand::reg(x)));
        f.finish();
        let m = mb.finish();
        let du = DefUse::new(&m.functions[0]);

        assert!(du.defs(p).is_empty()); // parameter: no explicit def
        assert_eq!(du.uses(p).len(), 1);
        assert_eq!(du.defs(x).len(), 1);
        assert_eq!(du.uses(x).len(), 2); // cmp + ret
        assert!(du.single_def(x));
        let term_use = du
            .uses(c)
            .iter()
            .find(|u| u.is_terminator())
            .expect("condbr use");
        assert_eq!(term_use.block, rskip_ir::BlockId(0));
    }

    #[test]
    fn dead_register_detection() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let dead = f.mov_new(Ty::I64, Operand::imm_i(7));
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let du = DefUse::new(&m.functions[0]);
        assert!(du.is_dead(dead));
    }
}
