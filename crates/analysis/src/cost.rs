//! Static cost estimation.
//!
//! The candidate detector filters out loops "with low computation overhead
//! (e.g., initialization)" (paper §4) using this model. Costs approximate
//! dynamic-instruction-weighted latencies; the execution substrate's
//! pipeline model uses consistent per-class latencies.

use rskip_ir::{BinOp, Inst, Ty, UnOp};

/// Coarse instruction classes shared by the cost model and the timing
/// model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Integer ALU (add/sub/logic/shift/min/max), moves, selects, compares.
    IntAlu,
    /// Integer multiplication.
    IntMul,
    /// Integer division / remainder.
    IntDiv,
    /// Floating-point add/sub/min/max/abs/neg.
    FpAdd,
    /// Floating-point multiplication.
    FpMul,
    /// Floating-point division.
    FpDiv,
    /// Square root.
    FpSqrt,
    /// Transcendentals (`exp`, `log`).
    FpTranscendental,
    /// Conversions between int and float, floor.
    FpConvert,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Direct call (argument setup + control transfer).
    Call,
    /// Runtime intrinsic (cost charged separately by the runtime).
    Intrinsic,
}

impl InstClass {
    /// Classifies an instruction.
    pub fn of(inst: &Inst) -> InstClass {
        match inst {
            Inst::Mov { .. } | Inst::Cmp { .. } | Inst::Select { .. } => InstClass::IntAlu,
            Inst::Bin { ty, op, .. } => match (ty, op) {
                (Ty::I64, BinOp::Mul) => InstClass::IntMul,
                (Ty::I64, BinOp::Div | BinOp::Rem) => InstClass::IntDiv,
                (Ty::I64, _) => InstClass::IntAlu,
                (Ty::F64, BinOp::Mul) => InstClass::FpMul,
                (Ty::F64, BinOp::Div | BinOp::Rem) => InstClass::FpDiv,
                (Ty::F64, _) => InstClass::FpAdd,
            },
            Inst::Un { ty, op, .. } => match op {
                UnOp::Sqrt => InstClass::FpSqrt,
                UnOp::Exp | UnOp::Log => InstClass::FpTranscendental,
                UnOp::IntToFloat | UnOp::FloatToInt | UnOp::Floor => InstClass::FpConvert,
                UnOp::Neg | UnOp::Abs => {
                    if *ty == Ty::F64 {
                        InstClass::FpAdd
                    } else {
                        InstClass::IntAlu
                    }
                }
                UnOp::Not => InstClass::IntAlu,
            },
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Call { .. } => InstClass::Call,
            Inst::IntrinsicCall { .. } => InstClass::Intrinsic,
        }
    }
}

/// Per-class cost weights for static estimation.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Trip-count estimate used for loops whose trip count is not a
    /// compile-time constant.
    pub default_trip: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { default_trip: 16 }
    }
}

impl CostModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The static cost of one instruction (latency-weighted units).
    pub fn inst_cost(&self, inst: &Inst) -> f64 {
        self.class_cost(InstClass::of(inst))
    }

    /// Cost of an instruction class.
    pub fn class_cost(&self, class: InstClass) -> f64 {
        match class {
            InstClass::IntAlu => 1.0,
            InstClass::IntMul => 3.0,
            InstClass::IntDiv => 12.0,
            InstClass::FpAdd => 3.0,
            InstClass::FpMul => 4.0,
            InstClass::FpDiv => 14.0,
            InstClass::FpSqrt => 14.0,
            InstClass::FpTranscendental => 20.0,
            InstClass::FpConvert => 2.0,
            InstClass::Load => 3.0,
            InstClass::Store => 1.0,
            InstClass::Call => 4.0,
            InstClass::Intrinsic => 0.0, // charged by the runtime model
        }
    }

    /// Cost of a straight-line instruction sequence.
    pub fn seq_cost<'a>(&self, insts: impl IntoIterator<Item = &'a Inst>) -> f64 {
        insts.into_iter().map(|i| self.inst_cost(i)).sum()
    }

    /// One-iteration cost of a function body, counting nested loops at
    /// `trip` iterations each (recursively via the supplied per-loop trip
    /// counts).
    pub fn loop_body_cost(
        &self,
        f: &rskip_ir::Function,
        forest: &crate::LoopForest,
        loop_idx: usize,
    ) -> f64 {
        let lp = &forest.loops()[loop_idx];
        // Blocks directly in this loop (not in any child).
        let child_blocks: std::collections::BTreeSet<_> = forest
            .children(loop_idx)
            .iter()
            .flat_map(|&c| forest.loops()[c].blocks.iter().copied())
            .collect();
        let mut cost = 0.0;
        for &b in &lp.blocks {
            if child_blocks.contains(&b) {
                continue;
            }
            cost += self.seq_cost(&f.block(b).insts);
            cost += 1.0; // terminator
        }
        for &c in forest.children(loop_idx) {
            let trips = forest.loops()[c].trip_count.unwrap_or(self.default_trip) as f64;
            cost += trips * self.loop_body_cost(f, forest, c);
        }
        cost
    }

    /// Whole-function static cost, one pass over all blocks (no loop
    /// weighting). Used for the call-pattern threshold: "the user function
    /// call that has the number of instructions above threshold" (paper §4).
    pub fn function_cost(&self, f: &rskip_ir::Function) -> f64 {
        f.blocks.iter().map(|b| self.seq_cost(&b.insts) + 1.0).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rskip_ir::{ModuleBuilder, Operand, Reg};

    #[test]
    fn classifies_instructions() {
        let mul = Inst::Bin {
            ty: Ty::F64,
            op: BinOp::Mul,
            dst: Reg(0),
            lhs: Operand::imm_f(1.0),
            rhs: Operand::imm_f(2.0),
        };
        assert_eq!(InstClass::of(&mul), InstClass::FpMul);
        let exp = Inst::Un {
            ty: Ty::F64,
            op: UnOp::Exp,
            dst: Reg(0),
            src: Operand::imm_f(1.0),
        };
        assert_eq!(InstClass::of(&exp), InstClass::FpTranscendental);
        let ld = Inst::Load {
            ty: Ty::I64,
            dst: Reg(0),
            addr: Operand::imm_i(0),
        };
        assert_eq!(InstClass::of(&ld), InstClass::Load);
    }

    #[test]
    fn transcendental_costs_dominate_alu() {
        let m = CostModel::new();
        assert!(m.class_cost(InstClass::FpTranscendental) > 10.0 * m.class_cost(InstClass::IntAlu));
    }

    #[test]
    fn nested_loop_cost_multiplies_by_trip() {
        use rskip_ir::{CmpOp, Ty};
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f", vec![], None);
        let entry = f.entry_block();
        let oh = f.new_block("oh");
        let ob = f.new_block("ob");
        let ih = f.new_block("ih");
        let ib = f.new_block("ib");
        let ol = f.new_block("ol");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let k = f.def_reg(Ty::I64, "k");
        let acc = f.def_reg(Ty::F64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.br(oh);
        f.switch_to(oh);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(8));
        f.cond_br(Operand::reg(c), ob, exit);
        f.switch_to(ob);
        f.mov(k, Operand::imm_i(0));
        f.mov(acc, Operand::imm_f(0.0));
        f.br(ih);
        f.switch_to(ih);
        let c2 = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(k), Operand::imm_i(100));
        f.cond_br(Operand::reg(c2), ib, ol);
        f.switch_to(ib);
        f.bin_into(
            acc,
            BinOp::Mul,
            Ty::F64,
            Operand::reg(acc),
            Operand::imm_f(1.01),
        );
        f.bin_into(k, BinOp::Add, Ty::I64, Operand::reg(k), Operand::imm_i(1));
        f.br(ih);
        f.switch_to(ol);
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(oh);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let func = &m.functions[0];
        let cfg = crate::Cfg::new(func);
        let dom = crate::DomTree::new(func, &cfg);
        let forest = crate::LoopForest::new(func, &cfg, &dom);
        let model = CostModel::new();
        let outer_idx = forest.loops().iter().position(|l| l.depth == 0).unwrap();
        let cost = model.loop_body_cost(func, &forest, outer_idx);
        // Inner loop runs 100 times with an FpMul (4.0) inside; the outer
        // body alone is a handful of units. The weighted cost must clearly
        // reflect the ×100 factor.
        assert!(cost > 400.0, "cost = {cost}");
        assert!(cost < 2000.0, "cost = {cost}");
    }
}
