//! # rskip-analysis — static analyses over the RSkip IR
//!
//! The compiler-side half of the RSkip system (paper §3: "the compiler
//! conducts a thorough static analysis (e.g., def-use chain) and detects
//! optimization candidates"). The protection passes in `rskip-passes`
//! consume these analyses:
//!
//! * [`Cfg`] — predecessor/successor maps and reverse postorder.
//! * [`DomTree`] — dominator tree (Cooper–Harvey–Kennedy iteration).
//! * [`LoopForest`] — natural loops from back edges, with nesting, exits,
//!   primary induction variables and static trip counts.
//! * [`DefUse`] — def-use chains per function.
//! * [`Liveness`] — block-level live-in/live-out register sets.
//! * [`CostModel`] — the static cost estimation that filters cheap loops
//!   out of the candidate set (paper §4: "filtered out by the static
//!   analysis with the cost estimation").
//! * [`find_candidates`] — detection of prediction-protection target loops:
//!   stores of expensively-computed values, where the value is produced by
//!   an inner reduction loop (paper Fig. 4b) or a pure user function call
//!   (paper Fig. 4a).
//! * [`Purity`] — interprocedural side-effect inference
//!   (`Pure < ReadOnly < Impure` fixpoint); [`memoization_blockers`]
//!   explains *why* a body is not memoizable.
//! * [`lint_module`] / [`lint_memoized_body`] — `rskip-lint`: the
//!   protection-coverage verifier that re-derives replica classes from the
//!   transformed IR and diagnoses every store, branch, region exit or
//!   return not dominated by a vote/check as a typed unprotected window
//!   (see `DESIGN.md` §4.9).
//! * `rskip-vuln` — the compositional vulnerability analysis
//!   (see `DESIGN.md` §4.14): [`SectionMap`] partitions transformed IR
//!   into injection sections along region/check/loop boundaries with
//!   per-section content hashes, [`VulnAnalysis`] proves fault sites
//!   statically benign (dead, overwritten-before-use, masked) per fault
//!   model, and [`compose`] folds per-section injection profiles into
//!   whole-program SDC/protection estimates with Wilson intervals.

#![deny(missing_docs)]

mod candidates;
mod cfg;
mod compose;
mod cost;
mod coverage;
mod defuse;
mod dom;
mod liveness;
mod loops;
mod purity;
mod sections;
mod slice;
mod vuln;

pub use candidates::{find_candidates, CandidateKind, CandidateLoop, DetectConfig};
pub use cfg::Cfg;
pub use compose::{compose, ComposedEstimate, ComposedRate, SectionProfile};
pub use cost::{CostModel, InstClass};
pub use coverage::{
    lint_memoized_body, lint_module, CoverageDiag, CoverageKind, CoverageMap, CoverageReport,
    FunctionCoverage, ValidationModel,
};
pub use defuse::{DefSite, DefUse, UseSite};
pub use dom::DomTree;
pub use liveness::Liveness;
pub use loops::{InductionVar, Loop, LoopForest};
pub use purity::{memoization_blockers, Effect, Purity};
pub use sections::{Section, SectionKind, SectionMap};
pub use slice::{BackwardSlice, SliceError};
pub use vuln::{FuncVuln, VulnAnalysis};
