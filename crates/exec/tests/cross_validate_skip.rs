//! Cross-validation of `rskip-lint`'s *per-model* coverage claims against
//! exhaustive fault enumeration, mirroring `tests/cross_validate.rs` for
//! the two fault models the paper's SEU campaign never exercises:
//!
//! 1. every instruction the linter claims skip-covered must, when it
//!    retires as a bubble, leave the run masked or detected — an SDC
//!    under a claimed skip is a linter (or pass) bug;
//! 2. multi-bit bursts ride the same register claims as single-bit SEUs
//!    (the recognizers are value-agnostic), so a claimed-covered burst
//!    must be equally harmless;
//! 3. a hand-broken module must be witnessed by an undetected skip
//!    corruption, so the contract is falsifiable in both directions.

use rskip_analysis::{lint_module, ValidationModel};
use rskip_exec::{enumerate_faults, ExecConfig, FaultModel, NoopHooks, OutcomeClass};
use rskip_ir::{BinOp, CmpOp, Inst, Module, ModuleBuilder, Operand, Reg, Ty, Value, Verifier};
use rskip_passes::{apply_swift, apply_swift_r};

/// Burst window starts swept per (boundary, register); the enumerator
/// clamps starts so the window fits in 64 bits.
const STARTS: [u32; 5] = [0, 1, 7, 31, 62];

const MAX_BOUNDARIES: u64 = 4096;

fn exec_config() -> ExecConfig {
    ExecConfig {
        // A corrupted loop counter can spin; bound each probe run.
        step_limit: 100_000,
        ..ExecConfig::default()
    }
}

/// The same micro workload as `cross_validate.rs`: sum five array
/// elements into an output cell.
fn micro_module() -> Module {
    let mut mb = ModuleBuilder::new("micro");
    let a = mb.global_init(
        "a",
        Ty::I64,
        [3, 1, 4, 1, 5].into_iter().map(Value::I).collect(),
    );
    let out = mb.global_zeroed("out", Ty::I64, 1);

    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    let header = f.new_block("header");
    let body = f.new_block("body");
    let exit = f.new_block("exit");
    let i = f.def_reg(Ty::I64, "i");
    let s = f.def_reg(Ty::I64, "s");

    f.switch_to(entry);
    f.mov(i, Operand::imm_i(0));
    f.mov(s, Operand::imm_i(0));
    f.br(header);

    f.switch_to(header);
    let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(5));
    f.cond_br(Operand::reg(c), body, exit);

    f.switch_to(body);
    let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(a), Operand::reg(i));
    let v = f.load(Ty::I64, Operand::reg(addr));
    f.bin_into(s, BinOp::Add, Ty::I64, Operand::reg(s), Operand::reg(v));
    f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
    f.br(header);

    f.switch_to(exit);
    f.store(Ty::I64, Operand::global(out), Operand::reg(s));
    f.ret(None);
    f.finish();
    mb.finish()
}

/// Direction 1 for skips: no claimed skip-covered bubble may end in
/// silent corruption.
fn assert_claimed_skips_harmless(module: &Module, model: ValidationModel) {
    Verifier::new(module).verify().expect("module verifies");
    let report = lint_module(module, model);
    assert!(report.is_clean(), "protected micro module must lint clean");
    assert!(report.map.skip_claims() > 0, "skip-coverage map is empty");

    let en = enumerate_faults(
        module,
        "main",
        &[],
        &exec_config(),
        || NoopHooks,
        FaultModel::InstructionSkip,
        &[],
        MAX_BOUNDARIES,
    )
    .expect("enumeration runs");
    assert!(!en.probes.is_empty(), "skip enumeration produced no probes");

    let mut claimed = 0usize;
    for p in &en.probes {
        if !report.map.is_skip_covered(&p.function, p.block, p.ip) {
            continue;
        }
        claimed += 1;
        assert!(
            matches!(p.outcome, OutcomeClass::Correct | OutcomeClass::Detected),
            "claimed-covered skip escaped: {:?} at {}:{}[{}]",
            p.outcome,
            p.function,
            p.block.0,
            p.ip,
        );
    }
    // The sweep must actually exercise claimed instructions, or the
    // assertion above is vacuous.
    assert!(
        claimed > 0,
        "no enumerated skip ever hit a claimed-covered instruction"
    );
}

#[test]
fn swift_r_claimed_skips_are_masked() {
    let mut m = micro_module();
    apply_swift_r(&mut m);
    assert_claimed_skips_harmless(&m, ValidationModel::Vote);
}

#[test]
fn swift_claimed_skips_are_masked_or_detected() {
    let mut m = micro_module();
    apply_swift(&mut m);
    assert_claimed_skips_harmless(&m, ValidationModel::Detect);
}

/// Direction 1 for bursts: the register claims are value-agnostic, so a
/// claimed-covered multi-bit burst must be as harmless as a single flip.
#[test]
fn swift_r_claimed_bursts_are_masked() {
    let mut m = micro_module();
    apply_swift_r(&mut m);
    let report = lint_module(&m, ValidationModel::Vote);
    assert!(report.is_clean());

    let en = enumerate_faults(
        &m,
        "main",
        &[],
        &exec_config(),
        || NoopHooks,
        FaultModel::MultiBitBurst { width: 4 },
        &STARTS,
        MAX_BOUNDARIES,
    )
    .expect("enumeration runs");

    let mut claimed = 0usize;
    for p in &en.probes {
        let Some(reg) = p.reg() else { continue };
        if !report.map.is_covered(&p.function, p.block, p.ip, reg) {
            continue;
        }
        claimed += 1;
        assert!(
            matches!(p.outcome, OutcomeClass::Correct | OutcomeClass::Detected),
            "claimed-covered burst escaped: {:?} at {}:{}[{}] {:?}",
            p.outcome,
            p.function,
            p.block.0,
            p.ip,
            p.kind,
        );
    }
    assert!(
        claimed > en.probes.len() / 10,
        "only {claimed} of {} burst probes hit claimed-covered state",
        en.probes.len()
    );
}

/// Rewrites the store of the sum to consume a raw replica instead of the
/// majority-vote result (same breakage as `cross_validate.rs`). Returns
/// the raw register now feeding the store.
fn unvote_one_store(module: &mut Module, func: &str) -> Reg {
    let f = module
        .functions
        .iter_mut()
        .find(|f| f.name == func)
        .expect("function exists");
    let mut vote_arm: Vec<(Reg, Operand)> = Vec::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Inst::Select { dst, on_true, .. } = *inst {
                vote_arm.push((dst, on_true));
            }
        }
    }
    for b in f.blocks.iter_mut() {
        for inst in b.insts.iter_mut() {
            if let Inst::Store { value, .. } = inst {
                if let Operand::Reg(v) = *value {
                    if let Some((_, arm)) = vote_arm.iter().find(|(d, _)| *d == v) {
                        *value = *arm;
                        if let Operand::Reg(raw) = *arm {
                            return raw;
                        }
                    }
                }
            }
        }
    }
    panic!("no voted store found to break");
}

/// Direction 2: the dropped-vote window must be witnessed by an
/// *undetected skip* — some bubble leaves a stale value that reaches the
/// output unrepaired. The skip contract is falsifiable, not vacuous.
#[test]
fn dropped_vote_window_is_witnessed_by_skip_sdc() {
    let mut m = micro_module();
    apply_swift_r(&mut m);
    unvote_one_store(&mut m, "main");
    Verifier::new(&m)
        .verify()
        .expect("broken module still verifies");

    let report = lint_module(&m, ValidationModel::Vote);
    assert!(!report.is_clean(), "dropped vote must be diagnosed");

    let en = enumerate_faults(
        &m,
        "main",
        &[],
        &exec_config(),
        || NoopHooks,
        FaultModel::InstructionSkip,
        &[],
        MAX_BOUNDARIES,
    )
    .expect("enumeration runs");

    assert!(
        en.sdc_probes().next().is_some(),
        "no undetected skip corruption ever witnessed the dropped-vote window"
    );
}
