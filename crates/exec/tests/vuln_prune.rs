//! Cross-validation of `rskip-vuln`'s static fault-liveness analysis
//! against exhaustive fault enumeration, plus the pruned-universe
//! accounting contract:
//!
//! 1. **Pruning soundness** (direction 1): every fault case the static
//!    analysis classifies benign — a flip in a dead or masked register
//!    bit, a burst confined to benign bits, a skip of a pure dead
//!    producer — must enumerate as `Correct` under every fault model.
//!    One SDC under a claimed-benign case is an analysis bug.
//! 2. **Universe accounting**: `enumerate_faults_pruned` with the
//!    static filter must answer `pruned` cases without execution and
//!    probe the rest, with `pruned + probes == ` the unpruned sweep's
//!    probe count — pruning may never silently drop or duplicate cases.
//! 3. **Outcome preservation**: since pruned cases are exactly the
//!    statically-benign (⇒ `Correct`) ones, the pruned sweep must see
//!    the same SDC set as the unpruned sweep.

use rskip_analysis::VulnAnalysis;
use rskip_exec::{
    enumerate_faults, enumerate_faults_pruned, ExactFaultKind, ExecConfig, FaultModel, NoopHooks,
    OutcomeClass,
};
use rskip_ir::{BinOp, BlockId, CmpOp, Module, ModuleBuilder, Operand, Ty, Value, Verifier};
use rskip_passes::apply_swift_r;

/// Bit positions swept per (boundary, register): low bits corrupt values
/// by small deltas, middle and high bits by large ones. 31 and 62 sit
/// above the micro workload's 0xFF mask, so masked-benign cases are
/// exercised alongside live ones.
const BITS: [u32; 5] = [0, 1, 7, 31, 62];

/// Short enough that `boundaries × live regs × bits` runs stay cheap.
const MAX_BOUNDARIES: u64 = 4096;

fn exec_config() -> ExecConfig {
    ExecConfig {
        // A corrupted loop counter can spin; bound each probe run.
        step_limit: 100_000,
        ..ExecConfig::default()
    }
}

/// A micro workload sized for exhaustive enumeration, with deliberate
/// statically-benign structure: a masked register (`v`, consumed only
/// through `And v, 0xFF`) and a dead pure producer (`junk`, never read).
fn micro_module() -> Module {
    let mut mb = ModuleBuilder::new("micro-vuln");
    let a = mb.global_init(
        "a",
        Ty::I64,
        [3, 1, 4, 1, 5].into_iter().map(Value::I).collect(),
    );
    let out = mb.global_zeroed("out", Ty::I64, 1);

    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    let header = f.new_block("header");
    let body = f.new_block("body");
    let exit = f.new_block("exit");
    let i = f.def_reg(Ty::I64, "i");
    let s = f.def_reg(Ty::I64, "s");

    f.switch_to(entry);
    f.mov(i, Operand::imm_i(0));
    f.mov(s, Operand::imm_i(0));
    f.br(header);

    f.switch_to(header);
    let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(5));
    f.cond_br(Operand::reg(c), body, exit);

    f.switch_to(body);
    let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(a), Operand::reg(i));
    let v = f.load(Ty::I64, Operand::reg(addr));
    // `v` is consumed only through this mask, so its bits above 0xFF are
    // statically benign while its low bits stay live.
    let m = f.bin(BinOp::And, Ty::I64, Operand::reg(v), Operand::imm_i(0xFF));
    // A dead pure producer: fully benign to flip, burst or skip.
    let _junk = f.bin(BinOp::Add, Ty::I64, Operand::reg(m), Operand::imm_i(7));
    f.bin_into(s, BinOp::Add, Ty::I64, Operand::reg(s), Operand::reg(m));
    f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
    f.br(header);

    f.switch_to(exit);
    f.store(Ty::I64, Operand::global(out), Operand::reg(s));
    f.ret(None);
    f.finish();
    mb.finish()
}

fn all_models() -> [FaultModel; 3] {
    [
        FaultModel::SingleBitSeu,
        FaultModel::InstructionSkip,
        FaultModel::MultiBitBurst { width: 4 },
    ]
}

/// The static benignity verdict for one enumerated fault case.
fn is_benign(
    vuln: &VulnAnalysis,
    func: &str,
    block: BlockId,
    ip: usize,
    kind: &ExactFaultKind,
) -> bool {
    let fv = vuln.func(func).expect("enumerated function is analyzed");
    match *kind {
        ExactFaultKind::BitFlip { reg, bit } => fv.benign_flip(block, ip, reg, bit),
        ExactFaultKind::Burst { reg, start, width } => {
            fv.benign_burst(block, ip, reg, start, width)
        }
        ExactFaultKind::Skip => fv.benign_skip(block, ip),
    }
}

/// Direction 1 on one module: exhaustively sweep every model and demand
/// that each statically-benign case probes `Correct`.
fn assert_benign_cases_correct(module: &Module) {
    Verifier::new(module).verify().expect("module verifies");
    let vuln = VulnAnalysis::analyze(module);
    for model in all_models() {
        let en = enumerate_faults(
            module,
            "main",
            &[],
            &exec_config(),
            || NoopHooks,
            model,
            &BITS,
            MAX_BOUNDARIES,
        )
        .expect("enumeration runs");
        let mut benign = 0usize;
        for p in &en.probes {
            if is_benign(&vuln, &p.function, p.block, p.ip, &p.kind) {
                benign += 1;
                assert_eq!(
                    p.outcome,
                    OutcomeClass::Correct,
                    "statically-benign case escaped under {model:?}: \
                     {}:{}[{}] {:?} -> {:?}",
                    p.function,
                    p.block.0,
                    p.ip,
                    p.kind,
                    p.outcome,
                );
            }
        }
        assert!(
            benign > 0,
            "sweep never exercised a statically-benign case under {model:?} — \
             the soundness assertion is vacuous"
        );
    }
}

#[test]
fn statically_benign_cases_enumerate_correct_unprotected() {
    assert_benign_cases_correct(&micro_module());
}

#[test]
fn statically_benign_cases_enumerate_correct_swift_r() {
    let mut m = micro_module();
    apply_swift_r(&mut m);
    assert_benign_cases_correct(&m);
}

#[test]
fn pruned_plus_probed_equals_unpruned_universe() {
    let module = micro_module();
    let vuln = VulnAnalysis::analyze(&module);
    for model in all_models() {
        let unpruned = enumerate_faults(
            &module,
            "main",
            &[],
            &exec_config(),
            || NoopHooks,
            model,
            &BITS,
            MAX_BOUNDARIES,
        )
        .expect("unpruned enumeration runs");
        assert_eq!(unpruned.pruned, 0, "no filter, nothing pruned");

        let pruned = enumerate_faults_pruned(
            &module,
            "main",
            &[],
            &exec_config(),
            || NoopHooks,
            model,
            &BITS,
            MAX_BOUNDARIES,
            |func, block, ip, kind| is_benign(&vuln, func, block, ip, kind),
        )
        .expect("pruned enumeration runs");

        // Universe accounting: every case is either probed or pruned.
        assert_eq!(
            pruned.pruned + pruned.probes.len() as u64,
            unpruned.probes.len() as u64,
            "pruning dropped or duplicated cases under {model:?}"
        );
        assert!(
            pruned.pruned > 0,
            "the static filter pruned nothing under {model:?}"
        );
        assert_eq!(pruned.boundaries, unpruned.boundaries);

        // Outcome preservation: pruned cases are Correct by soundness,
        // so both sweeps must witness the identical SDC set.
        let sdc = |en: &rskip_exec::Enumeration| {
            let mut v: Vec<_> = en
                .sdc_probes()
                .map(|p| (p.at, p.function.clone(), format!("{:?}", p.kind)))
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            sdc(&pruned),
            sdc(&unpruned),
            "pruning changed the witnessed SDC set under {model:?}"
        );
    }
}
