//! Cross-validation of `rskip-lint`'s static coverage claims against
//! exhaustive fault enumeration (the issue's two-directional contract):
//!
//! 1. every fault the linter claims covered must be masked or detected —
//!    an SDC under a claimed-covered probe is a linter (or pass) bug;
//! 2. a statically-reported unprotected window must be witnessed by at
//!    least one undetected corruption — a diagnostic nothing can trigger
//!    dynamically would be a false positive.

use rskip_analysis::{lint_module, CoverageKind, ValidationModel};
use rskip_exec::{enumerate_flips, ExecConfig, NoopHooks, OutcomeClass};
use rskip_ir::{BinOp, CmpOp, Inst, Module, ModuleBuilder, Operand, Reg, Ty, Value, Verifier};
use rskip_passes::{apply_swift, apply_swift_r};

/// Bit positions swept per (boundary, register): low bits corrupt values
/// and addresses by small deltas, middle and high bits by large ones —
/// enough to witness every failure mode without 64× the runtime.
const BITS: [u32; 5] = [0, 1, 7, 31, 62];

/// Short enough that `boundaries × live regs × bits` runs stay cheap.
const MAX_BOUNDARIES: u64 = 4096;

fn exec_config() -> ExecConfig {
    ExecConfig {
        // A corrupted loop counter can spin; bound each probe run.
        step_limit: 100_000,
        ..ExecConfig::default()
    }
}

/// A micro workload: sum five array elements into an output cell.
/// Small enough for exhaustive enumeration, real enough to exercise
/// loads, stores, branches and loop-carried state.
fn micro_module() -> Module {
    let mut mb = ModuleBuilder::new("micro");
    let a = mb.global_init(
        "a",
        Ty::I64,
        [3, 1, 4, 1, 5].into_iter().map(Value::I).collect(),
    );
    let out = mb.global_zeroed("out", Ty::I64, 1);

    let mut f = mb.function("main", vec![], None);
    let entry = f.entry_block();
    let header = f.new_block("header");
    let body = f.new_block("body");
    let exit = f.new_block("exit");
    let i = f.def_reg(Ty::I64, "i");
    let s = f.def_reg(Ty::I64, "s");

    f.switch_to(entry);
    f.mov(i, Operand::imm_i(0));
    f.mov(s, Operand::imm_i(0));
    f.br(header);

    f.switch_to(header);
    let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(5));
    f.cond_br(Operand::reg(c), body, exit);

    f.switch_to(body);
    let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(a), Operand::reg(i));
    let v = f.load(Ty::I64, Operand::reg(addr));
    f.bin_into(s, BinOp::Add, Ty::I64, Operand::reg(s), Operand::reg(v));
    f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
    f.br(header);

    f.switch_to(exit);
    f.store(Ty::I64, Operand::global(out), Operand::reg(s));
    f.ret(None);
    f.finish();
    mb.finish()
}

/// Direction 1 for one protected build: no claimed-covered probe may end
/// in silent corruption (or any outcome other than masked/detected).
fn assert_covered_faults_harmless(module: &Module, model: ValidationModel) {
    Verifier::new(module).verify().expect("module verifies");
    let report = lint_module(module, model);
    assert!(
        report.is_clean(),
        "protected micro module must lint clean:\n{}",
        report
            .diags
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );
    assert!(report.map.claims() > 0, "coverage map is empty");

    let en = enumerate_flips(
        module,
        "main",
        &[],
        &exec_config(),
        || NoopHooks,
        &BITS,
        MAX_BOUNDARIES,
    )
    .expect("enumeration runs");

    let mut claimed = 0usize;
    for p in &en.probes {
        let Some(reg) = p.reg() else { continue };
        if !report.map.is_covered(&p.function, p.block, p.ip, reg) {
            continue;
        }
        claimed += 1;
        assert!(
            matches!(p.outcome, OutcomeClass::Correct | OutcomeClass::Detected),
            "claimed-covered flip escaped: {:?} at {}:{}[{}] {:?} -> {}",
            p.outcome,
            p.function,
            p.block.0,
            p.ip,
            p.kind,
            p.outcome,
        );
    }
    // The sweep must actually have exercised the claims, or the assertion
    // above is vacuous.
    assert!(
        claimed > en.probes.len() / 10,
        "only {claimed} of {} probes hit claimed-covered state",
        en.probes.len()
    );
}

#[test]
fn swift_r_covered_faults_are_masked() {
    let mut m = micro_module();
    apply_swift_r(&mut m);
    assert_covered_faults_harmless(&m, ValidationModel::Vote);
}

#[test]
fn swift_covered_faults_are_masked_or_detected() {
    let mut m = micro_module();
    apply_swift(&mut m);
    assert_covered_faults_harmless(&m, ValidationModel::Detect);
}

/// Under SWIFT (detection only), some covered fault must actually take the
/// detection path — otherwise the Detect handler is dead code and the
/// cross-validation proves less than it claims.
#[test]
fn swift_detection_path_is_exercised() {
    let mut m = micro_module();
    apply_swift(&mut m);
    let en = enumerate_flips(
        &m,
        "main",
        &[],
        &exec_config(),
        || NoopHooks,
        &BITS,
        MAX_BOUNDARIES,
    )
    .expect("enumeration runs");
    assert!(
        en.probes
            .iter()
            .any(|p| p.outcome == OutcomeClass::Detected),
        "no probe ever reached the SWIFT detect handler"
    );
}

/// Rewrites the store of `%s` in `func` to consume a raw replica instead
/// of the majority-vote result: the classic "skipped vote before store"
/// pass bug. Returns the raw register now feeding the store.
fn unvote_one_store(module: &mut Module, func: &str) -> Reg {
    let f = module
        .functions
        .iter_mut()
        .find(|f| f.name == func)
        .expect("function exists");
    // Map every vote-select destination to its first arm (the original
    // replica the vote would have repaired).
    let mut vote_arm: Vec<(Reg, Operand)> = Vec::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Inst::Select { dst, on_true, .. } = *inst {
                vote_arm.push((dst, on_true));
            }
        }
    }
    for b in f.blocks.iter_mut() {
        for inst in b.insts.iter_mut() {
            if let Inst::Store { value, .. } = inst {
                if let Operand::Reg(v) = *value {
                    if let Some((_, arm)) = vote_arm.iter().find(|(d, _)| *d == v) {
                        *value = *arm;
                        if let Operand::Reg(raw) = *arm {
                            return raw;
                        }
                    }
                }
            }
        }
    }
    panic!("no voted store found to break");
}

/// Direction 2: a hand-broken module (vote dropped before the store) must
/// both (a) produce the exact static diagnostic and (b) be witnessed by at
/// least one undetected corruption in that window.
#[test]
fn dropped_vote_window_is_witnessed_by_sdc() {
    let mut m = micro_module();
    apply_swift_r(&mut m);
    let raw = unvote_one_store(&mut m, "main");
    Verifier::new(&m)
        .verify()
        .expect("broken module still verifies");

    let report = lint_module(&m, ValidationModel::Vote);
    assert!(!report.is_clean(), "dropped vote must be diagnosed");
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.kind == CoverageKind::UnprotectedStoreValue && d.loc.function == "main"),
        "expected an unprotected-store-value diagnostic, got:\n{}",
        report
            .diags
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );

    let en = enumerate_flips(
        &m,
        "main",
        &[],
        &exec_config(),
        || NoopHooks,
        &BITS,
        MAX_BOUNDARIES,
    )
    .expect("enumeration runs");

    // The window is real: some flip of the raw (unvoted) register slips
    // through to the output unrepaired and undetected.
    assert!(
        en.sdc_probes().any(|p| p.reg() == Some(raw)),
        "no undetected corruption ever witnessed the dropped-vote window"
    );
}
