//! Pre-decoded module representation: the interpreter's executable form.
//!
//! [`Decoded`] is built once per [`Module`] and turns every name- or
//! id-keyed reference into a dense index so the interpreter's hot loop is
//! pure array indexing:
//!
//! * call targets become function indices (the `HashMap<&str, usize>`
//!   lookup and its `String` error clone happen at decode time, not per
//!   call);
//! * block targets become `u32` block indices;
//! * each instruction carries its pre-computed [`OpClass`] so the timing
//!   model never re-classifies;
//! * per-function register counts and zero-initial register images are
//!   precomputed, so call frames are a `memcpy` from a pooled allocation.
//!
//! A `Decoded` is immutable and [`Sync`]: campaign drivers build it once
//! and share it by reference across worker threads, each thread running
//! its own [`crate::Machine`] over it.

use std::collections::HashMap;

use rskip_ir::{BinOp, CmpOp, Inst, Intrinsic, Module, Operand, Reg, Terminator, Ty, UnOp, Value};

use crate::pipeline::{class_of, OpClass};

/// A module lowered to the interpreter's dense executable form.
///
/// Build one with [`Decoded::new`] and run it either through
/// [`crate::Machine::new`] (which decodes internally) or
/// [`crate::Machine::from_decoded`] (which shares a prebuilt decode, e.g.
/// across campaign worker threads).
pub struct Decoded<'m> {
    pub(crate) module: &'m Module,
    pub(crate) funcs: Box<[DFunc]>,
    /// First memory cell of each global.
    pub(crate) global_base: Box<[i64]>,
    /// Name → function index; used only for cold entry-point lookup.
    pub(crate) fn_index: HashMap<&'m str, usize>,
}

pub(crate) struct DFunc {
    pub(crate) blocks: Box<[DBlock]>,
    pub(crate) n_params: usize,
    /// Zero value of every register, in order — frame initialization is a
    /// single slice copy from this image.
    pub(crate) reg_init: Box<[Value]>,
}

pub(crate) struct DBlock {
    pub(crate) insts: Box<[DStep]>,
    pub(crate) term: DTerm,
}

/// One decoded instruction plus its pre-resolved timing class.
pub(crate) struct DStep {
    pub(crate) op: DInst,
    pub(crate) class: OpClass,
}

/// Decoded instruction: same shape as [`Inst`] minus dead type fields,
/// with call targets resolved to dense indices.
pub(crate) enum DInst {
    Mov {
        dst: Reg,
        src: Operand,
    },
    Bin {
        ty: Ty,
        op: BinOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    Un {
        ty: Ty,
        op: UnOp,
        dst: Reg,
        src: Operand,
    },
    Cmp {
        ty: Ty,
        op: CmpOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    Select {
        dst: Reg,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    Load {
        dst: Reg,
        addr: Operand,
    },
    Store {
        addr: Operand,
        value: Operand,
    },
    Call {
        dst: Option<Reg>,
        target: u32,
        args: Box<[Operand]>,
    },
    /// A call whose callee did not resolve at decode time. Executing it
    /// traps with [`crate::Trap::UnknownFunction`] — the name clone moved
    /// from the per-call hot path to this cold error path.
    CallUnknown {
        name: Box<str>,
    },
    IntrinsicCall {
        dst: Option<Reg>,
        intr: Intrinsic,
        args: Box<[Operand]>,
    },
}

pub(crate) enum DTerm {
    Br(u32),
    CondBr {
        cond: Operand,
        on_true: u32,
        on_false: u32,
    },
    Ret(Option<Operand>),
}

impl<'m> Decoded<'m> {
    /// Lowers `module` to its executable form.
    pub fn new(module: &'m Module) -> Self {
        let fn_index: HashMap<&'m str, usize> = module
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();

        let mut global_base = Vec::with_capacity(module.globals.len());
        let mut total = 0i64;
        for g in &module.globals {
            global_base.push(total);
            total += g.len as i64;
        }

        let funcs = module
            .functions
            .iter()
            .map(|f| {
                let reg_init: Box<[Value]> =
                    f.regs.iter().map(|info| Value::zero(info.ty)).collect();
                let blocks = f
                    .blocks
                    .iter()
                    .map(|b| DBlock {
                        insts: b
                            .insts
                            .iter()
                            .map(|inst| decode_inst(inst, &fn_index))
                            .collect(),
                        term: decode_term(&b.term),
                    })
                    .collect();
                DFunc {
                    blocks,
                    n_params: f.params.len(),
                    reg_init,
                }
            })
            .collect();

        Decoded {
            module,
            funcs,
            global_base: global_base.into_boxed_slice(),
            fn_index,
        }
    }

    /// The module this decode was built from.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Function index by name (cold path: entry-point resolution).
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.fn_index.get(name).copied()
    }
}

fn decode_inst(inst: &Inst, fn_index: &HashMap<&str, usize>) -> DStep {
    let class = class_of(inst);
    let op = match inst {
        Inst::Mov { dst, src, .. } => DInst::Mov {
            dst: *dst,
            src: *src,
        },
        Inst::Bin {
            ty,
            op,
            dst,
            lhs,
            rhs,
        } => DInst::Bin {
            ty: *ty,
            op: *op,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Un { ty, op, dst, src } => DInst::Un {
            ty: *ty,
            op: *op,
            dst: *dst,
            src: *src,
        },
        Inst::Cmp {
            ty,
            op,
            dst,
            lhs,
            rhs,
        } => DInst::Cmp {
            ty: *ty,
            op: *op,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Select {
            dst,
            cond,
            on_true,
            on_false,
            ..
        } => DInst::Select {
            dst: *dst,
            cond: *cond,
            on_true: *on_true,
            on_false: *on_false,
        },
        Inst::Load { dst, addr, .. } => DInst::Load {
            dst: *dst,
            addr: *addr,
        },
        Inst::Store { addr, value, .. } => DInst::Store {
            addr: *addr,
            value: *value,
        },
        Inst::Call { dst, callee, args } => match fn_index.get(callee.as_str()) {
            Some(&target) => DInst::Call {
                dst: *dst,
                target: target as u32,
                args: args.as_slice().into(),
            },
            None => DInst::CallUnknown {
                name: callee.as_str().into(),
            },
        },
        Inst::IntrinsicCall { dst, intr, args } => DInst::IntrinsicCall {
            dst: *dst,
            intr: *intr,
            args: args.as_slice().into(),
        },
    };
    DStep { op, class }
}

fn decode_term(term: &Terminator) -> DTerm {
    match term {
        Terminator::Br(t) => DTerm::Br(t.0),
        Terminator::CondBr(cond, t, f) => DTerm::CondBr {
            cond: *cond,
            on_true: t.0,
            on_false: f.0,
        },
        Terminator::Ret(v) => DTerm::Ret(*v),
    }
}

impl DInst {
    /// Visits every operand this instruction reads (mirrors
    /// [`Inst::for_each_use`]).
    #[inline]
    pub(crate) fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            DInst::Mov { src, .. } | DInst::Un { src, .. } => f(*src),
            DInst::Bin { lhs, rhs, .. } | DInst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            DInst::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(*cond);
                f(*on_true);
                f(*on_false);
            }
            DInst::Load { addr, .. } => f(*addr),
            DInst::Store { addr, value } => {
                f(*addr);
                f(*value);
            }
            DInst::Call { args, .. } | DInst::IntrinsicCall { args, .. } => {
                for a in args.iter() {
                    f(*a);
                }
            }
            DInst::CallUnknown { .. } => {}
        }
    }
}
