//! Pre-decoded module representation: the interpreter's executable form.
//!
//! [`Decoded`] pairs a borrowed [`Module`] with an [`Arc`]-shared
//! [`DecodedUnit`] — the fully owned decode+fusion output. The unit turns
//! every name- or id-keyed reference into a dense index so the
//! interpreter's hot loop is pure array indexing:
//!
//! * call targets become function indices (the `HashMap<String, usize>`
//!   lookup and its `String` error clone happen at decode time, not per
//!   call);
//! * block targets become `u32` block indices;
//! * each instruction carries its pre-computed [`OpClass`] so the timing
//!   model never re-classifies;
//! * per-function register counts and zero-initial register images are
//!   precomputed, so call frames are a `memcpy` from a pooled allocation;
//! * the direct-threaded instruction stream ([`crate::threaded`]) and its
//!   superinstruction fusion overlay are built once alongside the
//!   match-dispatch form.
//!
//! Units are cached process-wide, keyed by an FNV-1a-64 content hash of
//! the printed module IR: two structurally identical modules — a campaign
//! and an experiment-engine sweep cell over the same protected build, or
//! repeated `Machine::with_config` constructions — share one decode.
//! [`decode_cache_stats`] exposes hit/miss counters so tests and benches
//! can assert exactly how many decodes a workload performed.
//!
//! A `Decoded` is immutable and [`Sync`]: campaign drivers build it once
//! and share it by reference across worker threads, each thread running
//! its own [`crate::Machine`] over it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rskip_core::digest::fnv1a64;
use rskip_ir::{BinOp, CmpOp, Inst, Intrinsic, Module, Operand, Reg, Terminator, Ty, UnOp, Value};

use crate::pipeline::{class_of, OpClass};
use crate::threaded::ThreadedModule;

/// A module lowered to the interpreter's dense executable form.
///
/// Build one with [`Decoded::new`] and run it either through
/// [`crate::Machine::new`] (which decodes internally) or
/// [`crate::Machine::from_decoded`] (which shares a prebuilt decode, e.g.
/// across campaign worker threads).
pub struct Decoded<'m> {
    pub(crate) module: &'m Module,
    pub(crate) unit: Arc<DecodedUnit>,
}

/// The owned decode+fusion output shared through the process-wide cache.
///
/// Public only as the [`Deref`](std::ops::Deref) target of [`Decoded`];
/// all fields are crate-private.
pub struct DecodedUnit {
    pub(crate) funcs: Box<[DFunc]>,
    /// First memory cell of each global.
    pub(crate) global_base: Box<[i64]>,
    /// Name → function index; used only for cold entry-point lookup.
    pub(crate) fn_index: HashMap<String, usize>,
    /// The direct-threaded instruction stream (fusion overlay included).
    pub(crate) threaded: ThreadedModule,
}

pub(crate) struct DFunc {
    pub(crate) blocks: Box<[DBlock]>,
    pub(crate) n_params: usize,
    /// Zero value of every register, in order — frame initialization is a
    /// single slice copy from this image.
    pub(crate) reg_init: Box<[Value]>,
}

pub(crate) struct DBlock {
    pub(crate) insts: Box<[DStep]>,
    pub(crate) term: DTerm,
}

/// One decoded instruction plus its pre-resolved timing class.
pub(crate) struct DStep {
    pub(crate) op: DInst,
    pub(crate) class: OpClass,
}

/// Decoded instruction: same shape as [`Inst`] minus dead type fields,
/// with call targets resolved to dense indices.
pub(crate) enum DInst {
    Mov {
        dst: Reg,
        src: Operand,
    },
    Bin {
        ty: Ty,
        op: BinOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    Un {
        ty: Ty,
        op: UnOp,
        dst: Reg,
        src: Operand,
    },
    Cmp {
        ty: Ty,
        op: CmpOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    Select {
        dst: Reg,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    Load {
        dst: Reg,
        addr: Operand,
    },
    Store {
        addr: Operand,
        value: Operand,
    },
    Call {
        dst: Option<Reg>,
        target: u32,
        args: Box<[Operand]>,
    },
    /// A call whose callee did not resolve at decode time. Executing it
    /// traps with [`crate::Trap::UnknownFunction`] — the name clone moved
    /// from the per-call hot path to this cold error path.
    CallUnknown {
        name: Box<str>,
    },
    IntrinsicCall {
        dst: Option<Reg>,
        intr: Intrinsic,
        args: Box<[Operand]>,
    },
}

pub(crate) enum DTerm {
    Br(u32),
    CondBr {
        cond: Operand,
        on_true: u32,
        on_false: u32,
    },
    Ret(Option<Operand>),
}

/// Hit/miss counters of the process-wide decoded-unit cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups served from an already-built unit.
    pub hits: u64,
    /// Lookups that had to decode (and fuse) from scratch.
    pub misses: u64,
}

static DECODE_HITS: AtomicU64 = AtomicU64::new(0);
static DECODE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Far above any real workload's distinct-module count; on overflow the
/// cache is cleared rather than grown without bound.
const CACHE_CAP: usize = 4096;

fn unit_cache() -> &'static Mutex<HashMap<u64, Arc<DecodedUnit>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<DecodedUnit>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Snapshot of the decoded-unit cache counters.
///
/// The counters are process-global; tests that assert exact decode counts
/// should run in their own test binary (or measure deltas while no other
/// decodes are in flight).
#[must_use]
pub fn decode_cache_stats() -> DecodeCacheStats {
    DecodeCacheStats {
        hits: DECODE_HITS.load(Ordering::Relaxed),
        misses: DECODE_MISSES.load(Ordering::Relaxed),
    }
}

impl<'m> Decoded<'m> {
    /// Lowers `module` to its executable form, sharing the decode+fusion
    /// output through the process-wide content-hash cache.
    pub fn new(module: &'m Module) -> Self {
        let key = fnv1a64(rskip_ir::print_module(module).as_bytes());
        // Build under the lock: concurrent first decodes of the same
        // module must still perform exactly one decode, so the cache-count
        // assertions in tests and the engine stay deterministic.
        let mut cache = unit_cache().lock().unwrap_or_else(|e| e.into_inner());
        let unit = match cache.get(&key) {
            Some(unit) => {
                DECODE_HITS.fetch_add(1, Ordering::Relaxed);
                Arc::clone(unit)
            }
            None => {
                DECODE_MISSES.fetch_add(1, Ordering::Relaxed);
                if cache.len() >= CACHE_CAP {
                    cache.clear();
                }
                let unit = Arc::new(DecodedUnit::build(module));
                cache.insert(key, Arc::clone(&unit));
                unit
            }
        };
        Decoded { module, unit }
    }

    /// The module this decode was built from.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Function index by name (cold path: entry-point resolution).
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.unit.fn_index.get(name).copied()
    }

    /// Static superinstruction-fusion statistics of this decode.
    #[must_use]
    pub fn fusion_stats(&self) -> crate::fuse::FusionStats {
        self.unit.threaded.fusion
    }
}

impl std::ops::Deref for Decoded<'_> {
    type Target = DecodedUnit;

    fn deref(&self) -> &DecodedUnit {
        &self.unit
    }
}

impl DecodedUnit {
    fn build(module: &Module) -> Self {
        let fn_index: HashMap<String, usize> = module
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();

        let mut global_base = Vec::with_capacity(module.globals.len());
        let mut total = 0i64;
        for g in &module.globals {
            global_base.push(total);
            total += g.len as i64;
        }

        let funcs: Box<[DFunc]> = module
            .functions
            .iter()
            .map(|f| {
                let reg_init: Box<[Value]> =
                    f.regs.iter().map(|info| Value::zero(info.ty)).collect();
                let blocks = f
                    .blocks
                    .iter()
                    .map(|b| DBlock {
                        insts: b
                            .insts
                            .iter()
                            .map(|inst| decode_inst(inst, &fn_index))
                            .collect(),
                        term: decode_term(&b.term),
                    })
                    .collect();
                DFunc {
                    blocks,
                    n_params: f.params.len(),
                    reg_init,
                }
            })
            .collect();

        let threaded = crate::threaded::build(&funcs);

        DecodedUnit {
            funcs,
            global_base: global_base.into_boxed_slice(),
            fn_index,
            threaded,
        }
    }
}

fn decode_inst(inst: &Inst, fn_index: &HashMap<String, usize>) -> DStep {
    let class = class_of(inst);
    let op = match inst {
        Inst::Mov { dst, src, .. } => DInst::Mov {
            dst: *dst,
            src: *src,
        },
        Inst::Bin {
            ty,
            op,
            dst,
            lhs,
            rhs,
        } => DInst::Bin {
            ty: *ty,
            op: *op,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Un { ty, op, dst, src } => DInst::Un {
            ty: *ty,
            op: *op,
            dst: *dst,
            src: *src,
        },
        Inst::Cmp {
            ty,
            op,
            dst,
            lhs,
            rhs,
        } => DInst::Cmp {
            ty: *ty,
            op: *op,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Select {
            dst,
            cond,
            on_true,
            on_false,
            ..
        } => DInst::Select {
            dst: *dst,
            cond: *cond,
            on_true: *on_true,
            on_false: *on_false,
        },
        Inst::Load { dst, addr, .. } => DInst::Load {
            dst: *dst,
            addr: *addr,
        },
        Inst::Store { addr, value, .. } => DInst::Store {
            addr: *addr,
            value: *value,
        },
        Inst::Call { dst, callee, args } => match fn_index.get(callee.as_str()) {
            Some(&target) => DInst::Call {
                dst: *dst,
                target: target as u32,
                args: args.as_slice().into(),
            },
            None => DInst::CallUnknown {
                name: callee.as_str().into(),
            },
        },
        Inst::IntrinsicCall { dst, intr, args } => DInst::IntrinsicCall {
            dst: *dst,
            intr: *intr,
            args: args.as_slice().into(),
        },
    };
    DStep { op, class }
}

fn decode_term(term: &Terminator) -> DTerm {
    match term {
        Terminator::Br(t) => DTerm::Br(t.0),
        Terminator::CondBr(cond, t, f) => DTerm::CondBr {
            cond: *cond,
            on_true: t.0,
            on_false: f.0,
        },
        Terminator::Ret(v) => DTerm::Ret(*v),
    }
}

impl DInst {
    /// Visits every operand this instruction reads (mirrors
    /// [`Inst::for_each_use`]).
    #[inline]
    pub(crate) fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            DInst::Mov { src, .. } | DInst::Un { src, .. } => f(*src),
            DInst::Bin { lhs, rhs, .. } | DInst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            DInst::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(*cond);
                f(*on_true);
                f(*on_false);
            }
            DInst::Load { addr, .. } => f(*addr),
            DInst::Store { addr, value } => {
                f(*addr);
                f(*value);
            }
            DInst::Call { args, .. } | DInst::IntrinsicCall { args, .. } => {
                for a in args.iter() {
                    f(*a);
                }
            }
            DInst::CallUnknown { .. } => {}
        }
    }
}
