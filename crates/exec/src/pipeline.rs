//! Superscalar timing model: out-of-order issue over a bounded window,
//! per-class functional-unit ports, a small direct-mapped data cache and a
//! 2-bit branch predictor.
//!
//! A dynamic-trace model, deliberately not a µarch simulator. It captures
//! the architectural effects the paper's §7.1 builds on:
//!
//! 1. The unprotected baseline is partially *latency-bound* (dependence
//!    chains, cache misses), leaving issue slots idle. Duplicated
//!    instructions are mutually independent and their extra loads hit the
//!    lines the original copy just fetched — so instruction-duplication
//!    schemes raise IPC ("slowdown of conventional detection techniques is
//!    reported less than 2×" thanks to "parallelism inside modern
//!    processors").
//! 2. The issue width, the FP/divider ports and the reorder window bound
//!    that hiding: tripled dynamic instructions eventually saturate the
//!    front end, and validation chains in front of stores and branches
//!    lengthen the critical path ("periodic reaching of synchronization
//!    points adds dynamic instructions with dependencies").

use std::collections::{HashMap, VecDeque};

use rskip_ir::{BinOp, Inst, Ty, UnOp};

/// Functional-unit class of one dynamic instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Simple integer ALU (add/logic/cmp/select/mov), 1-cycle.
    Alu,
    /// Pipelined integer multiplier.
    IntMul,
    /// Floating-point add/sub/min/max.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Int/float conversions, floor.
    FpCvt,
    /// Unpipelined divide/sqrt unit (int and float).
    Div,
    /// Unpipelined transcendental sequence (`exp`, `log`).
    Transcendental,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Call/return overhead.
    Call,
}

/// Classifies an instruction into its functional-unit class.
pub fn class_of(inst: &Inst) -> OpClass {
    match inst {
        Inst::Mov { .. } | Inst::Cmp { .. } | Inst::Select { .. } => OpClass::Alu,
        Inst::Bin { ty, op, .. } => match (ty, op) {
            (Ty::I64, BinOp::Mul) => OpClass::IntMul,
            (Ty::I64, BinOp::Div | BinOp::Rem) => OpClass::Div,
            (Ty::I64, _) => OpClass::Alu,
            (Ty::F64, BinOp::Mul) => OpClass::FpMul,
            (Ty::F64, BinOp::Div | BinOp::Rem) => OpClass::Div,
            (Ty::F64, _) => OpClass::FpAdd,
        },
        Inst::Un { ty, op, .. } => match op {
            UnOp::Sqrt => OpClass::Div,
            UnOp::Exp | UnOp::Log => OpClass::Transcendental,
            UnOp::IntToFloat | UnOp::FloatToInt | UnOp::Floor => OpClass::FpCvt,
            UnOp::Neg | UnOp::Abs => {
                if *ty == Ty::F64 {
                    OpClass::FpAdd
                } else {
                    OpClass::Alu
                }
            }
            UnOp::Not => OpClass::Alu,
        },
        Inst::Load { .. } => OpClass::Load,
        Inst::Store { .. } => OpClass::Store,
        Inst::Call { .. } => OpClass::Call,
        Inst::IntrinsicCall { .. } => OpClass::Alu,
    }
}

/// Result latency in cycles of one instruction (loads report the cache-hit
/// latency; the pipeline adds miss penalties from its cache model).
pub fn latency_of(inst: &Inst) -> u64 {
    latency_of_class(class_of(inst))
}

/// Result latency of a functional-unit class (cache-hit latency for
/// loads).
pub fn latency_of_class(class: OpClass) -> u64 {
    match class {
        OpClass::Alu => 1,
        OpClass::IntMul => 3,
        OpClass::FpAdd => 3,
        OpClass::FpMul => 4,
        OpClass::FpCvt => 2,
        OpClass::Div => 14,
        OpClass::Transcendental => 20,
        OpClass::Load => 3,
        OpClass::Store => 1,
        OpClass::Call => 2,
    }
}

/// Static configuration of the pipeline model.
///
/// Defaults approximate the paper's Intel Xeon E31230 (Sandy Bridge
/// class): 3-wide sustained issue, a ~48-entry effective window, one FP
/// add port, one FP mul port, two load ports, one unpipelined divider, one
/// transcendental sequencer, a small L1-like cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Sustained issue width (instructions per cycle).
    pub width: u32,
    /// Reorder-window size (instructions in flight).
    pub window: usize,
    /// Cycles lost on a branch misprediction (charged after the mispredicted
    /// condition resolves).
    pub mispredict_penalty: u64,
    /// Pipelined FP add/cvt units.
    pub fp_add_ports: u32,
    /// Pipelined FP multiply units.
    pub fp_mul_ports: u32,
    /// Load ports.
    pub load_ports: u32,
    /// Store ports.
    pub store_ports: u32,
    /// Pipelined integer multiply units.
    pub int_mul_ports: u32,
    /// Data-cache lines (direct-mapped).
    pub cache_lines: usize,
    /// Cells per cache line.
    pub cache_line_cells: usize,
    /// Extra cycles on a cache miss.
    pub cache_miss_penalty: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            width: 3,
            window: 48,
            mispredict_penalty: 10,
            fp_add_ports: 1,
            fp_mul_ports: 1,
            load_ports: 2,
            store_ports: 1,
            int_mul_ports: 1,
            cache_lines: 64,
            cache_line_cells: 8,
            cache_miss_penalty: 21,
        }
    }
}

/// The timing state.
#[derive(Clone, Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    /// Total instructions issued (front-end bandwidth floor).
    slots: u64,
    /// Fetch may not run ahead of a mispredict flush point.
    fetch_floor: u64,
    /// Completion cycles of the in-flight window (bounded length).
    rob: VecDeque<u64>,
    /// Next-free cycle per pipelined unit instance.
    fp_add_free: Vec<u64>,
    fp_mul_free: Vec<u64>,
    load_free: Vec<u64>,
    store_free: Vec<u64>,
    int_mul_free: Vec<u64>,
    /// Unpipelined units.
    div_free: u64,
    trans_free: u64,
    /// Direct-mapped cache: line index -> tag.
    cache: Vec<u64>,
    /// 2-bit predictor per static branch site.
    predictor: HashMap<u64, u8>,
    mispredicts: u64,
    last_completion: u64,
    cache_misses: u64,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline {
            config,
            slots: 0,
            fetch_floor: 0,
            rob: VecDeque::with_capacity(config.window + 1),
            fp_add_free: vec![0; config.fp_add_ports as usize],
            fp_mul_free: vec![0; config.fp_mul_ports as usize],
            load_free: vec![0; config.load_ports as usize],
            store_free: vec![0; config.store_ports as usize],
            int_mul_free: vec![0; config.int_mul_ports as usize],
            div_free: 0,
            trans_free: 0,
            cache: vec![u64::MAX; config.cache_lines],
            predictor: HashMap::new(),
            mispredicts: 0,
            last_completion: 0,
            cache_misses: 0,
        }
    }

    /// Total cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        (self.slots / u64::from(self.config.width))
            .max(self.fetch_floor)
            .max(self.last_completion)
    }

    /// Branch mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Data-cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    fn fetch_cycle(&self) -> u64 {
        let width_floor = self.slots / u64::from(self.config.width);
        let rob_floor = if self.rob.len() >= self.config.window {
            // Cannot dispatch until the oldest in-flight op completes.
            *self.rob.front().expect("window nonempty")
        } else {
            0
        };
        width_floor.max(self.fetch_floor).max(rob_floor)
    }

    fn retire(&mut self, completion: u64) {
        self.slots += 1;
        self.last_completion = self.last_completion.max(completion);
        self.rob.push_back(completion);
        if self.rob.len() > self.config.window {
            self.rob.pop_front();
        }
    }

    /// Claims the earliest-free instance of a pipelined unit at or after
    /// `t`; advances it by one cycle (initiation interval 1).
    fn claim(units: &mut [u64], t: u64) -> u64 {
        let (idx, _) = units
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("at least one unit");
        let start = t.max(units[idx]);
        units[idx] = start + 1;
        start
    }

    /// Issues one instruction; `addr` is the accessed cell for loads and
    /// stores (cache model). Returns the completion cycle of the result.
    pub fn issue(&mut self, class: OpClass, srcs_ready: u64, addr: Option<i64>) -> u64 {
        let t0 = self.fetch_cycle().max(srcs_ready);
        let mut latency = latency_of_class(class);
        let start = match class {
            OpClass::Alu | OpClass::Call | OpClass::FpCvt => t0,
            OpClass::FpAdd => Self::claim(&mut self.fp_add_free, t0),
            OpClass::FpMul => Self::claim(&mut self.fp_mul_free, t0),
            OpClass::IntMul => Self::claim(&mut self.int_mul_free, t0),
            OpClass::Load => {
                let start = Self::claim(&mut self.load_free, t0);
                if let Some(a) = addr {
                    if !self.cache_access(a) {
                        latency += self.config.cache_miss_penalty;
                        self.cache_misses += 1;
                    }
                }
                start
            }
            OpClass::Store => {
                let start = Self::claim(&mut self.store_free, t0);
                if let Some(a) = addr {
                    let _ = self.cache_access(a); // write-allocate
                }
                start
            }
            OpClass::Div => {
                let start = t0.max(self.div_free);
                self.div_free = start + latency; // unpipelined
                start
            }
            OpClass::Transcendental => {
                let start = t0.max(self.trans_free);
                self.trans_free = start + latency;
                start
            }
        };
        let completion = start + latency;
        self.retire(completion);
        completion
    }

    /// True on a hit; installs the line otherwise.
    fn cache_access(&mut self, addr: i64) -> bool {
        let block = (addr.max(0) as u64) / self.config.cache_line_cells as u64;
        let line = (block % self.config.cache_lines as u64) as usize;
        if self.cache[line] == block {
            true
        } else {
            self.cache[line] = block;
            false
        }
    }

    /// Issues a block of `count` independent ALU operations (the modeled
    /// body of a runtime intrinsic), gated on `srcs_ready`; returns when
    /// the block's result is ready.
    pub fn issue_bulk(&mut self, count: u64, srcs_ready: u64) -> u64 {
        let mut ready = srcs_ready;
        for _ in 0..count {
            ready = self.issue(OpClass::Alu, srcs_ready, None).max(ready);
        }
        ready
    }

    /// Resolves a conditional branch at a static site: predicts with a
    /// 2-bit counter. Correctly predicted branches are free (speculation);
    /// a mispredict stalls fetch until the condition resolves, plus the
    /// flush penalty — so validation chains feeding branches make
    /// mispredicts costlier.
    pub fn branch(&mut self, site: u64, taken: bool, cond_ready: u64) {
        let counter = *self.predictor.entry(site).or_insert(1);
        let predicted_taken = counter >= 2;
        if predicted_taken != taken {
            self.mispredicts += 1;
            let resume = cond_ready
                .max(self.fetch_cycle())
                .saturating_add(self.config.mispredict_penalty);
            self.fetch_floor = self.fetch_floor.max(resume);
        }
        let updated = match (taken, counter) {
            (true, c) => (c + 1).min(3),
            (false, c) => c.saturating_sub(1),
        };
        self.predictor.insert(site, updated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe() -> Pipeline {
        Pipeline::new(PipelineConfig::default())
    }

    #[test]
    fn independent_alu_ops_fill_the_width() {
        let mut p = pipe();
        for _ in 0..30 {
            p.issue(OpClass::Alu, 0, None);
        }
        assert_eq!(p.cycles(), 10); // width 3
    }

    #[test]
    fn dependent_chain_is_latency_bound() {
        let mut p = pipe();
        let mut ready = 0;
        for _ in 0..8 {
            ready = p.issue(OpClass::FpAdd, ready, None);
        }
        assert_eq!(ready, 24); // 8 chained 3-cycle adds
        assert_eq!(p.cycles(), 24);
    }

    #[test]
    fn independent_work_hides_behind_a_stalled_chain() {
        // OoO: one long dependent chain plus independent ALU work; the
        // ALU work must not wait for the chain.
        let mut p = pipe();
        let mut ready = 0;
        for _ in 0..10 {
            ready = p.issue(OpClass::FpAdd, ready, None);
            p.issue(OpClass::Alu, 0, None);
            p.issue(OpClass::Alu, 0, None);
        }
        // Chain bound: 30 cycles; width bound: 30/3 = 10.
        assert_eq!(p.cycles(), 30);
        // The same ALU work in-order-stalled would exceed 30.
    }

    #[test]
    fn window_limits_runahead() {
        // A very long dependent chain; later independent work cannot run
        // more than `window` instructions ahead.
        let cfg = PipelineConfig {
            window: 4,
            ..PipelineConfig::default()
        };
        let mut p = Pipeline::new(cfg);
        let slow = p.issue(OpClass::Transcendental, 0, None); // completes at 20
        for _ in 0..8 {
            p.issue(OpClass::Alu, 0, None);
        }
        // With a window of 4, the 5th ALU op waits for the transcendental.
        assert!(p.cycles() >= slow, "cycles = {}", p.cycles());
    }

    #[test]
    fn fp_port_limits_throughput() {
        let mut p = pipe();
        for _ in 0..30 {
            p.issue(OpClass::FpAdd, 0, None);
        }
        assert!(p.cycles() >= 30 + 2, "cycles = {}", p.cycles());
        let mut q = pipe();
        for _ in 0..30 {
            q.issue(OpClass::Alu, 0, None);
        }
        assert_eq!(q.cycles(), 10);
    }

    #[test]
    fn divider_is_unpipelined() {
        let mut p = pipe();
        let r1 = p.issue(OpClass::Div, 0, None);
        let r2 = p.issue(OpClass::Div, 0, None);
        assert_eq!(r2, r1 + latency_of_class(OpClass::Div));
    }

    #[test]
    fn transcendental_unit_serializes_triplicated_exp() {
        let mut one = pipe();
        let c1 = one.issue(OpClass::Transcendental, 0, None);
        let mut three = pipe();
        let mut c3 = 0;
        for _ in 0..3 {
            c3 = three.issue(OpClass::Transcendental, 0, None);
        }
        assert!(c3 as f64 >= 2.9 * c1 as f64, "c1={c1} c3={c3}");
    }

    #[test]
    fn cache_hits_after_first_touch() {
        let mut p = pipe();
        let miss = p.issue(OpClass::Load, 0, Some(100));
        let hit = p.issue(OpClass::Load, 0, Some(101)); // same line
        assert!(miss > hit, "miss={miss} hit={hit}");
        assert_eq!(p.cache_misses(), 1);
    }

    #[test]
    fn streaming_a_large_array_misses_periodically() {
        let mut p = pipe();
        for a in 0..4096 {
            p.issue(OpClass::Load, 0, Some(a));
        }
        // One miss per 8-cell line.
        assert_eq!(p.cache_misses(), 512);
    }

    #[test]
    fn duplicated_loads_hit_the_original_copys_lines() {
        // The SWIFT-R effect: a latency-bound baseline (loads feeding a
        // dependent accumulation) leaves slack that the duplicated copies
        // fill; their loads hit the lines the original just fetched.
        let run = |copies: usize| {
            let mut p = pipe();
            let mut acc = vec![0u64; copies];
            for a in (0..2048).step_by(8) {
                for chain in acc.iter_mut() {
                    let v = p.issue(OpClass::Load, 0, Some(a));
                    *chain = p.issue(OpClass::FpAdd, v.max(*chain), None);
                }
            }
            p.cycles()
        };
        let one = run(1);
        let three = run(3);
        assert!((three as f64) < 1.5 * one as f64, "one={one} three={three}");
        // And the shadow loads add no misses.
        let misses = |copies: usize| {
            let mut p = pipe();
            for a in (0..2048).step_by(8) {
                for _ in 0..copies {
                    p.issue(OpClass::Load, 0, Some(a));
                }
            }
            p.cache_misses()
        };
        assert_eq!(misses(1), misses(3));
    }

    #[test]
    fn branch_predictor_learns_a_loop() {
        let mut p = pipe();
        for _ in 0..100 {
            p.branch(7, true, 0);
        }
        p.branch(7, false, 0);
        assert!(p.mispredicts() <= 2, "mispredicts = {}", p.mispredicts());
    }

    #[test]
    fn alternating_branch_mispredicts_often() {
        let mut p = pipe();
        for i in 0..100 {
            p.branch(9, i % 2 == 0, 0);
        }
        assert!(p.mispredicts() > 30);
    }

    #[test]
    fn mispredict_with_late_condition_is_costlier() {
        // A mispredicted branch whose condition resolves late (a validation
        // chain) stalls fetch longer.
        let mut early = pipe();
        early.branch(1, true, 0); // predicted not-taken initially -> mispredict
        let c_early = early.cycles();
        let mut late = pipe();
        late.branch(1, true, 50);
        let c_late = late.cycles();
        assert!(c_late > c_early + 40, "early={c_early} late={c_late}");
    }

    #[test]
    fn bulk_issue_charges_all_ops() {
        let mut p = pipe();
        let ready = p.issue_bulk(9, 0);
        assert_eq!(p.cycles(), 3);
        assert!(ready >= 1);
    }

    #[test]
    fn latency_table_sanity() {
        use rskip_ir::{Operand, Reg};
        let exp = Inst::Un {
            ty: Ty::F64,
            op: UnOp::Exp,
            dst: Reg(0),
            src: Operand::imm_f(1.0),
        };
        let add = Inst::Bin {
            ty: Ty::I64,
            op: BinOp::Add,
            dst: Reg(0),
            lhs: Operand::imm_i(1),
            rhs: Operand::imm_i(2),
        };
        assert!(latency_of(&exp) > 10 * latency_of(&add));
        assert_eq!(class_of(&exp), OpClass::Transcendental);
        assert_eq!(class_of(&add), OpClass::Alu);
    }
}
