//! Retired-instruction and cycle counters (the PAPI substitute).

/// Dynamic execution counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Retired instructions, including the modeled cost of runtime
    /// intrinsics (the runtime executes real instructions on real
    /// hardware; their count is charged here).
    pub retired: u64,
    /// Retired instructions while inside at least one protection region
    /// (between `region_enter` and `region_exit`).
    pub region_retired: u64,
    /// Cycles from the pipeline model (0 when timing is disabled).
    pub cycles: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Branch mispredictions (pipeline model).
    pub mispredicts: u64,
    /// Calls retired (including outlined-body calls).
    pub calls: u64,
}

impl Counters {
    /// Instructions per cycle; 0 when timing was disabled.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_guards_zero_cycles() {
        let c = Counters::default();
        assert_eq!(c.ipc(), 0.0);
        let c = Counters {
            retired: 30,
            cycles: 10,
            ..Counters::default()
        };
        assert!((c.ipc() - 3.0).abs() < 1e-12);
    }
}
