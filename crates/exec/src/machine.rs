//! The IR interpreter.
//!
//! Executes the pre-decoded form built by [`Decoded`]: call targets and
//! block successors are dense indices, instruction timing classes are
//! pre-resolved, and call frames come from a per-machine pool, so the
//! non-error hot path performs no string hashing and no heap allocation.

use std::fmt;

use rskip_ir::{BinOp, CmpOp, Module, Operand, Reg, Ty, UnOp, Value};

use crate::counters::Counters;
use crate::decoded::{DInst, DStep, DTerm, Decoded};
use crate::enumerate::TraceEntry;
use crate::fault::{
    burst_window, ExactFault, ExactFaultKind, ExactFlip, FaultEffect, FaultModel, InjectionPlan,
    InjectionRecord,
};
use crate::hooks::RuntimeHooks;
use crate::pipeline::{Pipeline, PipelineConfig};

/// Why a run stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Memory access outside the allocated flat memory — the *Segfault*
    /// outcome class.
    OutOfBounds {
        /// The faulting cell index.
        addr: i64,
    },
    /// Integer division or remainder by zero — *Core dump*.
    DivByZero,
    /// Call to a function that does not exist (cannot happen in verified
    /// modules, kept for robustness) — *Core dump*.
    UnknownFunction(String),
    /// Call stack exceeded the configured depth — *Core dump*.
    StackOverflow,
    /// The dynamic instruction budget was exhausted — the *Hang* class.
    StepLimit,
    /// The SWIFT detection handler fired: a fault was detected but the
    /// scheme has no recovery.
    FaultDetected,
    /// Control fell off the end of a function's code — only reachable
    /// when an instruction-skip fault swallows the terminator of a
    /// function's last block — *Core dump*.
    CodeRunoff,
    /// The prediction runtime observed a violation of its calling
    /// protocol (e.g. a pending-field read with no pending element) that
    /// would abort the host process. Only reachable under fault
    /// injection, when a corrupted or skipped branch steers transformed
    /// code into the wrong intrinsic sequence — *Core dump*.
    RuntimeAbort,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfBounds { addr } => write!(f, "out-of-bounds access at cell {addr}"),
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::UnknownFunction(n) => write!(f, "call to unknown function @{n}"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::StepLimit => write!(f, "dynamic instruction budget exhausted"),
            Trap::FaultDetected => write!(f, "fault detected (no recovery)"),
            Trap::CodeRunoff => write!(f, "control ran off the end of a function"),
            Trap::RuntimeAbort => write!(f, "runtime protocol violation (host abort)"),
        }
    }
}

impl std::error::Error for Trap {}

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Termination {
    /// The entry function returned.
    Returned(Option<Value>),
    /// Execution trapped.
    Trapped(Trap),
}

/// The result of one [`Machine::run`].
///
/// `PartialEq` compares every observable field — the tier-equivalence
/// suite asserts whole outcomes at once with it.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// How the run ended.
    pub termination: Termination,
    /// Dynamic counters.
    pub counters: Counters,
    /// The fault actually injected, if an [`InjectionPlan`] was armed and
    /// found a target.
    pub injection: Option<InjectionRecord>,
    /// The runtime-state fault actually injected, if one was armed with
    /// [`Machine::set_runtime_state_flip`] and the hooks reported a live
    /// target site.
    pub state_injection: Option<String>,
    /// Values printed through the `print` intrinsic.
    pub prints: Vec<Value>,
}

impl RunOutcome {
    /// True if the run returned normally.
    pub fn returned(&self) -> bool {
        matches!(self.termination, Termination::Returned(_))
    }
}

/// Which execution engine runs the decoded program.
///
/// Every tier is observationally identical — byte-identical memory,
/// counters, timing and injection records ([`crate::threaded`] documents
/// the exactness argument; `tests/tier_equivalence.rs` in the harness
/// crate enforces it). They differ only in speed:
///
/// * [`ExecTier::Match`] — the reference match-dispatch interpreter in
///   this module. Kept as the semantics oracle; traced (census) runs
///   always use it.
/// * [`ExecTier::ThreadedNoFuse`] — direct-threaded dispatch: one
///   pre-selected handler `fn` pointer per flattened instruction.
/// * [`ExecTier::Threaded`] — direct-threaded dispatch plus the
///   decode-time superinstruction fusion overlay. The default.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecTier {
    /// Reference match-dispatch interpreter (semantics oracle).
    Match,
    /// Direct-threaded dispatch with fusion disabled.
    ThreadedNoFuse,
    /// Direct-threaded dispatch with superinstruction fusion (default).
    Threaded,
}

impl ExecTier {
    /// Parses a tier name as used by `--tier` flags and the
    /// `RSKIP_EXEC_TIER` environment override.
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s {
            "match" => Some(ExecTier::Match),
            "threaded-nofuse" => Some(ExecTier::ThreadedNoFuse),
            "threaded" => Some(ExecTier::Threaded),
            _ => None,
        }
    }

    /// Stable display name (inverse of [`ExecTier::parse`]).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Match => "match",
            ExecTier::ThreadedNoFuse => "threaded-nofuse",
            ExecTier::Threaded => "threaded",
        }
    }

    /// The process-wide default tier: `RSKIP_EXEC_TIER` if set (read
    /// once), otherwise [`ExecTier::Threaded`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `RSKIP_EXEC_TIER` value — silently
    /// falling back would invalidate any benchmark or experiment the
    /// override was meant to steer.
    pub fn from_env() -> ExecTier {
        static TIER: std::sync::OnceLock<ExecTier> = std::sync::OnceLock::new();
        *TIER.get_or_init(|| match std::env::var("RSKIP_EXEC_TIER") {
            Ok(s) => ExecTier::parse(&s).unwrap_or_else(|| {
                panic!(
                    "RSKIP_EXEC_TIER={s:?} is not a tier \
                     (expected: match | threaded-nofuse | threaded)"
                )
            }),
            Err(_) => ExecTier::Threaded,
        })
    }
}

impl fmt::Display for ExecTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Interpreter configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Dynamic instruction budget; exceeding it traps with
    /// [`Trap::StepLimit`] (the *Hang* classifier).
    pub step_limit: u64,
    /// Enable the cycle-accurate-ish pipeline model.
    pub timing: Option<PipelineConfig>,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Execution engine (defaults to [`ExecTier::from_env`]).
    pub tier: ExecTier,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            step_limit: 500_000_000,
            timing: None,
            max_call_depth: 1024,
            tier: ExecTier::from_env(),
        }
    }
}

#[derive(Default)]
struct Frame {
    func: u32,
    block: u32,
    ip: u32,
    ret_dst: Option<Reg>,
    regs: Vec<Value>,
    written: Vec<bool>,
    ready: Vec<u64>,
}

/// An armed fault for the next run: a random draw from a fault model, a
/// deterministic exact fault, or a strike against the prediction
/// runtime's own metadata.
pub(crate) enum ArmedFault {
    Random(InjectionPlan),
    Exact(ExactFault),
    RuntimeState { trigger: u64, seed: u64 },
}

/// Either an internally-built decode or one shared by the caller (e.g.
/// one decode per campaign, many machines across threads).
enum Program<'m> {
    Owned(Box<Decoded<'m>>),
    Shared(&'m Decoded<'m>),
}

impl<'m> Program<'m> {
    fn get(&self) -> &Decoded<'m> {
        match self {
            Program::Owned(d) => d,
            Program::Shared(d) => d,
        }
    }
}

/// The interpreter: flat ECC-protected memory, a call stack of register
/// frames, counters, optional timing, optional SEU injection.
///
/// # Example
///
/// ```
/// use rskip_ir::{ModuleBuilder, Operand, Ty, Value};
/// use rskip_exec::{Machine, NoopHooks};
///
/// let mut mb = ModuleBuilder::new("m");
/// let mut f = mb.function("main", vec![], Some(Ty::I64));
/// f.ret(Some(Operand::imm_i(42)));
/// f.finish();
/// let module = mb.finish();
///
/// let mut machine = Machine::new(&module, NoopHooks);
/// let outcome = machine.run("main", &[]);
/// assert!(matches!(
///     outcome.termination,
///     rskip_exec::Termination::Returned(Some(Value::I(42)))
/// ));
/// ```
pub struct Machine<'m, H> {
    program: Program<'m>,
    hooks: H,
    config: ExecConfig,
    mem: Vec<Value>,
    injection: Option<ArmedFault>,
    /// Recycled call frames: register vectors are reused across calls and
    /// across runs instead of reallocated.
    pool: Vec<Frame>,
    /// Recycled frames of the direct-threaded tier (flat-pc layout).
    tpool: Vec<crate::threaded::TFrame>,
}

impl<'m, H: RuntimeHooks> Machine<'m, H> {
    /// Creates a machine with default configuration.
    pub fn new(module: &'m Module, hooks: H) -> Self {
        Self::with_config(module, hooks, ExecConfig::default())
    }

    /// Creates a machine with an explicit configuration, decoding the
    /// module internally.
    pub fn with_config(module: &'m Module, hooks: H, config: ExecConfig) -> Self {
        Self::build(
            Program::Owned(Box::new(Decoded::new(module))),
            hooks,
            config,
        )
    }

    /// Creates a machine over a pre-built [`Decoded`], sharing it instead
    /// of decoding again — campaign drivers decode once and hand the same
    /// reference to every worker thread.
    pub fn from_decoded(decoded: &'m Decoded<'m>, hooks: H, config: ExecConfig) -> Self {
        Self::build(Program::Shared(decoded), hooks, config)
    }

    fn build(program: Program<'m>, hooks: H, config: ExecConfig) -> Self {
        let mut machine = Machine {
            program,
            hooks,
            config,
            mem: Vec::new(),
            injection: None,
            pool: Vec::new(),
            tpool: Vec::new(),
        };
        machine.reset_memory();
        machine
    }

    fn module(&self) -> &'m Module {
        self.program.get().module
    }

    /// Re-initializes memory from the global initializers.
    pub fn reset_memory(&mut self) {
        let module = self.module();
        self.mem.clear();
        self.mem.reserve(module.memory_cells());
        for g in &module.globals {
            match &g.init {
                Some(values) => self.mem.extend(values.iter().copied()),
                None => self
                    .mem
                    .extend(std::iter::repeat_n(Value::zero(g.ty), g.len)),
            }
        }
    }

    /// The cell range of a global, by name.
    pub fn global_range(&self, name: &str) -> Option<std::ops::Range<usize>> {
        let module = self.module();
        let id = module.global_by_name(name)?;
        let base = self.program.get().global_base[id.index()] as usize;
        Some(base..base + module.global(id).len)
    }

    /// Reads a global's cells.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist.
    pub fn read_global(&self, name: &str) -> &[Value] {
        let r = self
            .global_range(name)
            .unwrap_or_else(|| panic!("no global @{name}"));
        &self.mem[r]
    }

    /// Overwrites a global's cells (input loading).
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist or `values` has the wrong
    /// length.
    pub fn write_global(&mut self, name: &str, values: &[Value]) {
        let r = self
            .global_range(name)
            .unwrap_or_else(|| panic!("no global @{name}"));
        assert_eq!(values.len(), r.len(), "length mismatch for @{name}");
        self.mem[r].copy_from_slice(values);
    }

    /// Full memory snapshot (output comparison).
    pub fn memory(&self) -> &[Value] {
        &self.mem
    }

    /// Access to the hooks (e.g. to read runtime statistics after a run).
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Mutable access to the hooks.
    pub fn hooks_mut(&mut self) -> &mut H {
        &mut self.hooks
    }

    /// Arms random fault injection for the next run. The plan's
    /// [`FaultModel`] selects the effect sampled at the trigger.
    pub fn set_injection(&mut self, plan: InjectionPlan) {
        self.injection = Some(ArmedFault::Random(plan));
    }

    /// Arms one deterministic single-bit flip for the next run
    /// (exhaustive-enumeration mode, SEU shorthand for
    /// [`Machine::set_exact_fault`]).
    pub fn set_exact_flip(&mut self, flip: ExactFlip) {
        self.set_exact_fault(flip.into());
    }

    /// Arms one deterministic fault of any model for the next run
    /// (exhaustive-enumeration mode).
    pub fn set_exact_fault(&mut self, fault: ExactFault) {
        self.injection = Some(ArmedFault::Exact(fault));
    }

    /// Arms a single-event upset against the prediction runtime's *own*
    /// state for the next run: once `trigger` region instructions have
    /// retired, [`RuntimeHooks::flip_runtime_state`] is asked to flip one
    /// bit of live predictor metadata. If the hooks hold no live state of
    /// the chosen kind at that boundary the fault stays armed and retries
    /// at every later one, inside or outside a region — predictor
    /// metadata (unlike program state) persists across region
    /// activations, and some of it is only resident briefly (a pending
    /// re-computation record lives from rejection to replay).
    pub fn set_runtime_state_flip(&mut self, trigger: u64, seed: u64) {
        self.injection = Some(ArmedFault::RuntimeState { trigger, seed });
    }

    /// Runs `func` with `args` to completion.
    ///
    /// # Panics
    ///
    /// Panics if the entry function does not exist or the argument count
    /// mismatches — entry setup errors are caller bugs, unlike in-run traps
    /// which are reported in the outcome.
    pub fn run(&mut self, func: &str, args: &[Value]) -> RunOutcome {
        self.run_inner(func, args, None)
    }

    /// Runs `func`, recording one [`TraceEntry`] per instruction boundary
    /// (the enumeration census). Traced runs always execute on the
    /// reference [`ExecTier::Match`] loop regardless of the configured
    /// tier — the census speaks in `(block, ip)` program points, which is
    /// what the oracle tier is defined over. Public so the vulnerability
    /// analysis (`rskip-vuln`) can take the same census the exhaustive
    /// enumerator uses and build per-section fault-site universes from it.
    pub fn run_traced(
        &mut self,
        func: &str,
        args: &[Value],
        trace: &mut Vec<TraceEntry>,
    ) -> RunOutcome {
        self.run_inner(func, args, Some(trace))
    }

    fn run_inner(
        &mut self,
        func: &str,
        args: &[Value],
        trace: Option<&mut Vec<TraceEntry>>,
    ) -> RunOutcome {
        let prog = self.program.get();
        let entry = prog
            .function_index(func)
            .unwrap_or_else(|| panic!("no function @{func}"));
        assert_eq!(
            args.len(),
            prog.funcs[entry].n_params,
            "argument count mismatch"
        );

        // Split the borrows: the decoded program is read-only for the whole
        // run while memory, hooks and the frame pool are mutated.
        let Machine {
            program,
            hooks,
            config,
            mem,
            injection,
            pool,
            tpool,
        } = self;
        // Traced (census) runs always go through the reference loop: the
        // trace wants (block, ip) program points, and the oracle tier is
        // what the census is defined against.
        if trace.is_none() && config.tier != ExecTier::Match {
            return crate::threaded::exec_threaded(
                program.get(),
                hooks,
                config,
                mem,
                tpool,
                injection.take(),
                entry,
                args,
            );
        }
        exec_loop(
            program.get(),
            hooks,
            config,
            mem,
            pool,
            injection.take(),
            trace,
            entry,
            args,
        )
    }
}

/// Pops a recycled frame (or a fresh one) and initializes it for `func`.
fn acquire_frame(pool: &mut Vec<Frame>, prog: &Decoded<'_>, func: usize) -> Frame {
    let init = &prog.funcs[func].reg_init;
    let n = init.len();
    let mut fr = pool.pop().unwrap_or_default();
    fr.func = func as u32;
    fr.block = 0;
    fr.ip = 0;
    fr.ret_dst = None;
    fr.regs.clear();
    fr.regs.extend_from_slice(init);
    fr.written.clear();
    fr.written.resize(n, false);
    fr.ready.clear();
    fr.ready.resize(n, 0);
    fr
}

#[inline]
fn eval(global_base: &[i64], frame: &Frame, op: Operand) -> Value {
    match op {
        Operand::Reg(r) => frame.regs[r.index()],
        Operand::ImmI(v) => Value::I(v),
        Operand::ImmF(v) => Value::F(v),
        Operand::Global(g) => Value::I(global_base[g.index()]),
    }
}

#[inline]
fn operand_ready(frame: &Frame, op: Operand) -> u64 {
    match op {
        Operand::Reg(r) => frame.ready[r.index()],
        _ => 0,
    }
}

#[inline]
fn write_reg(frame: &mut Frame, dst: Reg, v: Value, ready: u64) {
    frame.regs[dst.index()] = v;
    frame.written[dst.index()] = true;
    frame.ready[dst.index()] = ready;
}

/// Timing: gather source readiness and issue into the pipeline model.
#[inline]
fn issue(frame: &Frame, pipeline: &mut Option<Pipeline>, step: &DStep, addr: Option<i64>) -> u64 {
    match pipeline {
        None => 0,
        Some(p) => {
            let mut ready = 0u64;
            step.op.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    ready = ready.max(frame.ready[r.index()]);
                }
            });
            p.issue(step.class, ready, addr)
        }
    }
}

#[inline]
fn load_cell(mem: &[Value], addr: i64) -> Result<Value, Trap> {
    if addr < 0 || addr as usize >= mem.len() {
        return Err(Trap::OutOfBounds { addr });
    }
    Ok(mem[addr as usize])
}

#[inline]
fn store_cell(mem: &mut [Value], addr: i64, v: Value) -> Result<(), Trap> {
    if addr < 0 || addr as usize >= mem.len() {
        return Err(Trap::OutOfBounds { addr });
    }
    mem[addr as usize] = v;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn exec_loop<H: RuntimeHooks>(
    prog: &Decoded<'_>,
    hooks: &mut H,
    config: &ExecConfig,
    mem: &mut [Value],
    pool: &mut Vec<Frame>,
    mut injection: Option<ArmedFault>,
    mut trace: Option<&mut Vec<TraceEntry>>,
    entry: usize,
    args: &[Value],
) -> RunOutcome {
    let global_base = &prog.global_base;
    let mut counters = Counters::default();
    let mut pipeline = config.timing.map(Pipeline::new);
    let mut prints = Vec::new();
    let mut region_depth: u32 = 0;
    let mut injected: Option<InjectionRecord> = None;
    let mut state_injected: Option<String> = None;
    // Instruction boundaries crossed so far. Differs from
    // `counters.retired` because intrinsic actions charge extra modeled
    // instructions; [`ExactFlip`] and the enumeration census count actual
    // boundaries so they stay in lockstep across runs.
    let mut boundary: u64 = 0;
    // Scratch for intrinsic argument values, reused across calls.
    let mut scratch: Vec<Value> = Vec::new();

    let mut stack: Vec<Frame> = Vec::with_capacity(16);
    let mut first = acquire_frame(pool, prog, entry);
    for (i, &a) in args.iter().enumerate() {
        first.regs[i] = a;
        first.written[i] = true;
    }
    stack.push(first);

    let termination = loop {
        // --- Fault injection at the instruction boundary. ---
        if let Some(armed) = &injection {
            let due = match armed {
                ArmedFault::Random(plan) => {
                    if plan.anywhere {
                        counters.retired >= plan.trigger
                    } else {
                        region_depth > 0 && counters.region_retired >= plan.trigger
                    }
                }
                ArmedFault::Exact(fault) => boundary >= fault.at,
                // The runtime's own metadata outlives region activations
                // (the pending queue, for one, drains in the post-exit
                // flush recheck), so once the trigger count is reached the
                // strike may land at any boundary, in or out of a region.
                ArmedFault::RuntimeState { trigger, .. } => counters.region_retired >= *trigger,
            };
            if due {
                // A skip fault swallows the instruction the boundary is
                // about to execute; the effect (counters, position) is
                // applied here and the loop restarts at the next
                // boundary.
                let skips = matches!(
                    armed,
                    ArmedFault::Random(InjectionPlan {
                        model: FaultModel::InstructionSkip,
                        ..
                    }) | ArmedFault::Exact(ExactFault {
                        kind: ExactFaultKind::Skip,
                        ..
                    })
                );
                match armed {
                    // The skip model strikes architectural instructions
                    // only; over an intrinsic boundary the fault holds
                    // fire (fall through, execute the intrinsic) and
                    // retries at the next boundary, like a runtime-state
                    // fault with no live target.
                    _ if skips && skip_target_is_intrinsic(prog, &stack) => {}
                    _ if skips => {
                        let (record, trap) =
                            fire_skip(prog, &mut stack, &mut counters, &mut boundary, region_depth);
                        injected = Some(record);
                        injection = None;
                        if let Some(trap) = trap {
                            break Termination::Trapped(trap);
                        }
                        continue;
                    }
                    ArmedFault::Random(plan) => {
                        injected = inject(prog, plan, &mut stack, counters.retired);
                        injection = None;
                    }
                    ArmedFault::Exact(fault) => {
                        injected = inject_exact(prog, fault, &mut stack, counters.retired);
                        injection = None;
                    }
                    ArmedFault::RuntimeState { seed, .. } => {
                        // The runtime may hold no live state of the chosen
                        // kind at this boundary; keep the fault armed and
                        // retry at the next one.
                        if let Some(site) = hooks.flip_runtime_state(*seed) {
                            state_injected = Some(site);
                            injection = None;
                        }
                    }
                }
            }
        }

        if counters.retired >= config.step_limit {
            break Termination::Trapped(Trap::StepLimit);
        }

        let frame = stack.last_mut().expect("non-empty stack");
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(TraceEntry::capture(
                frame.func,
                frame.block,
                frame.ip,
                &frame.written,
            ));
        }
        boundary += 1;
        let block = &prog.funcs[frame.func as usize].blocks[frame.block as usize];

        if (frame.ip as usize) < block.insts.len() {
            let step = &block.insts[frame.ip as usize];
            frame.ip += 1;
            counters.retired += 1;
            if region_depth > 0 {
                counters.region_retired += 1;
            }

            match &step.op {
                DInst::Mov { dst, src } => {
                    let v = eval(global_base, frame, *src);
                    let done = issue(frame, &mut pipeline, step, None);
                    write_reg(frame, *dst, v, done);
                }
                DInst::Bin {
                    ty,
                    op,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = eval(global_base, frame, *lhs);
                    let b = eval(global_base, frame, *rhs);
                    let v = match bin_op(*ty, *op, a, b) {
                        Ok(v) => v,
                        Err(trap) => break Termination::Trapped(trap),
                    };
                    let done = issue(frame, &mut pipeline, step, None);
                    write_reg(frame, *dst, v, done);
                }
                DInst::Un { ty, op, dst, src } => {
                    let a = eval(global_base, frame, *src);
                    let v = un_op(*ty, *op, a);
                    let done = issue(frame, &mut pipeline, step, None);
                    write_reg(frame, *dst, v, done);
                }
                DInst::Cmp {
                    ty,
                    op,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = eval(global_base, frame, *lhs);
                    let b = eval(global_base, frame, *rhs);
                    let v = Value::I(cmp_op(*ty, *op, a, b) as i64);
                    let done = issue(frame, &mut pipeline, step, None);
                    write_reg(frame, *dst, v, done);
                }
                DInst::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                } => {
                    let c = eval(global_base, frame, *cond).as_i();
                    let v = if c != 0 {
                        eval(global_base, frame, *on_true)
                    } else {
                        eval(global_base, frame, *on_false)
                    };
                    let done = issue(frame, &mut pipeline, step, None);
                    write_reg(frame, *dst, v, done);
                }
                DInst::Load { dst, addr } => {
                    counters.loads += 1;
                    let a = eval(global_base, frame, *addr).as_i();
                    let v = match load_cell(mem, a) {
                        Ok(v) => v,
                        Err(trap) => break Termination::Trapped(trap),
                    };
                    let done = issue(frame, &mut pipeline, step, Some(a));
                    write_reg(frame, *dst, v, done);
                }
                DInst::Store { addr, value } => {
                    counters.stores += 1;
                    let a = eval(global_base, frame, *addr).as_i();
                    let v = eval(global_base, frame, *value);
                    issue(frame, &mut pipeline, step, Some(a));
                    if let Err(trap) = store_cell(mem, a, v) {
                        break Termination::Trapped(trap);
                    }
                }
                DInst::Call { dst, target, args } => {
                    counters.calls += 1;
                    if stack.len() >= config.max_call_depth {
                        break Termination::Trapped(Trap::StackOverflow);
                    }
                    let mut new = acquire_frame(pool, prog, *target as usize);
                    let caller = stack.last_mut().expect("frame");
                    for (i, &a) in args.iter().enumerate() {
                        new.regs[i] = eval(global_base, caller, a);
                        new.written[i] = true;
                        if pipeline.is_some() {
                            new.ready[i] = operand_ready(caller, a);
                        }
                    }
                    issue(caller, &mut pipeline, step, None);
                    new.ret_dst = *dst;
                    stack.push(new);
                }
                DInst::CallUnknown { name } => {
                    counters.calls += 1;
                    if stack.len() >= config.max_call_depth {
                        break Termination::Trapped(Trap::StackOverflow);
                    }
                    break Termination::Trapped(Trap::UnknownFunction(name.to_string()));
                }
                DInst::IntrinsicCall { dst, intr, args } => {
                    scratch.clear();
                    for &a in args.iter() {
                        scratch.push(eval(global_base, frame, a));
                    }
                    match intr {
                        rskip_ir::Intrinsic::RegionEnter => region_depth += 1,
                        rskip_ir::Intrinsic::RegionExit => {
                            region_depth = region_depth.saturating_sub(1);
                        }
                        rskip_ir::Intrinsic::Print => prints.push(scratch[0]),
                        _ => {}
                    }
                    let action = hooks.intrinsic(*intr, &scratch);
                    counters.retired += action.cost;
                    if region_depth > 0 {
                        counters.region_retired += action.cost;
                    }
                    let frame = stack.last_mut().expect("frame");
                    let done = match pipeline.as_mut() {
                        None => 0,
                        Some(p) => {
                            let mut ready = 0u64;
                            for &op in args.iter() {
                                if let Operand::Reg(r) = op {
                                    ready = ready.max(frame.ready[r.index()]);
                                }
                            }
                            p.issue_bulk(1 + action.cost, ready)
                        }
                    };
                    if action.trap_detected {
                        break Termination::Trapped(Trap::FaultDetected);
                    }
                    if action.trap_abort {
                        break Termination::Trapped(Trap::RuntimeAbort);
                    }
                    if let (Some(d), Some(v)) = (dst, action.value) {
                        write_reg(frame, *d, v, done);
                    }
                }
            }
        } else {
            // Terminator.
            counters.retired += 1;
            if region_depth > 0 {
                counters.region_retired += 1;
            }
            match &block.term {
                DTerm::Br(t) => {
                    frame.block = *t;
                    frame.ip = 0;
                }
                DTerm::CondBr {
                    cond,
                    on_true,
                    on_false,
                } => {
                    let c = eval(global_base, frame, *cond);
                    let taken = c.as_i() != 0;
                    counters.branches += 1;
                    if let Some(p) = pipeline.as_mut() {
                        let site = (u64::from(frame.func) << 32) | u64::from(frame.block);
                        let ready = operand_ready(frame, *cond);
                        p.branch(site, taken, ready);
                    }
                    frame.block = if taken { *on_true } else { *on_false };
                    frame.ip = 0;
                }
                DTerm::Ret(v) => {
                    let value = v.map(|op| eval(global_base, frame, op));
                    let ready = v.map(|op| operand_ready(frame, op)).unwrap_or(0);
                    let ret_dst = frame.ret_dst;
                    let done = stack.pop().expect("frame");
                    pool.push(done);
                    match stack.last_mut() {
                        None => break Termination::Returned(value),
                        Some(caller) => {
                            if let (Some(dst), Some(val)) = (ret_dst, value) {
                                caller.regs[dst.index()] = val;
                                caller.written[dst.index()] = true;
                                caller.ready[dst.index()] = ready;
                            }
                        }
                    }
                }
            }
        }
    };

    // Recycle whatever frames remain (mid-stack trap or normal exit).
    pool.append(&mut stack);

    if let Some(p) = &pipeline {
        counters.cycles = p.cycles();
        counters.mispredicts = p.mispredicts();
    }
    RunOutcome {
        termination,
        counters,
        injection: injected,
        state_injection: state_injected,
        prints,
    }
}

pub(crate) fn bin_op(ty: Ty, op: BinOp, a: Value, b: Value) -> Result<Value, Trap> {
    Ok(match ty {
        Ty::I64 => {
            let (x, y) = (a.as_i(), b.as_i());
            Value::I(match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return Err(Trap::DivByZero);
                    }
                    x.wrapping_div(y)
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(Trap::DivByZero);
                    }
                    x.wrapping_rem(y)
                }
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            })
        }
        Ty::F64 => {
            let (x, y) = (a.as_f(), b.as_f());
            Value::F(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                    unreachable!("verifier rejects bitwise float ops")
                }
            })
        }
    })
}

pub(crate) fn un_op(ty: Ty, op: UnOp, a: Value) -> Value {
    match op {
        UnOp::Neg => match ty {
            Ty::I64 => Value::I(a.as_i().wrapping_neg()),
            Ty::F64 => Value::F(-a.as_f()),
        },
        UnOp::Not => Value::I(!a.as_i()),
        UnOp::Sqrt => Value::F(a.as_f().sqrt()),
        UnOp::Exp => Value::F(a.as_f().exp()),
        UnOp::Log => Value::F(a.as_f().ln()),
        UnOp::Abs => match ty {
            Ty::I64 => Value::I(a.as_i().wrapping_abs()),
            Ty::F64 => Value::F(a.as_f().abs()),
        },
        UnOp::Floor => Value::F(a.as_f().floor()),
        UnOp::IntToFloat => Value::F(a.as_i() as f64),
        UnOp::FloatToInt => Value::I(a.as_f() as i64), // saturating in Rust
    }
}

pub(crate) fn cmp_op(ty: Ty, op: CmpOp, a: Value, b: Value) -> bool {
    match ty {
        Ty::I64 => {
            let (x, y) = (a.as_i(), b.as_i());
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Ty::F64 => {
            let (x, y) = (a.as_f(), b.as_f());
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
    }
}

/// Applies the random register effect of `plan.model` (SEU bit flip or
/// burst) to one random live register. Skip faults never reach here —
/// they fire through [`fire_skip`].
fn inject(
    prog: &Decoded<'_>,
    plan: &InjectionPlan,
    stack: &mut [Frame],
    at_retired: u64,
) -> Option<InjectionRecord> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(plan.seed);

    // Gather live (written) registers across all active frames — the
    // architectural register file is shared state on real hardware.
    let mut targets: Vec<(usize, usize)> = Vec::new();
    for (fi, frame) in stack.iter().enumerate() {
        for (ri, &w) in frame.written.iter().enumerate() {
            if w {
                targets.push((fi, ri));
            }
        }
    }
    if targets.is_empty() {
        return None;
    }
    // The target draw precedes the effect draw for every model, so the
    // SEU stream (and with it every pre-existing campaign golden) is
    // unchanged by the generalization.
    let (fi, ri) = targets[rng.gen_range(0..targets.len())];
    let old = stack[fi].regs[ri];
    let (new, effect) = match plan.model {
        FaultModel::InstructionSkip => unreachable!("skip faults fire through fire_skip"),
        FaultModel::SingleBitSeu => {
            let bit = rng.gen_range(0..64u32);
            let new = old.with_bit_flipped(bit);
            let effect = FaultEffect::BitFlip {
                reg: Reg(ri as u32),
                bit,
                old_bits: old.bits(),
                new_bits: new.bits(),
            };
            (new, effect)
        }
        FaultModel::MultiBitBurst { width } => {
            let w = width.clamp(1, 64);
            let (start, w, mask) = burst_window(rng.gen_range(0..(65 - w)), w);
            let new = old.with_bits_flipped(mask);
            let effect = FaultEffect::Burst {
                reg: Reg(ri as u32),
                start,
                width: w,
                old_bits: old.bits(),
                new_bits: new.bits(),
            };
            (new, effect)
        }
    };
    stack[fi].regs[ri] = new;
    Some(InjectionRecord {
        function: prog.module.functions[stack[fi].func as usize].name.clone(),
        block: rskip_ir::BlockId(stack[fi].block),
        ip: stack[fi].ip as usize,
        at_retired,
        effect,
    })
}

/// Applies the planned register effect (bit flip or burst) in the
/// innermost frame, or does nothing if that register has not been written
/// yet (a fault in a never-written register is architecturally invisible:
/// the verifier guarantees such registers are never read on this path).
/// Skip faults never reach here — they fire through [`fire_skip`].
fn inject_exact(
    prog: &Decoded<'_>,
    fault: &ExactFault,
    stack: &mut [Frame],
    at_retired: u64,
) -> Option<InjectionRecord> {
    let frame = stack.last_mut()?;
    let (reg, mask) = match fault.kind {
        ExactFaultKind::BitFlip { reg, bit } => (reg, 1u64 << bit.min(63)),
        ExactFaultKind::Burst { reg, start, width } => (reg, burst_window(start, width).2),
        ExactFaultKind::Skip => unreachable!("skip faults fire through fire_skip"),
    };
    let ri = reg.index();
    if ri >= frame.regs.len() || !frame.written[ri] {
        return None;
    }
    let old = frame.regs[ri];
    let new = old.with_bits_flipped(mask);
    frame.regs[ri] = new;
    let effect = match fault.kind {
        ExactFaultKind::BitFlip { reg, bit } => FaultEffect::BitFlip {
            reg,
            bit,
            old_bits: old.bits(),
            new_bits: new.bits(),
        },
        ExactFaultKind::Burst { reg, start, width } => {
            let (start, width, _) = burst_window(start, width);
            FaultEffect::Burst {
                reg,
                start,
                width,
                old_bits: old.bits(),
                new_bits: new.bits(),
            }
        }
        ExactFaultKind::Skip => unreachable!(),
    };
    Some(InjectionRecord {
        function: prog.module.functions[frame.func as usize].name.clone(),
        block: rskip_ir::BlockId(frame.block),
        ip: frame.ip as usize,
        at_retired,
        effect,
    })
}

/// True when the step the innermost frame would execute next is an
/// intrinsic call — the one shape a skip fault must hold fire over (the
/// runtime interface executes host-side; swallowing a call would desync
/// the runtime's own metadata rather than the emulated program state).
fn skip_target_is_intrinsic(prog: &Decoded<'_>, stack: &[Frame]) -> bool {
    let frame = stack.last().expect("non-empty stack");
    prog.funcs[frame.func as usize].blocks[frame.block as usize]
        .insts
        .get(frame.ip as usize)
        .is_some_and(|step| matches!(step.op, DInst::IntrinsicCall { .. }))
}

/// Fires an instruction-skip fault: the instruction or terminator the
/// innermost frame would execute next retires as a bubble — counters and
/// the boundary census advance exactly as for a real retirement — but
/// nothing executes, and control falls through to the next instruction
/// (for a skipped terminator: the next block in layout order). Skipping
/// the terminator of a function's last block leaves nothing to fall
/// through to: [`Trap::CodeRunoff`].
fn fire_skip(
    prog: &Decoded<'_>,
    stack: &mut [Frame],
    counters: &mut Counters,
    boundary: &mut u64,
    region_depth: u32,
) -> (InjectionRecord, Option<Trap>) {
    let frame = stack.last_mut().expect("non-empty stack");
    let record = InjectionRecord {
        function: prog.module.functions[frame.func as usize].name.clone(),
        block: rskip_ir::BlockId(frame.block),
        ip: frame.ip as usize,
        at_retired: counters.retired,
        effect: FaultEffect::SkippedInstruction,
    };
    // The bubble still retires.
    *boundary += 1;
    counters.retired += 1;
    if region_depth > 0 {
        counters.region_retired += 1;
    }
    let func = &prog.funcs[frame.func as usize];
    let block = &func.blocks[frame.block as usize];
    let trap = if (frame.ip as usize) < block.insts.len() {
        frame.ip += 1;
        None
    } else if (frame.block as usize) + 1 < func.blocks.len() {
        frame.block += 1;
        frame.ip = 0;
        None
    } else {
        Some(Trap::CodeRunoff)
    };
    (record, trap)
}

/// Convenience: run a module's entry function on a fresh machine without
/// hooks or timing (used pervasively by tests).
///
/// # Panics
///
/// Panics if `func` does not exist or arguments mismatch.
pub fn run_simple(module: &Module, func: &str, args: &[Value]) -> RunOutcome {
    let mut m = Machine::new(module, crate::NoopHooks);
    m.run(func, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHooks;
    use rskip_ir::{Intrinsic, ModuleBuilder};

    fn returned_i(outcome: &RunOutcome) -> i64 {
        match outcome.termination {
            Termination::Returned(Some(Value::I(v))) => v,
            ref other => panic!("expected integer return, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_return() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![Ty::I64], Some(Ty::I64));
        let p = f.param(0);
        let x = f.bin(BinOp::Mul, Ty::I64, Operand::reg(p), Operand::imm_i(6));
        let y = f.bin(BinOp::Add, Ty::I64, Operand::reg(x), Operand::imm_i(2));
        f.ret(Some(Operand::reg(y)));
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[Value::I(7)]);
        assert_eq!(returned_i(&out), 44);
        assert_eq!(out.counters.retired, 3); // mul, add, ret
    }

    #[test]
    fn loop_sums_global() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_init("data", Ty::I64, (1..=10).map(Value::I).collect());
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let entry = f.entry_block();
        let header = f.new_block("header");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let acc = f.def_reg(Ty::I64, "acc");
        f.switch_to(entry);
        f.mov(i, Operand::imm_i(0));
        f.mov(acc, Operand::imm_i(0));
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(10));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(body);
        let addr = f.bin(BinOp::Add, Ty::I64, Operand::global(g), Operand::reg(i));
        let v = f.load(Ty::I64, Operand::reg(addr));
        f.bin_into(acc, BinOp::Add, Ty::I64, Operand::reg(acc), Operand::reg(v));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        f.br(header);
        f.switch_to(exit);
        f.ret(Some(Operand::reg(acc)));
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[]);
        assert_eq!(returned_i(&out), 55);
        assert_eq!(out.counters.loads, 10);
        assert_eq!(out.counters.branches, 11);
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut mb = ModuleBuilder::new("m");
        let mut sq = mb.function("square", vec![Ty::I64], Some(Ty::I64));
        let p = sq.param(0);
        let r = sq.bin(BinOp::Mul, Ty::I64, Operand::reg(p), Operand::reg(p));
        sq.ret(Some(Operand::reg(r)));
        sq.finish();
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let a = f
            .call("square", vec![Operand::imm_i(9)], Some(Ty::I64))
            .unwrap();
        let b = f
            .call("square", vec![Operand::reg(a)], Some(Ty::I64))
            .unwrap();
        f.ret(Some(Operand::reg(b)));
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[]);
        assert_eq!(returned_i(&out), 6561);
        assert_eq!(out.counters.calls, 2);
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut mb = ModuleBuilder::new("m");
        mb.global_zeroed("g", Ty::I64, 4);
        let mut f = mb.function("main", vec![], None);
        f.load(Ty::I64, Operand::imm_i(100));
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[]);
        assert_eq!(
            out.termination,
            Termination::Trapped(Trap::OutOfBounds { addr: 100 })
        );
    }

    #[test]
    fn negative_address_traps() {
        let mut mb = ModuleBuilder::new("m");
        mb.global_zeroed("g", Ty::I64, 4);
        let mut f = mb.function("main", vec![], None);
        f.store(Ty::I64, Operand::imm_i(-1), Operand::imm_i(0));
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[]);
        assert!(matches!(
            out.termination,
            Termination::Trapped(Trap::OutOfBounds { .. })
        ));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![Ty::I64], Some(Ty::I64));
        let p = f.param(0);
        let d = f.bin(BinOp::Div, Ty::I64, Operand::imm_i(10), Operand::reg(p));
        f.ret(Some(Operand::reg(d)));
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[Value::I(0)]);
        assert_eq!(out.termination, Termination::Trapped(Trap::DivByZero));
    }

    #[test]
    fn float_division_by_zero_is_not_a_trap() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Some(Ty::F64));
        let d = f.bin(
            BinOp::Div,
            Ty::F64,
            Operand::imm_f(1.0),
            Operand::imm_f(0.0),
        );
        f.ret(Some(Operand::reg(d)));
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[]);
        match out.termination {
            Termination::Returned(Some(Value::F(v))) => assert_eq!(v, f64::INFINITY),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], None);
        let spin = f.new_block("spin");
        f.br(spin);
        f.switch_to(spin);
        f.br(spin);
        f.finish();
        let m = mb.finish();
        let mut machine = Machine::with_config(
            &m,
            NoopHooks,
            ExecConfig {
                step_limit: 1000,
                ..ExecConfig::default()
            },
        );
        let out = machine.run("main", &[]);
        assert_eq!(out.termination, Termination::Trapped(Trap::StepLimit));
    }

    #[test]
    fn recursion_overflows_stack() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("rec", vec![], None);
        f.call("rec", vec![], None);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "rec", &[]);
        assert_eq!(out.termination, Termination::Trapped(Trap::StackOverflow));
    }

    #[test]
    fn unknown_callee_traps_when_reached() {
        // The decoder marks the call unresolved; the trap fires only if the
        // call actually executes.
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![Ty::I64], Some(Ty::I64));
        let p = f.param(0);
        let entry = f.entry_block();
        let bad = f.new_block("bad");
        let good = f.new_block("good");
        f.switch_to(entry);
        f.cond_br(Operand::reg(p), bad, good);
        f.switch_to(bad);
        f.call("missing", vec![], None);
        f.ret(Some(Operand::imm_i(0)));
        f.switch_to(good);
        f.ret(Some(Operand::imm_i(7)));
        f.finish();
        let m = mb.finish();

        let ok = run_simple(&m, "main", &[Value::I(0)]);
        assert_eq!(returned_i(&ok), 7);

        let bad = run_simple(&m, "main", &[Value::I(1)]);
        assert_eq!(
            bad.termination,
            Termination::Trapped(Trap::UnknownFunction("missing".into()))
        );
    }

    #[test]
    fn shared_decode_matches_owned_decode() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![Ty::I64], Some(Ty::I64));
        let p = f.param(0);
        let x = f.bin(BinOp::Mul, Ty::I64, Operand::reg(p), Operand::reg(p));
        f.ret(Some(Operand::reg(x)));
        f.finish();
        let m = mb.finish();

        let decoded = Decoded::new(&m);
        let mut shared = Machine::from_decoded(&decoded, NoopHooks, ExecConfig::default());
        let mut owned = Machine::new(&m, NoopHooks);
        for v in [-3i64, 0, 12] {
            let a = shared.run("main", &[Value::I(v)]);
            let b = owned.run("main", &[Value::I(v)]);
            assert_eq!(a.termination, b.termination);
            assert_eq!(a.counters.retired, b.counters.retired);
        }
    }

    #[test]
    fn frame_pool_reuses_allocations_across_runs() {
        let mut mb = ModuleBuilder::new("m");
        let mut sq = mb.function("square", vec![Ty::I64], Some(Ty::I64));
        let p = sq.param(0);
        let r = sq.bin(BinOp::Mul, Ty::I64, Operand::reg(p), Operand::reg(p));
        sq.ret(Some(Operand::reg(r)));
        sq.finish();
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let a = f
            .call("square", vec![Operand::imm_i(3)], Some(Ty::I64))
            .unwrap();
        f.ret(Some(Operand::reg(a)));
        f.finish();
        let m = mb.finish();

        let mut machine = Machine::with_config(
            &m,
            NoopHooks,
            ExecConfig {
                tier: ExecTier::Match,
                ..ExecConfig::default()
            },
        );
        for _ in 0..3 {
            let out = machine.run("main", &[]);
            assert_eq!(returned_i(&out), 9);
        }
        // Both frames of the deepest run were recycled.
        assert_eq!(machine.pool.len(), 2);

        // Same property for the threaded tier's own pool.
        let mut machine = Machine::with_config(
            &m,
            NoopHooks,
            ExecConfig {
                tier: ExecTier::Threaded,
                ..ExecConfig::default()
            },
        );
        for _ in 0..3 {
            let out = machine.run("main", &[]);
            assert_eq!(returned_i(&out), 9);
        }
        assert_eq!(machine.tpool.len(), 2);
    }

    #[test]
    fn print_intrinsic_collects_values() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], None);
        f.intrinsic(Intrinsic::Print, vec![Operand::imm_f(2.5)]);
        f.intrinsic(Intrinsic::Print, vec![Operand::imm_i(3)]);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[]);
        assert_eq!(out.prints, vec![Value::F(2.5), Value::I(3)]);
    }

    #[test]
    fn region_markers_scope_region_counters() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], None);
        f.bin(BinOp::Add, Ty::I64, Operand::imm_i(1), Operand::imm_i(2));
        f.intrinsic(Intrinsic::RegionEnter, vec![Operand::imm_i(0)]);
        f.bin(BinOp::Add, Ty::I64, Operand::imm_i(1), Operand::imm_i(2));
        f.bin(BinOp::Add, Ty::I64, Operand::imm_i(1), Operand::imm_i(2));
        f.intrinsic(Intrinsic::RegionExit, vec![Operand::imm_i(0)]);
        f.bin(BinOp::Add, Ty::I64, Operand::imm_i(1), Operand::imm_i(2));
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let out = run_simple(&m, "main", &[]);
        // region_retired: the two adds inside + the region_exit intrinsic
        // instruction itself (region_enter increments depth before the
        // count? No: counts occur before execution — region_enter retires
        // while depth is still 0).
        assert_eq!(out.counters.region_retired, 3);
        assert!(out.counters.retired > out.counters.region_retired);
    }

    #[test]
    fn write_and_read_globals() {
        let mut mb = ModuleBuilder::new("m");
        mb.global_zeroed("buf", Ty::F64, 4);
        let mut f = mb.function("main", vec![], None);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let mut machine = Machine::new(&m, NoopHooks);
        machine.write_global(
            "buf",
            &[Value::F(1.0), Value::F(2.0), Value::F(3.0), Value::F(4.0)],
        );
        assert_eq!(machine.read_global("buf")[2], Value::F(3.0));
        machine.reset_memory();
        assert_eq!(machine.read_global("buf")[2], Value::F(0.0));
    }

    #[test]
    fn timing_produces_cycles_and_ipc() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Some(Ty::F64));
        let mut v = f.mov_new(Ty::F64, Operand::imm_f(1.0));
        for _ in 0..20 {
            v = f.bin(BinOp::Mul, Ty::F64, Operand::reg(v), Operand::imm_f(1.01));
        }
        f.ret(Some(Operand::reg(v)));
        f.finish();
        let m = mb.finish();
        let mut machine = Machine::with_config(
            &m,
            NoopHooks,
            ExecConfig {
                timing: Some(PipelineConfig::default()),
                ..ExecConfig::default()
            },
        );
        let out = machine.run("main", &[]);
        // Dependent FpMul chain: ~4 cycles per op, IPC well below 1.
        assert!(
            out.counters.cycles >= 60,
            "cycles = {}",
            out.counters.cycles
        );
        assert!(out.counters.ipc() < 1.0);
    }

    #[test]
    fn independent_ops_get_higher_ipc_than_dependent_chain() {
        let build = |dependent: bool| {
            let mut mb = ModuleBuilder::new("m");
            let mut f = mb.function("main", vec![], Some(Ty::F64));
            let mut v = f.mov_new(Ty::F64, Operand::imm_f(1.0));
            for _ in 0..50 {
                if dependent {
                    v = f.bin(BinOp::Add, Ty::F64, Operand::reg(v), Operand::imm_f(1.0));
                } else {
                    f.bin(
                        BinOp::Add,
                        Ty::F64,
                        Operand::imm_f(1.0),
                        Operand::imm_f(1.0),
                    );
                }
            }
            f.ret(Some(Operand::reg(v)));
            f.finish();
            mb.finish()
        };
        let run = |m: &Module| {
            let mut machine = Machine::with_config(
                m,
                NoopHooks,
                ExecConfig {
                    timing: Some(PipelineConfig::default()),
                    ..ExecConfig::default()
                },
            );
            machine.run("main", &[]).counters.ipc()
        };
        let dep = build(true);
        let indep = build(false);
        assert!(run(&indep) > 2.0 * run(&dep));
    }

    #[test]
    fn injection_flips_exactly_one_live_register() {
        // A long loop; inject mid-way and check the record.
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global_zeroed("out", Ty::I64, 1);
        let mut f = mb.function("main", vec![], None);
        let entry = f.entry_block();
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.def_reg(Ty::I64, "i");
        let acc = f.def_reg(Ty::I64, "acc");
        f.switch_to(entry);
        f.intrinsic(Intrinsic::RegionEnter, vec![Operand::imm_i(0)]);
        f.mov(i, Operand::imm_i(0));
        f.mov(acc, Operand::imm_i(0));
        f.br(body);
        f.switch_to(body);
        f.bin_into(acc, BinOp::Add, Ty::I64, Operand::reg(acc), Operand::reg(i));
        f.bin_into(i, BinOp::Add, Ty::I64, Operand::reg(i), Operand::imm_i(1));
        let c = f.cmp(CmpOp::Lt, Ty::I64, Operand::reg(i), Operand::imm_i(1000));
        f.cond_br(Operand::reg(c), body, exit);
        f.switch_to(exit);
        f.store(Ty::I64, Operand::global(g), Operand::reg(acc));
        f.intrinsic(Intrinsic::RegionExit, vec![Operand::imm_i(0)]);
        f.ret(None);
        f.finish();
        let m = mb.finish();

        // Golden run. Corrupting the loop counter can spin the loop toward
        // the step limit (a *Hang* in campaign terms), so keep the budget
        // small here.
        let config = ExecConfig {
            step_limit: 200_000,
            ..ExecConfig::default()
        };
        let golden = {
            let mut machine = Machine::with_config(&m, NoopHooks, config.clone());
            machine.run("main", &[]);
            machine.read_global("out").to_vec()
        };

        let mut corrupted = 0;
        for seed in 0..20 {
            let mut machine = Machine::with_config(&m, NoopHooks, config.clone());
            machine.set_injection(InjectionPlan {
                trigger: 500,
                seed,
                anywhere: false,
                model: FaultModel::SingleBitSeu,
            });
            let out = machine.run("main", &[]);
            let rec = out.injection.expect("target found");
            assert_eq!(rec.effect.flipped_bits().count_ones(), 1);
            if machine.read_global("out") != golden.as_slice() {
                corrupted += 1;
            }
        }
        // Some seeds corrupt the sum (SDC), some are masked (flip in a
        // dead/low-impact position); both must occur across 20 seeds.
        assert!(corrupted > 0, "no injection ever corrupted the output");
        assert!(corrupted < 20, "every injection corrupted the output");
    }

    #[test]
    fn injection_respects_region_scope() {
        // No region markers at all: with anywhere=false the plan never
        // fires.
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let x = f.bin(BinOp::Add, Ty::I64, Operand::imm_i(1), Operand::imm_i(2));
        f.ret(Some(Operand::reg(x)));
        f.finish();
        let m = mb.finish();
        let mut machine = Machine::new(&m, NoopHooks);
        machine.set_injection(InjectionPlan {
            trigger: 0,
            seed: 1,
            anywhere: false,
            model: FaultModel::SingleBitSeu,
        });
        let out = machine.run("main", &[]);
        assert!(out.injection.is_none());
        assert_eq!(returned_i(&out), 3);
    }

    /// A three-instruction straight-line function for exact-fault probes:
    /// `x = 1 + 2; y = x * 10; ret y`.
    fn straight_line() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let x = f.bin(BinOp::Add, Ty::I64, Operand::imm_i(1), Operand::imm_i(2));
        let y = f.bin(BinOp::Mul, Ty::I64, Operand::reg(x), Operand::imm_i(10));
        f.ret(Some(Operand::reg(y)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn skip_fault_turns_instruction_into_bubble() {
        // Skipping `y = x * 10` leaves y at its frame-init value, so the
        // ret returns stale data instead of 30 — while the retired count
        // still includes the bubble.
        let m = straight_line();
        // Clean run: boundaries are 0:(add) 1:(mul) 2:(ret).
        let clean = run_simple(&m, "main", &[]);
        assert_eq!(returned_i(&clean), 30);
        assert_eq!(clean.counters.retired, 3);

        // Skip the mul at boundary 1: y keeps the frame-default value.
        let mut machine = Machine::new(&m, NoopHooks);
        machine.set_exact_fault(ExactFault {
            at: 1,
            kind: ExactFaultKind::Skip,
        });
        let out = machine.run("main", &[]);
        let rec = out.injection.as_ref().expect("skip fired");
        assert_eq!(rec.effect, FaultEffect::SkippedInstruction);
        assert_eq!(rec.at_retired, 1);
        assert_eq!(rec.ip, 1, "records the skipped instruction's position");
        // The bubble still retires: same dynamic instruction count.
        assert_eq!(out.counters.retired, clean.counters.retired);
        assert_ne!(returned_i(&out), 30, "skipped mul must change the result");
    }

    #[test]
    fn skipping_final_terminator_runs_off_the_code() {
        let m = straight_line();
        let mut machine = Machine::new(&m, NoopHooks);
        machine.set_exact_fault(ExactFault {
            at: 2,
            kind: ExactFaultKind::Skip,
        });
        let out = machine.run("main", &[]);
        assert!(out.injection.is_some(), "skip of the ret fires");
        assert_eq!(
            out.termination,
            Termination::Trapped(Trap::CodeRunoff),
            "skipping the last block's terminator leaves nothing to run"
        );
    }

    #[test]
    fn skip_past_program_end_never_fires() {
        // Dead-target accounting: the boundary census of the program is
        // 0..3, so a skip armed at boundary 1000 must report *no*
        // injection rather than silently pretending it fired.
        let m = straight_line();
        let mut machine = Machine::new(&m, NoopHooks);
        machine.set_exact_fault(ExactFault {
            at: 1000,
            kind: ExactFaultKind::Skip,
        });
        let out = machine.run("main", &[]);
        assert!(out.injection.is_none(), "skip past program end is dead");
        assert_eq!(returned_i(&out), 30);
    }

    #[test]
    fn skip_holds_fire_over_intrinsic_boundary() {
        // Boundaries: 0:(x = 1 + 2) 1:(print x) 2:(y = x * 10) 3:(ret y).
        // A skip armed at the print boundary must not swallow the
        // intrinsic; it holds fire and strikes the mul instead.
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("main", vec![], Some(Ty::I64));
        let x = f.bin(BinOp::Add, Ty::I64, Operand::imm_i(1), Operand::imm_i(2));
        f.intrinsic(Intrinsic::Print, vec![Operand::reg(x)]);
        let y = f.bin(BinOp::Mul, Ty::I64, Operand::reg(x), Operand::imm_i(10));
        f.ret(Some(Operand::reg(y)));
        f.finish();
        let m = mb.finish();

        let mut machine = Machine::new(&m, NoopHooks);
        machine.set_exact_fault(ExactFault {
            at: 1,
            kind: ExactFaultKind::Skip,
        });
        let out = machine.run("main", &[]);
        let rec = out.injection.as_ref().expect("held skip fires later");
        assert_eq!(rec.effect, FaultEffect::SkippedInstruction);
        assert_eq!(
            rec.ip, 2,
            "strikes the mul after the intrinsic, not the intrinsic"
        );
        assert_eq!(
            out.prints,
            vec![Value::I(3)],
            "the intrinsic still executed"
        );
        assert_ne!(returned_i(&out), 30, "the mul was the instruction skipped");
    }

    #[test]
    fn burst_on_unwritten_register_never_fires() {
        let m = straight_line();
        // Reg 1 (y) is unwritten at boundary 1 (only x has been written).
        let mut machine = Machine::new(&m, NoopHooks);
        machine.set_exact_fault(ExactFault {
            at: 1,
            kind: ExactFaultKind::Burst {
                reg: Reg(1),
                start: 0,
                width: 8,
            },
        });
        let out = machine.run("main", &[]);
        assert!(out.injection.is_none(), "burst on dead register is dead");
        assert_eq!(returned_i(&out), 30);
    }

    #[test]
    fn exact_burst_flips_the_window() {
        let m = straight_line();
        // x = 3 at boundary 1; flip bits 0..4 of it: 3 ^ 0b1111 = 12, so
        // the ret returns 120.
        let mut machine = Machine::new(&m, NoopHooks);
        machine.set_exact_fault(ExactFault {
            at: 1,
            kind: ExactFaultKind::Burst {
                reg: Reg(0),
                start: 0,
                width: 4,
            },
        });
        let out = machine.run("main", &[]);
        let rec = out.injection.as_ref().expect("burst fired");
        match rec.effect {
            FaultEffect::Burst {
                reg,
                start,
                width,
                old_bits,
                new_bits,
            } => {
                assert_eq!((reg, start, width), (Reg(0), 0, 4));
                assert_eq!(old_bits ^ new_bits, 0b1111);
            }
            ref other => panic!("expected burst effect, got {other:?}"),
        }
        assert_eq!(returned_i(&out), 120);
    }

    #[test]
    fn random_burst_flips_a_contiguous_window() {
        let m = straight_line();
        for seed in 0..16 {
            let mut machine = Machine::new(&m, NoopHooks);
            machine.set_injection(InjectionPlan {
                trigger: 1,
                seed,
                anywhere: true,
                model: FaultModel::MultiBitBurst { width: 5 },
            });
            let out = machine.run("main", &[]);
            let rec = out.injection.as_ref().expect("live target exists");
            let mask = rec.effect.flipped_bits();
            assert_eq!(mask.count_ones(), 5, "seed {seed}: window width");
            assert_eq!(
                mask >> mask.trailing_zeros(),
                0b11111,
                "seed {seed}: window contiguity"
            );
        }
    }

    #[test]
    fn random_skip_fires_as_bubble() {
        let m = straight_line();
        let mut machine = Machine::new(&m, NoopHooks);
        machine.set_injection(InjectionPlan {
            trigger: 1,
            seed: 7,
            anywhere: true,
            model: FaultModel::InstructionSkip,
        });
        let out = machine.run("main", &[]);
        let rec = out.injection.as_ref().expect("skip fired");
        assert_eq!(rec.effect, FaultEffect::SkippedInstruction);
        assert_ne!(returned_i(&out), 30);
    }
}
